//! Integration suite for the lazy store path: a session opened with
//! [`FleXPath::open`] (header + meta validated, sections decoded on first
//! touch) must be observationally identical to one opened eagerly — same
//! answers, same scores, same trace counter fingerprints, at every thread
//! count — while only paying for the sections a query actually touches.
//! A memory-mapped reader must also survive the catalog's atomic
//! temp-and-rename replace: the old session keeps serving the old bytes.

use flexpath::{Catalog, FleXPath};
use flexpath_store::{StoreBuilder, FORMAT_V1};
use std::path::PathBuf;

const XML: &str = r#"<site>
  <item><name>gold watch</name><description><parlist><listitem>rare
    collectible gold watch</listitem></parlist></description>
    <mailbox><mail><text>asking about the <bold>gold</bold> watch</text></mail></mailbox>
    <incategory category="c1"/></item>
  <item><name>silver ring</name><description>plain silver ring, no list
    </description></item>
  <item><name>tin whistle</name><description>a whistle of tin with a
    gold-plated mouthpiece</description></item>
</site>"#;

const QUERIES: &[&str] = &[
    "//item[./name]",
    "//item[./description/parlist]",
    r#"//item[.contains("gold")]"#,
    r#"//item[./description[.contains("gold" and "watch")]]"#,
];

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("flexpath-lazy-{tag}-{}", std::process::id()))
}

fn saved_store(tag: &str) -> PathBuf {
    let dir = temp_dir(tag);
    let path = dir.join("doc.fxs");
    FleXPath::from_xml(XML)
        .expect("corpus parses")
        .save(&path, "doc")
        .expect("store saves");
    path
}

/// Runs `query` on `flex` with `threads` workers and returns the ranked
/// hits (bit-exact scores) plus the trace counter fingerprint.
fn run(flex: &FleXPath, query: &str, threads: usize) -> (Vec<(u32, u64, u64)>, String) {
    let results = flex
        .query(query)
        .expect("query parses")
        .top(10)
        .threads(threads)
        .trace()
        .execute();
    let hits = results
        .hits
        .iter()
        .map(|h| (h.node.0, h.score.ss.to_bits(), h.score.ks.to_bits()))
        .collect();
    let fp = results
        .trace
        .expect("trace requested")
        .counter_fingerprint();
    (hits, fp)
}

#[test]
fn lazy_and_eager_sessions_answer_byte_identically_at_every_thread_count() {
    let path = saved_store("equiv");
    let lazy = FleXPath::open(&path).expect("lazy open");
    let eager = FleXPath::open_eager(&path).expect("eager open");
    for query in QUERIES {
        for threads in [1, 2, 4, 8] {
            let (lazy_hits, lazy_fp) = run(&lazy, query, threads);
            let (eager_hits, eager_fp) = run(&eager, query, threads);
            assert_eq!(
                lazy_hits, eager_hits,
                "hits diverged for {query:?} at {threads} threads"
            );
            assert_eq!(
                lazy_fp, eager_fp,
                "trace fingerprints diverged for {query:?} at {threads} threads"
            );
            assert!(!lazy_hits.is_empty(), "query {query:?} must match");
        }
    }
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

#[test]
fn residency_progresses_with_what_queries_touch() {
    let path = saved_store("residency");
    let flex = FleXPath::open(&path).expect("lazy open");
    let r = flex.residency();
    assert!(
        !r.document && !r.stats && !r.index,
        "nothing is resident right after a lazy open"
    );

    // A structure-only query forces the document and statistics but must
    // leave the inverted index on disk.
    let hits = flex
        .query("//item[./name]")
        .expect("query parses")
        .top(10)
        .execute()
        .hits;
    assert_eq!(hits.len(), 3);
    let r = flex.residency();
    assert!(r.document && r.stats, "structural parts decoded");
    assert!(!r.index, "postings stay on disk for structure-only queries");

    // The first full-text query pulls the index in.
    let hits = flex
        .query(r#"//item[.contains("gold")]"#)
        .expect("query parses")
        .top(10)
        .execute()
        .hits;
    assert!(!hits.is_empty());
    assert!(flex.residency().index, "full-text touch decodes the index");
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

#[test]
fn v1_files_open_eagerly_and_answer_like_v2() {
    // Write the same corpus in both container versions; the v1 file (as
    // an old build would have written it) must open through the same
    // `FleXPath::open` entry point, decode everything up front, and
    // answer byte-identically to the v2 image.
    let dir = temp_dir("v1compat");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let flex = FleXPath::from_xml(XML).expect("corpus parses");
    let ctx = flex.context();
    let v1_path = dir.join("v1.fxs");
    StoreBuilder::from_parts("doc", ctx.doc(), ctx.stats(), ctx.index())
        .with_version(FORMAT_V1)
        .expect("v1 supported")
        .write_to(&v1_path)
        .expect("v1 writes");
    let v2_path = dir.join("v2.fxs");
    StoreBuilder::from_parts("doc", ctx.doc(), ctx.stats(), ctx.index())
        .write_to(&v2_path)
        .expect("v2 writes");

    let v1 = FleXPath::open(&v1_path).expect("v1 file opens");
    let r = v1.residency();
    assert!(
        r.document && r.stats && r.index,
        "v1 has no lazy representation — everything decodes at open"
    );
    let v2 = FleXPath::open(&v2_path).expect("v2 file opens");
    for query in QUERIES {
        for threads in [1, 2, 4, 8] {
            assert_eq!(
                run(&v1, query, threads),
                run(&v2, query, threads),
                "v1/v2 diverged for {query:?} at {threads} threads"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn open_sessions_survive_atomic_replace() {
    // The catalog replaces documents with a temp-file write + rename. A
    // session opened before the replace holds the *old* bytes (via the
    // mmap or an owned buffer — either way the unlinked inode stays alive
    // until unmapped) and must keep answering from them; a session opened
    // after sees the new document. No torn reads, no crashes.
    let dir = temp_dir("replace");
    let catalog = Catalog::open(&dir).expect("catalog opens");
    let old = FleXPath::from_xml(XML).expect("corpus parses");
    let old_ctx = old.context();
    catalog
        .save(&StoreBuilder::from_parts(
            "doc",
            old_ctx.doc(),
            old_ctx.stats(),
            old_ctx.index(),
        ))
        .expect("initial save");

    let before = FleXPath::from_lazy_store(catalog.open_lazy("doc").expect("lazy open"));
    // Touch nothing yet: the replace happens while every section is
    // still undecoded, so the reader must pull old bytes afterwards.
    let new = FleXPath::from_xml("<site><item><name>pewter spoon</name></item></site>")
        .expect("replacement parses");
    let new_ctx = new.context();
    catalog
        .save(&StoreBuilder::from_parts(
            "doc",
            new_ctx.doc(),
            new_ctx.stats(),
            new_ctx.index(),
        ))
        .expect("atomic replace");

    let hits = before
        .query(r#"//item[.contains("gold")]"#)
        .expect("query parses")
        .top(10)
        .try_execute()
        .expect("pre-replace session reads its original bytes")
        .hits;
    assert!(!hits.is_empty(), "old corpus still answers");
    assert_eq!(
        before
            .query("//item[./name]")
            .expect("query parses")
            .top(10)
            .execute()
            .hits
            .len(),
        3,
        "old corpus still has all three items"
    );

    let after = FleXPath::from_lazy_store(catalog.open_lazy("doc").expect("reopen"));
    assert_eq!(
        after
            .query("//item[./name]")
            .expect("query parses")
            .top(10)
            .execute()
            .hits
            .len(),
        1,
        "post-replace session sees the new document"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
