//! End-to-end tests for user-specified predicate weights (`^<w>` query
//! annotations → the engine's weight assignment → penalties and ranking).

use flexpath::FleXPath;

/// Two near-miss articles, each failing a different edge: which one ranks
/// higher depends entirely on the relative weights of the two edges.
const CORPUS: &str = r#"<site>
  <article id="noAlg"><section>
    <paragraph>XML streaming text</paragraph></section></article>
  <article id="noPara"><section>
    <algorithm>a</algorithm>
    <title>XML streaming title</title></section></article>
</site>"#;

fn ranked_labels(flex: &FleXPath, query: &str) -> Vec<String> {
    let id = flex.document().symbols().lookup("id").unwrap();
    flex.query(query)
        .unwrap()
        .top(10)
        .execute()
        .hits
        .iter()
        .map(|h| {
            flex.document()
                .attribute(h.node, id)
                .unwrap_or("?")
                .to_string()
        })
        .collect()
}

#[test]
fn weights_flip_the_ranking_between_near_misses() {
    let flex = FleXPath::from_xml(CORPUS).unwrap();
    // Heavy algorithm edge: losing the algorithm is expensive → the
    // article that kept its algorithm (noPara) must win.
    let alg_heavy = ranked_labels(
        &flex,
        "//article[./section[./algorithm^5 and ./paragraph[.contains(\"XML\" and \"streaming\")]]]",
    );
    assert_eq!(alg_heavy[0], "noPara", "{alg_heavy:?}");
    // Heavy paragraph edge: the article that kept its keyword paragraph
    // (noAlg) must win.
    let para_heavy = ranked_labels(
        &flex,
        "//article[./section[./algorithm and ./paragraph^5[.contains(\"XML\" and \"streaming\")]]]",
    );
    assert_eq!(para_heavy[0], "noAlg", "{para_heavy:?}");
}

#[test]
fn unweighted_query_is_equivalent_to_weight_one() {
    let flex = FleXPath::from_xml(CORPUS).unwrap();
    let plain = ranked_labels(
        &flex,
        "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" and \"streaming\")]]]",
    );
    let unit = ranked_labels(
        &flex,
        "//article[./section^1[./algorithm^1 and ./paragraph^1[.contains(\"XML\" and \"streaming\")]]]",
    );
    assert_eq!(plain, unit);
}

#[test]
fn zero_weight_makes_a_predicate_free_to_drop() {
    let flex = FleXPath::from_xml(CORPUS).unwrap();
    // algorithm^0: dropping the algorithm requirement costs nothing, so
    // both articles... noAlg keeps everything that carries weight and ties
    // with an exact match score, outranking noPara (which lost the
    // weighted paragraph edge).
    let r = flex
        .query("//article[./section[./algorithm^0 and ./paragraph[.contains(\"XML\" and \"streaming\")]]]")
        .unwrap()
        .top(10)
        .execute();
    let id = flex.document().symbols().lookup("id").unwrap();
    assert_eq!(flex.document().attribute(r.hits[0].node, id), Some("noAlg"));
    assert!(r.hits[0].score.ss > r.hits[1].score.ss);
}
