//! Workspace invariant snapshot: the full `flexpath-lint` scan must come
//! back clean, so any new unwrap/nondeterministic collection/uncovered
//! loop/misnamed metric fails `cargo test` — not just CI's dedicated step.

use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = flexpath_lint::lint_workspace(root).expect("workspace parses");
    assert!(
        report.files_scanned >= 60,
        "only {} files scanned — walker lost a source tree?",
        report.files_scanned
    );
    assert!(
        report.violations.is_empty(),
        "workspace must lint clean; run `cargo run -p flexpath-lint` for \
         details:\n{}",
        report.render_text()
    );
}

#[test]
fn json_report_is_well_formed() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = flexpath_lint::lint_workspace(root).expect("workspace parses");
    let json = report.render_json();
    assert!(json.starts_with("{\"files_scanned\":"));
    assert!(json.ends_with("]}"));
    assert!(json.contains("\"violations\":["));
}

/// Schema snapshot: the exact shape CI consumers parse. Keys appear in a
/// fixed order (`file`, `line`, `offset`, `rule`, `message`), findings are
/// pre-sorted by file path then byte offset then rule, and `rule` is the
/// stable family key. Changing any of this is a breaking change to the
/// `lint-report.json` artifact and must be deliberate.
#[test]
fn json_schema_snapshot() {
    let report = flexpath_lint::Report {
        files_scanned: 2,
        violations: vec![
            flexpath_lint::Violation {
                file: "crates/a/src/lib.rs".to_string(),
                line: 3,
                offset: 41,
                rule: "lock-order",
                message: "guard \"g\" held".to_string(),
            },
            flexpath_lint::Violation {
                file: "crates/a/src/lib.rs".to_string(),
                line: 3,
                offset: 57,
                rule: "unsafe-boundary",
                message: "unsafe outside allowlist".to_string(),
            },
        ],
    };
    assert_eq!(
        report.render_json(),
        "{\"files_scanned\":2,\"violations\":[\
         {\"file\":\"crates/a/src/lib.rs\",\"line\":3,\"offset\":41,\
         \"rule\":\"lock-order\",\"message\":\"guard \\\"g\\\" held\"},\
         {\"file\":\"crates/a/src/lib.rs\",\"line\":3,\"offset\":57,\
         \"rule\":\"unsafe-boundary\",\"message\":\"unsafe outside allowlist\"}]}"
    );
}

/// Two scans of the same tree must serialize byte-identically, and the
/// finding order must be the documented (file, offset, rule) sort.
#[test]
fn json_report_is_deterministic() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let a = flexpath_lint::lint_workspace(root).expect("workspace parses");
    let b = flexpath_lint::lint_workspace(root).expect("workspace parses");
    assert_eq!(a.render_json(), b.render_json());
    let keys: Vec<_> = a
        .violations
        .iter()
        .map(|v| (v.file.clone(), v.offset, v.rule))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}
