//! Workspace invariant snapshot: the full `flexpath-lint` scan must come
//! back clean, so any new unwrap/nondeterministic collection/uncovered
//! loop/misnamed metric fails `cargo test` — not just CI's dedicated step.

use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = flexpath_lint::lint_workspace(root).expect("workspace parses");
    assert!(
        report.files_scanned >= 60,
        "only {} files scanned — walker lost a source tree?",
        report.files_scanned
    );
    assert!(
        report.violations.is_empty(),
        "workspace must lint clean; run `cargo run -p flexpath-lint` for \
         details:\n{}",
        report.render_text()
    );
}

#[test]
fn json_report_is_well_formed() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = flexpath_lint::lint_workspace(root).expect("workspace parses");
    let json = report.render_json();
    assert!(json.starts_with("{\"files_scanned\":"));
    assert!(json.ends_with("]}"));
    assert!(json.contains("\"violations\":["));
}
