//! Golden-file drift check: the committed `tests/golden/tiny.fxs` is the
//! byte-exact serialization of a fixed tiny corpus at the current
//! `FORMAT_VERSION`. Any change to the wire layout — container, section
//! payloads, encoding order — flips these bytes and fails this test.
//!
//! That failure is the prompt: either revert the accidental layout change,
//! or (for a deliberate format change) bump
//! `flexpath_store::FORMAT_VERSION` and regenerate the golden file with
//!
//! ```text
//! cargo test -q --test store_golden -- --ignored regenerate
//! ```

use flexpath::FleXPath;
use flexpath_store::{StoreBuilder, FORMAT_VERSION};
use std::path::PathBuf;

/// The fixed corpus. Never edit: the golden bytes encode exactly this.
const TINY_XML: &str = r#"<site>
  <item id="i1"><name>gold watch</name>
    <description><parlist><listitem>a rare gold watch</listitem></parlist></description>
    <mailbox><mail><text>is the <bold>gold</bold> watch still available</text></mail></mailbox>
  </item>
  <item id="i2"><name>tin whistle</name>
    <description>a plain tin whistle</description>
  </item>
</site>"#;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/tiny.fxs")
}

fn current_bytes() -> Vec<u8> {
    let flex = FleXPath::from_xml(TINY_XML).expect("tiny corpus parses");
    let ctx = flex.context();
    StoreBuilder::from_parts("tiny", ctx.doc(), ctx.stats(), ctx.index()).to_bytes()
}

#[test]
fn format_matches_committed_golden_file() {
    let golden = std::fs::read(golden_path()).expect(
        "tests/golden/tiny.fxs missing — regenerate with \
         `cargo test -q --test store_golden -- --ignored regenerate`",
    );
    let current = current_bytes();
    assert_eq!(
        current,
        golden,
        "store serialization drifted from the committed golden file at \
         FORMAT_VERSION {FORMAT_VERSION} (first differing byte: {:?}). \
         If the layout change is deliberate, bump FORMAT_VERSION and \
         regenerate with `cargo test -q --test store_golden -- --ignored \
         regenerate`; otherwise revert the encoding change.",
        current
            .iter()
            .zip(golden.iter())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| current.len().min(golden.len()))
    );
}

#[test]
fn golden_file_still_opens_and_answers() {
    // Drift aside, the committed bytes must decode with the current reader
    // and answer a query — this is the backward-compatibility contract for
    // the current FORMAT_VERSION.
    let flex = FleXPath::open(&golden_path()).expect("golden file opens");
    let hits = flex
        .query("//item[./mailbox/mail/text]")
        .expect("query parses")
        .top(5)
        .execute()
        .hits;
    assert!(!hits.is_empty(), "golden corpus has a matching item");
}

/// Regenerates the golden file. Run explicitly after a deliberate format
/// change (with the version bump already in place):
/// `cargo test -q --test store_golden -- --ignored regenerate`.
#[test]
#[ignore = "writes tests/golden/tiny.fxs; run explicitly after a format bump"]
fn regenerate() {
    let path = golden_path();
    std::fs::create_dir_all(path.parent().expect("parent")).expect("golden dir");
    std::fs::write(&path, current_bytes()).expect("write golden file");
}
