//! Golden-file drift check: the committed `tests/golden/tiny.fxs` (v1,
//! dense layout) and `tests/golden/tiny_v2.fxs` (v2, aligned layout) are
//! the byte-exact serializations of a fixed tiny corpus at their
//! respective container versions. Any change to the wire layout —
//! container, section payloads, encoding order — flips these bytes and
//! fails this test.
//!
//! That failure is the prompt: either revert the accidental layout change,
//! or (for a deliberate format change) add a new container version and
//! regenerate the golden files with
//!
//! ```text
//! cargo test -q --test store_golden -- --ignored regenerate
//! ```
//!
//! The v1 golden doubles as the backward-compatibility fixture: the
//! current reader must keep opening it (eagerly — v1 has no lazy path)
//! and must produce answers identical to the v2 image of the same corpus.

use flexpath::FleXPath;
use flexpath_store::{StoreBuilder, FORMAT_V1, FORMAT_V2};
use std::path::PathBuf;

/// The fixed corpus. Never edit: the golden bytes encode exactly this.
const TINY_XML: &str = r#"<site>
  <item id="i1"><name>gold watch</name>
    <description><parlist><listitem>a rare gold watch</listitem></parlist></description>
    <mailbox><mail><text>is the <bold>gold</bold> watch still available</text></mail></mailbox>
  </item>
  <item id="i2"><name>tin whistle</name>
    <description>a plain tin whistle</description>
  </item>
</site>"#;

/// (container version, committed file name) for each golden image.
const GOLDENS: &[(u32, &str)] = &[(FORMAT_V1, "tiny.fxs"), (FORMAT_V2, "tiny_v2.fxs")];

fn golden_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(file)
}

fn current_bytes(version: u32) -> Vec<u8> {
    let flex = FleXPath::from_xml(TINY_XML).expect("tiny corpus parses");
    let ctx = flex.context();
    StoreBuilder::from_parts("tiny", ctx.doc(), ctx.stats(), ctx.index())
        .with_version(version)
        .expect("supported version")
        .to_bytes()
}

#[test]
fn format_matches_committed_golden_files() {
    for &(version, file) in GOLDENS {
        let golden = std::fs::read(golden_path(file)).unwrap_or_else(|_| {
            panic!(
                "tests/golden/{file} missing — regenerate with \
                 `cargo test -q --test store_golden -- --ignored regenerate`"
            )
        });
        let current = current_bytes(version);
        assert_eq!(
            current,
            golden,
            "store serialization drifted from the committed golden file \
             {file} at container version {version} (first differing byte: \
             {:?}). If the layout change is deliberate, add a new container \
             version and regenerate with `cargo test -q --test store_golden \
             -- --ignored regenerate`; otherwise revert the encoding change.",
            current
                .iter()
                .zip(golden.iter())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| current.len().min(golden.len()))
        );
    }
}

#[test]
fn golden_files_still_open_and_answer_identically() {
    // Drift aside, the committed bytes of BOTH versions must decode with
    // the current reader and answer a query with identical results — the
    // backward-compatibility contract: a v1 file written by an old build
    // keeps working, byte-identical in its answers to a v2 rewrite.
    let mut all_hits = Vec::new();
    for &(version, file) in GOLDENS {
        let flex = FleXPath::open(&golden_path(file)).expect("golden file opens");
        if version == FORMAT_V1 {
            // v1 has no lazy representation: the open decodes everything.
            assert!(
                flex.residency().index,
                "v1 files must decode eagerly at open"
            );
        }
        let hits = flex
            .query("//item[./mailbox/mail/text]")
            .expect("query parses")
            .top(5)
            .execute()
            .hits;
        assert!(!hits.is_empty(), "golden corpus has a matching item");
        all_hits.push(
            hits.iter()
                .map(|h| (h.node.0, h.score.ss.to_bits(), h.score.ks.to_bits()))
                .collect::<Vec<_>>(),
        );
    }
    assert_eq!(
        all_hits[0], all_hits[1],
        "v1 and v2 images of the same corpus must answer identically"
    );
}

/// Regenerates both golden files. Run explicitly after a deliberate
/// format change (with the version bump already in place):
/// `cargo test -q --test store_golden -- --ignored regenerate`.
#[test]
#[ignore = "writes tests/golden/*.fxs; run explicitly after a format bump"]
fn regenerate() {
    for &(version, file) in GOLDENS {
        let path = golden_path(file);
        std::fs::create_dir_all(path.parent().expect("parent")).expect("golden dir");
        std::fs::write(&path, current_bytes(version)).expect("write golden file");
    }
}
