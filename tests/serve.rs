//! End-to-end tests for `flexpath-serve` over real sockets: the full
//! robustness contract from the ISSUE — typed shedding under overload
//! (`429`/`503` + `Retry-After`), graceful degradation into `200`
//! partials on budget trips, typed statuses for malformed HTTP, and a
//! drain that finishes in-flight work while shedding new work — all
//! without ever poisoning the shared session.

use flexpath::FleXPath;
use flexpath_serve::{http_call, Client, ServePolicy, Server, ServerHandle, ServerState};
use flexpath_xmark::{generate, XmarkConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const QUERY: &str = "//item[./description/parlist and ./mailbox/mail/text]";

const TIMEOUT: Duration = Duration::from_secs(5);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flexpath-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A running server over an in-memory XMark session, plus the bits a test
/// needs to talk to it and shut it down.
struct Harness {
    addr: SocketAddr,
    handle: ServerHandle,
    join: Option<std::thread::JoinHandle<()>>,
    dir: PathBuf,
}

impl Harness {
    fn start(tag: &str, policy: ServePolicy) -> Harness {
        let dir = temp_dir(tag);
        let state = ServerState::open(&dir).expect("catalog opens");
        let flex = FleXPath::new(generate(&XmarkConfig::sized(64 * 1024, 41)));
        // Save to the catalog so /catalogs lists it, and inject the
        // already-built session so tests don't pay a reload.
        let ctx = flex.context();
        state
            .catalog()
            .save(&flexpath::StoreBuilder::from_parts(
                "doc",
                ctx.doc(),
                ctx.stats(),
                ctx.index(),
            ))
            .expect("store saves");
        state.insert_session("doc", flex);
        let server = Server::bind("127.0.0.1:0", Arc::new(state), policy).expect("binds port 0");
        let addr = server.local_addr().expect("bound addr");
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().expect("server run"));
        Harness {
            addr,
            handle,
            join: Some(join),
            dir,
        }
    }

    fn query_body(extra: &str) -> String {
        format!(r#"{{"catalog":"doc","query":"{QUERY}","k":5{extra}}}"#)
    }

    fn post_query(&self, extra: &str) -> flexpath_serve::ClientResponse {
        http_call(
            self.addr,
            "POST",
            "/query",
            Self::query_body(extra).as_bytes(),
            TIMEOUT,
        )
        .expect("query call completes")
    }
}

impl Drop for Harness {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(join) = self.join.take() {
            join.join().expect("server thread exits cleanly");
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Sends raw bytes on a fresh connection and returns the status code the
/// server answered with (0 if it closed without answering).
fn raw_status(addr: SocketAddr, bytes: &[u8]) -> u16 {
    let mut stream = TcpStream::connect_timeout(&addr, TIMEOUT).expect("connects");
    stream.set_read_timeout(Some(TIMEOUT)).unwrap();
    stream.set_write_timeout(Some(TIMEOUT)).unwrap();
    stream.write_all(bytes).expect("request bytes written");
    let mut buf = Vec::new();
    let _ = stream.read_to_end(&mut buf);
    let head = String::from_utf8_lossy(&buf);
    head.split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

#[test]
fn query_round_trips_over_a_real_socket() {
    let h = Harness::start("roundtrip", ServePolicy::for_tests());

    let resp = h.post_query("");
    assert_eq!(resp.status, 200, "body: {}", resp.body_text());
    let body = resp.body_text();
    assert!(body.contains(r#""complete":true"#), "complete: {body}");
    assert!(body.contains(r#""hits":["#), "hits present: {body}");
    assert!(body.contains(r#""path":"#), "paths rendered: {body}");

    // Keep-alive: the same client connection serves several requests.
    let mut client = Client::connect(h.addr, TIMEOUT);
    for _ in 0..3 {
        let r = client
            .call("POST", "/query", Harness::query_body("").as_bytes())
            .expect("keep-alive call");
        assert_eq!(r.status, 200);
    }

    let health = http_call(h.addr, "GET", "/healthz", b"", TIMEOUT).expect("healthz");
    assert_eq!(health.status, 200);
    assert!(health.body_text().contains(r#""status":"ok""#));

    let catalogs = http_call(h.addr, "GET", "/catalogs", b"", TIMEOUT).expect("catalogs");
    assert_eq!(catalogs.status, 200);
    assert!(catalogs.body_text().contains(r#""doc""#));

    // Default /metrics is Prometheus text exposition (sanitized names);
    // the JSON snapshot stays reachable via ?format=json.
    let metrics = http_call(h.addr, "GET", "/metrics", b"", TIMEOUT).expect("metrics");
    assert_eq!(metrics.status, 200);
    assert!(metrics.body_text().contains("# TYPE"));
    assert!(metrics.body_text().contains("serve_requests"));
    let metrics = http_call(h.addr, "GET", "/metrics?format=json", b"", TIMEOUT).expect("metrics");
    assert_eq!(metrics.status, 200);
    assert!(metrics.body_text().contains(r#""serve.requests""#));
}

#[test]
fn overload_sheds_with_429_and_never_poisons_the_session() {
    // for_tests(): 2 slots, wait queue of 1, 50 ms admission timeout —
    // six concurrent 300 ms holders guarantee sheds.
    let h = Harness::start("overload", ServePolicy::for_tests());
    let mut workers = Vec::new();
    for _ in 0..6 {
        let addr = h.addr;
        workers.push(std::thread::spawn(move || {
            http_call(
                addr,
                "POST",
                "/query",
                Harness::query_body(r#","test_delay_ms":300"#).as_bytes(),
                TIMEOUT,
            )
            .expect("overloaded call still answers")
        }));
    }
    let mut ok = 0usize;
    let mut shed = 0usize;
    for w in workers {
        let resp = w.join().expect("client thread");
        match resp.status {
            200 => ok += 1,
            // 429: admission shed (wait queue full or admission timeout).
            // 503: door shed (the bounded connection queue overflowed).
            429 | 503 => {
                shed += 1;
                assert!(
                    resp.header("retry-after").is_some(),
                    "shed responses carry Retry-After"
                );
                if resp.status == 429 {
                    let body = resp.body_text();
                    assert!(
                        body.contains("shed_queue_full") || body.contains("shed_timeout"),
                        "typed shed reason: {body}"
                    );
                }
            }
            other => panic!("unexpected status under overload: {other}"),
        }
    }
    assert!(ok >= 2, "slot holders complete ({ok} ok)");
    assert!(shed >= 1, "overflow is shed ({shed} shed)");

    // The session is untouched by shedding: a fresh query still answers
    // completely.
    let resp = h.post_query("");
    assert_eq!(resp.status, 200, "post-shed body: {}", resp.body_text());
    assert!(resp.body_text().contains(r#""complete":true"#));
}

#[test]
fn budget_trips_degrade_into_partials_with_retry_after() {
    let h = Harness::start("partial", ServePolicy::for_tests());
    // max_candidates: 0 exhausts the answer budget deterministically.
    let resp = h.post_query(r#","max_candidates":0"#);
    assert_eq!(resp.status, 200, "partials are 200s: {}", resp.body_text());
    let body = resp.body_text();
    assert!(body.contains(r#""complete":false"#), "partial: {body}");
    assert!(
        body.contains(r#""reason":"answer_budget""#),
        "typed reason: {body}"
    );
    assert!(
        resp.header("retry-after").is_some(),
        "partials hint Retry-After so clients back off"
    );
}

#[test]
fn malformed_http_maps_to_typed_statuses() {
    let h = Harness::start("malformed", ServePolicy::for_tests());

    assert_eq!(raw_status(h.addr, b"not http at all\r\n\r\n"), 400);
    assert_eq!(raw_status(h.addr, b"GET /healthz HTTP/3.0\r\n\r\n"), 505);
    assert_eq!(raw_status(h.addr, b"BREW /query HTTP/1.1\r\n\r\n"), 405);
    assert_eq!(
        raw_status(
            h.addr,
            b"POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        ),
        501
    );
    assert_eq!(
        raw_status(
            h.addr,
            b"POST /query HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n"
        ),
        413
    );
    // An oversized head trips the cap mid-read.
    let mut big = b"GET /healthz HTTP/1.1\r\n".to_vec();
    big.extend_from_slice(format!("X-Pad: {}\r\n\r\n", "a".repeat(64 * 1024)).as_bytes());
    assert_eq!(raw_status(h.addr, &big), 431);

    // Bad JSON and unknown routes are typed too.
    let resp = http_call(h.addr, "POST", "/query", b"{not json", TIMEOUT).unwrap();
    assert_eq!(resp.status, 400);
    let resp = http_call(h.addr, "GET", "/nope", b"", TIMEOUT).unwrap();
    assert_eq!(resp.status, 404);

    // After all that abuse the server still answers real queries.
    assert_eq!(h.post_query("").status, 200);
}

#[test]
fn flight_recorder_and_metrics_endpoints_e2e() {
    let slow_log = std::env::temp_dir().join(format!(
        "flexpath-serve-e2e-slowlog-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&slow_log);
    let mut policy = ServePolicy::for_tests();
    // for_tests() sets a zero slow threshold, so *every* completed query
    // counts as slow — deterministic coverage for /debug/slow and the log.
    policy.slow_log = Some(slow_log.clone());
    let h = Harness::start("recorder", policy);

    // One complete query and one deterministic budget-tripped partial.
    assert_eq!(h.post_query("").status, 200);
    let partial = h.post_query(r#","max_candidates":0"#);
    assert_eq!(partial.status, 200);
    assert!(partial.body_text().contains(r#""complete":false"#));

    // /debug/queries: both records, with skew summaries, the effective
    // limits, and the partial's typed exhaust reason.
    let resp = http_call(h.addr, "GET", "/debug/queries?n=10", b"", TIMEOUT).expect("debug");
    assert_eq!(resp.status, 200);
    let body = resp.body_text();
    assert!(body.contains(r#""recorded":2"#), "{body}");
    assert!(body.contains(r#""endpoint":"query""#), "{body}");
    assert!(body.contains(r#""skew":{"estimated":"#), "{body}");
    assert!(body.contains(r#""millibits":"#), "{body}");
    assert!(body.contains(r#""limits":{"#), "{body}");
    assert!(
        body.contains(r#""exhaust_reason":"answer_budget""#),
        "{body}"
    );

    // /debug/slow mirrors both (zero threshold), and ?n clamps the list.
    let resp = http_call(h.addr, "GET", "/debug/slow?n=10", b"", TIMEOUT).expect("debug slow");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body_text().matches(r#""endpoint":"#).count(), 2);
    let resp = http_call(h.addr, "GET", "/debug/slow?n=1", b"", TIMEOUT).expect("debug slow n=1");
    assert_eq!(resp.body_text().matches(r#""endpoint":"#).count(), 1);

    // The slow log got one JSON line per slow query.
    let text = std::fs::read_to_string(&slow_log).expect("slow log written");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "{text}");
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains(r#""duration_us":"#), "{line}");
    }

    // /version reports build identity and recorder state; /healthz uptime.
    let resp = http_call(h.addr, "GET", "/version", b"", TIMEOUT).expect("version");
    assert_eq!(resp.status, 200);
    let body = resp.body_text();
    assert!(body.contains(r#""version":"#), "{body}");
    assert!(body.contains(r#""recorder":{"#), "{body}");
    assert!(body.contains(r#""recorded":2"#), "{body}");
    let resp = http_call(h.addr, "GET", "/healthz", b"", TIMEOUT).expect("healthz");
    assert!(resp.body_text().contains(r#""uptime_s":"#));

    // /metrics parses as Prometheus text exposition and carries the
    // recorder counters.
    let resp = http_call(h.addr, "GET", "/metrics", b"", TIMEOUT).expect("metrics");
    assert_eq!(resp.status, 200);
    let text = resp.body_text();
    assert!(text.contains("serve_debug_recorded"), "{text}");
    assert_prometheus_parses(&text);

    let _ = std::fs::remove_file(&slow_log);
}

/// A minimal Prometheus text-exposition parser (mirrors the one in
/// `tests/observability.rs`; test binaries are separate crates): every
/// line is a comment or a `name[{labels}] value` sample, names stay in
/// `[a-zA-Z0-9_:]`, values parse as floats, and `_bucket` series are
/// cumulative.
fn assert_prometheus_parses(text: &str) {
    let mut samples = 0usize;
    let mut last_bucket: Option<(String, u64)> = None;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE line names a metric");
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name in {line:?}"
            );
            let kind = parts.next().expect("TYPE line has a kind");
            assert!(
                kind == "counter" || kind == "histogram" || kind == "gauge",
                "unknown TYPE in {line:?}"
            );
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
        let name = match series.split_once('{') {
            Some((n, labels)) => {
                assert!(labels.ends_with('}'), "unterminated labels in {line:?}");
                n
            }
            None => series,
        };
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad series name in {line:?}"
        );
        let v: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("bad value in {line:?}"));
        if let Some(base) = name.strip_suffix("_bucket") {
            let count = v as u64;
            match &last_bucket {
                Some((prev, prev_count)) if prev == base => {
                    assert!(
                        count >= *prev_count,
                        "non-cumulative bucket in {line:?} (prev {prev_count})"
                    );
                    last_bucket = Some((base.to_string(), count));
                }
                _ => last_bucket = Some((base.to_string(), count)),
            }
        } else {
            last_bucket = None;
        }
        samples += 1;
    }
    assert!(samples > 0, "exposition was empty");
}

#[test]
fn drain_finishes_in_flight_work_and_sheds_new_work() {
    let h = Harness::start("drain", ServePolicy::for_tests());

    // An in-flight slow request...
    let addr = h.addr;
    let slow = std::thread::spawn(move || {
        http_call(
            addr,
            "POST",
            "/query",
            Harness::query_body(r#","test_delay_ms":300"#).as_bytes(),
            TIMEOUT,
        )
        .expect("in-flight request answered")
    });
    std::thread::sleep(Duration::from_millis(100));

    // ...survives the shutdown and completes as a 200...
    h.handle.shutdown();
    let resp = slow.join().expect("slow client thread");
    assert_eq!(
        resp.status,
        200,
        "in-flight work finishes: {}",
        resp.body_text()
    );

    // ...while new work after the drain began is shed with 503.
    let resp = http_call(
        h.addr,
        "POST",
        "/query",
        Harness::query_body("").as_bytes(),
        TIMEOUT,
    );
    // (An Err is equally fine: the listener may already be gone.)
    if let Ok(resp) = resp {
        assert_eq!(resp.status, 503, "draining sheds: {}", resp.body_text());
        assert!(resp.header("retry-after").is_some());
    }
}
