//! Round-trip property: a session restored with [`FleXPath::open`] must be
//! observationally identical to the freshly built session it was saved
//! from — same top-K nodes, same scores, same trace counter fingerprints —
//! across every algorithm, every ranking scheme, and both serial and
//! parallel execution.

use flexpath::{Algorithm, FleXPath, RankingScheme};
use flexpath_xmark::{generate, XmarkConfig};
use std::path::PathBuf;

const QUERY: &str = "//item[./description/parlist and ./mailbox/mail/text]";

const ALGORITHMS: [Algorithm; 3] = [Algorithm::Dpo, Algorithm::Sso, Algorithm::Hybrid];
const SCHEMES: [RankingScheme; 3] = [
    RankingScheme::StructureFirst,
    RankingScheme::KeywordFirst,
    RankingScheme::Combined,
];
const THREADS: [usize; 2] = [1, 4];

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir()
        .join(format!("flexpath-roundtrip-{}", std::process::id()))
        .join(format!("{tag}.fxs"))
}

/// `(nodes, scores-debug, fingerprint)` of one run — everything a caller
/// can observe about the ranking.
fn observe(
    flex: &FleXPath,
    algorithm: Algorithm,
    scheme: RankingScheme,
    threads: usize,
) -> (Vec<flexpath::NodeId>, String, String) {
    let r = flex
        .query(QUERY)
        .expect("query parses")
        .top(25)
        .algorithm(algorithm)
        .scheme(scheme)
        .threads(threads)
        .trace()
        .execute();
    let nodes = r.hits.iter().map(|h| h.node).collect();
    let scores = format!("{:?}", r.hits.iter().map(|h| h.score).collect::<Vec<_>>());
    let fingerprint = r.trace.expect("trace requested").counter_fingerprint();
    (nodes, scores, fingerprint)
}

#[test]
fn saved_and_loaded_sessions_are_observationally_identical() {
    for (i, bytes) in [48 * 1024usize, 192 * 1024, 512 * 1024].iter().enumerate() {
        let built = FleXPath::new(generate(&XmarkConfig::sized(*bytes, 1)));
        let path = temp_path(&format!("size-{i}"));
        built.save(&path, "roundtrip").expect("store saves");
        let loaded = FleXPath::open(&path).expect("store opens");
        assert!(loaded.store_trace().is_some(), "load span must be exposed");

        for algorithm in ALGORITHMS {
            for scheme in SCHEMES {
                for threads in THREADS {
                    let a = observe(&built, algorithm, scheme, threads);
                    let b = observe(&loaded, algorithm, scheme, threads);
                    assert!(
                        !a.0.is_empty(),
                        "workload must produce answers ({bytes} B, {algorithm:?})"
                    );
                    assert_eq!(
                        a, b,
                        "restored session diverged: {bytes} B, {algorithm:?}, \
                         {scheme:?}, {threads} thread(s)"
                    );
                }
            }
        }
        let _ = std::fs::remove_dir_all(path.parent().expect("parent"));
    }
}

#[test]
fn save_is_deterministic_across_sessions() {
    // Two independent builds of the same corpus must serialize to the very
    // same bytes — the property the golden-file drift check relies on.
    let doc = || generate(&XmarkConfig::sized(64 * 1024, 7));
    let p1 = temp_path("det-1");
    let p2 = temp_path("det-2");
    FleXPath::new(doc()).save(&p1, "same").expect("save 1");
    FleXPath::new(doc()).save(&p2, "same").expect("save 2");
    let b1 = std::fs::read(&p1).expect("read 1");
    let b2 = std::fs::read(&p2).expect("read 2");
    assert_eq!(b1, b2, "store serialization must be deterministic");
    let _ = std::fs::remove_dir_all(p1.parent().expect("parent"));
}
