//! Markdown cross-reference check for the repo's documentation set.
//!
//! Every relative link in a tracked `*.md` file must resolve to a file
//! that exists, and every anchor (`#heading-slug`, bare or attached to a
//! file link) must match a heading in the target document under GitHub's
//! slug rules. Prose rots faster than code — README/ARCHITECTURE/
//! PERFORMANCE cross-link heavily, and a renamed section or moved file
//! silently strands readers. CI runs this as a named step so link rot
//! fails the build, not a reader.
//!
//! External links (`http://`, `https://`, `mailto:`) are out of scope:
//! checking them needs the network and their liveness is not this repo's
//! invariant.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Documentation files under the check. Kept explicit so a stray scratch
/// file cannot fail CI and a new doc must opt in (add it here when you
/// link to it). PAPER.md/PAPERS.md are verbatim extracted paper text
/// (their links point at figures that only existed in the source PDFs),
/// so they are excluded; links *to* them from tracked docs still get
/// existence checks.
const DOCS: &[&str] = &[
    "ARCHITECTURE.md",
    "CHANGES.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "PERFORMANCE.md",
    "README.md",
    "ROADMAP.md",
];

/// GitHub's heading → anchor slug: lowercase, spaces to hyphens, drop
/// everything that is not alphanumeric, hyphen, or underscore.
fn slugify(heading: &str) -> String {
    // Inline code/emphasis markers render as text but vanish from slugs.
    let stripped: String = heading.chars().filter(|c| !"`*".contains(*c)).collect();
    stripped
        .trim()
        .chars()
        .filter_map(|c| {
            if c.is_alphanumeric() || c == '_' || c == '-' {
                Some(c.to_ascii_lowercase())
            } else if c == ' ' {
                Some('-')
            } else {
                None
            }
        })
        .collect()
}

/// Markdown with fenced code blocks and inline code spans blanked out, so
/// a `[i]` in sample code is not mistaken for a link.
fn strip_code(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_fence = false;
    for line in text.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") || trimmed.starts_with("~~~") {
            in_fence = !in_fence;
            out.push('\n');
            continue;
        }
        if in_fence {
            out.push('\n');
            continue;
        }
        // Blank inline spans: every second backtick-delimited chunk.
        let mut in_span = false;
        for c in line.chars() {
            if c == '`' {
                in_span = !in_span;
                out.push(' ');
            } else if in_span {
                out.push(' ');
            } else {
                out.push(c);
            }
        }
        out.push('\n');
    }
    out
}

/// All `[text](target)` link targets in (code-stripped) markdown.
fn link_targets(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut targets = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
            let start = i + 2;
            if let Some(len) = text[start..].find(')') {
                let target = &text[start..start + len];
                // Strip an optional `"title"` suffix.
                let target = target.split_whitespace().next().unwrap_or("");
                if !target.is_empty() {
                    targets.push(target.to_string());
                }
                i = start + len;
            }
        }
        i += 1;
    }
    targets
}

/// Heading slugs of one document, with GitHub's `-1`, `-2` … suffixes for
/// repeated headings.
fn heading_slugs(text: &str) -> Vec<String> {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut slugs = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") || trimmed.starts_with("~~~") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence || !trimmed.starts_with('#') {
            continue;
        }
        let heading = trimmed.trim_start_matches('#').trim();
        let base = slugify(heading);
        let n = counts.entry(base.clone()).or_insert(0);
        slugs.push(if *n == 0 {
            base.clone()
        } else {
            format!("{base}-{n}")
        });
        *n += 1;
    }
    slugs
}

#[test]
fn markdown_cross_references_resolve() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut broken: Vec<String> = Vec::new();

    // Pre-read every doc so anchor checks against other files are cheap.
    let sources: BTreeMap<&str, String> = DOCS
        .iter()
        .map(|name| {
            let text = fs::read_to_string(root.join(name))
                .unwrap_or_else(|e| panic!("{name} listed in DOCS but unreadable: {e}"));
            (*name, text)
        })
        .collect();

    for (&name, text) in &sources {
        for target in link_targets(&strip_code(text)) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            let (path_part, anchor) = match target.split_once('#') {
                Some((p, a)) => (p, Some(a)),
                None => (target.as_str(), None),
            };
            // Resolve the file part (empty = this document).
            let (file_name, file_text): (String, &str) = if path_part.is_empty() {
                (name.to_string(), text.as_str())
            } else {
                let path = root.join(path_part);
                if !path.exists() {
                    broken.push(format!("{name}: link target `{target}` does not exist"));
                    continue;
                }
                match sources.get(path_part) {
                    Some(t) => (path_part.to_string(), t.as_str()),
                    // Exists but not a tracked doc (source file, directory):
                    // existence is all we check.
                    None => continue,
                }
            };
            if let Some(anchor) = anchor {
                if !heading_slugs(file_text).iter().any(|s| s == anchor) {
                    broken.push(format!(
                        "{name}: anchor `#{anchor}` not found in {file_name}"
                    ));
                }
            }
        }
    }

    assert!(
        broken.is_empty(),
        "broken markdown cross-references:\n  {}",
        broken.join("\n  ")
    );
}

#[test]
fn slugify_matches_github_rules() {
    assert_eq!(slugify("Threading model"), "threading-model");
    assert_eq!(
        slugify("Where the time goes (SSO, 10 MB)"),
        "where-the-time-goes-sso-10-mb"
    );
    assert_eq!(slugify("`order.rs` — buckets"), "orderrs--buckets");
}

#[test]
fn every_tracked_doc_exists() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for name in DOCS {
        assert!(
            root.join(name).exists(),
            "{name} missing but listed in DOCS"
        );
    }
}
