//! Integration tests for value-predicate relaxation (paper Section 3.4:
//! "`$i.price ≤ 98` with `$i.price ≤ 100`"), wired through the facade.

use flexpath::{Algorithm, AttrRelaxation, FleXPath};

const SHOP: &str = r#"<shop>
  <item id="cheap" price="80"><desc>gold ring</desc></item>
  <item id="edge" price="98"><desc>gold band</desc></item>
  <item id="near" price="105"><desc>gold hoop</desc></item>
  <item id="far" price="500"><desc>gold crown</desc></item>
</shop>"#;

const QUERY: &str = "//item[@price <= 98 and .contains(\"gold\")]";

fn label(flex: &FleXPath, node: flexpath::NodeId) -> String {
    let id = flex.document().symbols().lookup("id").unwrap();
    flex.document()
        .attribute(node, id)
        .unwrap_or("?")
        .to_string()
}

#[test]
fn strict_bounds_by_default() {
    let flex = FleXPath::from_xml(SHOP).unwrap();
    let r = flex.query(QUERY).unwrap().top(10).execute();
    let mut labels: Vec<String> = r.hits.iter().map(|h| label(&flex, h.node)).collect();
    labels.sort();
    assert_eq!(labels, ["cheap", "edge"]);
}

#[test]
fn slack_admits_near_misses_at_a_penalty() {
    let flex = FleXPath::from_xml(SHOP).unwrap();
    let r = flex
        .query(QUERY)
        .unwrap()
        .top(10)
        .attr_relaxation(AttrRelaxation {
            slack: 0.1,
            weight: 1.0,
        })
        .execute();
    let labels: Vec<String> = r.hits.iter().map(|h| label(&flex, h.node)).collect();
    // 98 × 1.1 ≈ 107.8: the 105 item enters, the 500 item stays out.
    assert_eq!(labels.len(), 3, "{labels:?}");
    assert!(labels.contains(&"near".to_string()));
    assert!(!labels.contains(&"far".to_string()));
    // Strict-bound answers outrank the slackened one.
    let near = r
        .hits
        .iter()
        .find(|h| label(&flex, h.node) == "near")
        .unwrap();
    for h in &r.hits {
        if label(&flex, h.node) != "near" {
            assert!(h.score.ss > near.score.ss, "strict matches must outrank");
        }
    }
    // Penalty is the strict/relaxed fraction: 2 strict of 3 relaxed → 2/3.
    let strictest = r.hits[0].score.ss;
    assert!((strictest - near.score.ss - 2.0 / 3.0).abs() < 1e-9);
}

#[test]
fn string_attributes_are_never_slackened() {
    let xml = r#"<shop>
      <item id="t" cat="tools"><desc>gold</desc></item>
      <item id="z" cat="toolz"><desc>gold</desc></item>
    </shop>"#;
    let flex = FleXPath::from_xml(xml).unwrap();
    let r = flex
        .query("//item[@cat = \"tools\" and .contains(\"gold\")]")
        .unwrap()
        .top(10)
        .attr_relaxation(AttrRelaxation::default())
        .execute();
    let labels: Vec<String> = r.hits.iter().map(|h| label(&flex, h.node)).collect();
    assert_eq!(labels, ["t"]);
}

#[test]
fn composes_across_algorithms() {
    let flex = FleXPath::from_xml(SHOP).unwrap();
    let mut expected: Option<Vec<flexpath::NodeId>> = None;
    for alg in [Algorithm::Dpo, Algorithm::Sso, Algorithm::Hybrid] {
        let r = flex
            .query(QUERY)
            .unwrap()
            .top(10)
            .algorithm(alg)
            .attr_relaxation(AttrRelaxation::default())
            .execute();
        let mut nodes = r.nodes();
        nodes.sort();
        match &expected {
            None => expected = Some(nodes),
            Some(e) => assert_eq!(&nodes, e, "{alg} disagrees"),
        }
    }
}

#[test]
fn composes_with_structural_relaxation() {
    let xml = r#"<shop>
      <item id="deep" price="105"><wrap><desc>gold ring</desc></wrap></item>
      <item id="flat" price="80"><desc>gold ring</desc></item>
    </shop>"#;
    let flex = FleXPath::from_xml(xml).unwrap();
    let r = flex
        .query("//item[@price <= 98 and ./desc[.contains(\"gold\")]]")
        .unwrap()
        .top(10)
        .attr_relaxation(AttrRelaxation {
            slack: 0.1,
            weight: 1.0,
        })
        .execute();
    let labels: Vec<String> = r.hits.iter().map(|h| label(&flex, h.node)).collect();
    assert_eq!(labels, ["flat", "deep"], "both relaxation kinds stack");
}
