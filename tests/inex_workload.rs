//! End-to-end validation on the paper's *motivating* workload: an
//! INEX-style article collection with a controlled mix of Figure-1
//! scenarios. Because the generator labels each article with its scenario,
//! we can check the core claim of the paper exactly: FleXPath's ranking
//! recovers every near-miss class, in structural-fidelity order, without
//! admitting off-topic articles.

use flexpath::{Algorithm, FleXPath, NodeId};
use flexpath_xmark::{generate_articles, ArticlesConfig, Scenario};
use std::collections::HashMap;

const Q1: &str =
    "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" and \"streaming\")]]]";

/// Builds the corpus and a map from answer node to its known scenario.
fn corpus(seed: u64) -> (FleXPath, HashMap<NodeId, Option<Scenario>>) {
    let cfg = ArticlesConfig {
        articles: 200,
        seed,
        topic_fraction: 0.4,
        ..Default::default()
    };
    let (doc, scenarios) = generate_articles(&cfg);
    let articles: Vec<NodeId> = doc.nodes_with_tag_name("article").to_vec();
    let map = articles
        .into_iter()
        .zip(scenarios)
        .collect::<HashMap<_, _>>();
    (FleXPath::new(doc), map)
}

#[test]
fn strict_interpretation_finds_only_exact_articles() {
    let (flex, scenarios) = corpus(11);
    let r = flex
        .query(Q1)
        .unwrap()
        .top(10_000)
        .max_relaxations(0)
        .execute();
    assert!(!r.hits.is_empty());
    for h in &r.hits {
        assert_eq!(
            scenarios[&h.node],
            Some(Scenario::Exact),
            "strict Q1 must only return Exact articles"
        );
    }
}

#[test]
fn flexible_interpretation_recovers_every_scenario_class() {
    let (flex, scenarios) = corpus(12);
    let r = flex.query(Q1).unwrap().top(10_000).execute();
    let mut found: Vec<Scenario> = Vec::new();
    for h in &r.hits {
        if let Some(s) = scenarios[&h.node] {
            if !found.contains(&s) {
                found.push(s);
            }
        }
    }
    for expected in [
        Scenario::Exact,
        Scenario::TitleKeywords,
        Scenario::AlgorithmOutside,
        Scenario::NoAlgorithm,
        Scenario::KeywordsAnywhere,
    ] {
        assert!(found.contains(&expected), "missing {expected:?} in results");
    }
    // Off-topic articles never appear: they lack the keywords entirely.
    for h in &r.hits {
        assert!(
            scenarios[&h.node].is_some(),
            "off-topic article leaked into the results"
        );
    }
}

#[test]
fn scenario_classes_rank_in_structural_fidelity_order() {
    let (flex, scenarios) = corpus(13);
    let r = flex.query(Q1).unwrap().top(10_000).execute();
    // Mean rank position per scenario.
    let mut sums: HashMap<Scenario, (usize, usize)> = HashMap::new();
    for (rank, h) in r.hits.iter().enumerate() {
        if let Some(s) = scenarios[&h.node] {
            let e = sums.entry(s).or_insert((0, 0));
            e.0 += rank;
            e.1 += 1;
        }
    }
    let mean = |s: Scenario| {
        let (sum, n) = sums[&s];
        sum as f64 / n as f64
    };
    // Exact articles rank best; keywords-anywhere articles rank worst.
    assert!(mean(Scenario::Exact) < mean(Scenario::TitleKeywords));
    assert!(mean(Scenario::Exact) < mean(Scenario::AlgorithmOutside));
    assert!(mean(Scenario::TitleKeywords) < mean(Scenario::KeywordsAnywhere));
    assert!(mean(Scenario::AlgorithmOutside) < mean(Scenario::KeywordsAnywhere));
    assert!(mean(Scenario::NoAlgorithm) < mean(Scenario::KeywordsAnywhere));
    // And every exact article scores the maximal structural score.
    let best = r.hits[0].score.ss;
    for h in &r.hits {
        if scenarios[&h.node] == Some(Scenario::Exact) {
            assert!((h.score.ss - best).abs() < 1e-9);
        }
    }
}

#[test]
fn precision_at_k_improves_with_structure() {
    // The paper's Section 1 argument, quantified: with K = #exact articles,
    // the structure-aware ranking's precision for Exact articles is perfect,
    // while a purely keyword-based query (Q6) cannot separate the classes.
    let (flex, scenarios) = corpus(14);
    let exact_count = scenarios
        .values()
        .filter(|s| **s == Some(Scenario::Exact))
        .count();
    assert!(exact_count > 3);

    let structured = flex.query(Q1).unwrap().top(exact_count).execute();
    let hits_exact = structured
        .hits
        .iter()
        .filter(|h| scenarios[&h.node] == Some(Scenario::Exact))
        .count();
    assert_eq!(
        hits_exact, exact_count,
        "structure-first top-K must be exactly the Exact class"
    );

    let keyword_only = flex
        .query("//article[.contains(\"XML\" and \"streaming\")]")
        .unwrap()
        .top(exact_count)
        .execute();
    let keyword_exact = keyword_only
        .hits
        .iter()
        .filter(|h| scenarios[&h.node] == Some(Scenario::Exact))
        .count();
    assert!(
        keyword_exact < exact_count,
        "pure keyword search should not isolate the Exact class"
    );
}

#[test]
fn algorithms_agree_on_the_article_workload() {
    let (flex, _) = corpus(15);
    for k in [10, 40] {
        let s = flex
            .query(Q1)
            .unwrap()
            .top(k)
            .algorithm(Algorithm::Sso)
            .execute();
        let h = flex
            .query(Q1)
            .unwrap()
            .top(k)
            .algorithm(Algorithm::Hybrid)
            .execute();
        assert_eq!(s.nodes(), h.nodes(), "k={k}");
    }
}
