//! Integration tests for the Section 3.4 extension: tag relaxation through
//! a type hierarchy. The paper's own example: "replace `$1.tag = article`
//! with `$1.tag = publication` if the type hierarchy says article is a
//! subtype of publication".

use flexpath::{Algorithm, FleXPath, TagHierarchy};

const LIBRARY: &str = r#"<library>
  <article id="art"><section><paragraph>XML streaming survey</paragraph></section></article>
  <book id="bk"><section><paragraph>XML streaming chapter</paragraph></section></book>
  <thesis id="th"><section><paragraph>XML streaming dissertation</paragraph></section></thesis>
  <advert id="ad"><section><paragraph>XML streaming gadget</paragraph></section></advert>
</library>"#;

const QUERY: &str = "//article[./section/paragraph[.contains(\"XML\" and \"streaming\")]]";

fn publication_hierarchy() -> TagHierarchy {
    let mut h = TagHierarchy::new();
    h.add_type("publication", &["article", "book", "thesis"]);
    h
}

fn label(flex: &FleXPath, node: flexpath::NodeId) -> String {
    let id = flex.document().symbols().lookup("id").unwrap();
    flex.document()
        .attribute(node, id)
        .unwrap_or("?")
        .to_string()
}

#[test]
fn without_hierarchy_only_articles_answer() {
    let flex = FleXPath::from_xml(LIBRARY).unwrap();
    let r = flex.query(QUERY).unwrap().top(10).execute();
    let labels: Vec<String> = r.hits.iter().map(|h| label(&flex, h.node)).collect();
    assert_eq!(labels, ["art"]);
}

#[test]
fn hierarchy_admits_sibling_subtypes_with_lower_scores() {
    let flex = FleXPath::from_xml(LIBRARY).unwrap();
    let r = flex
        .query(QUERY)
        .unwrap()
        .top(10)
        .hierarchy(publication_hierarchy())
        .execute();
    let labels: Vec<String> = r.hits.iter().map(|h| label(&flex, h.node)).collect();
    // The exact article first; book and thesis admitted via the hierarchy;
    // advert is not a publication and stays excluded.
    assert_eq!(labels.len(), 3, "{labels:?}");
    assert_eq!(labels[0], "art");
    assert!(labels.contains(&"bk".to_string()));
    assert!(labels.contains(&"th".to_string()));
    assert!(!labels.contains(&"ad".to_string()));
    // The exact tag match outranks the relaxed ones.
    assert!(r.hits[0].score.ss > r.hits[1].score.ss);
    assert!((r.hits[1].score.ss - r.hits[2].score.ss).abs() < 1e-9);
}

#[test]
fn hierarchy_penalty_reflects_subtype_dominance() {
    // 3 articles, 1 book: relaxing "article" gains little (penalty high);
    // relaxing "book" opens a much larger set (penalty low). The relaxed
    // answers' scores must order accordingly.
    let xml = r#"<lib>
      <article><p>gold</p></article>
      <article><p>x</p></article>
      <article><p>y</p></article>
      <book><p>gold</p></book>
    </lib>"#;
    let flex = FleXPath::from_xml(xml).unwrap();
    let mut h = TagHierarchy::new();
    h.add_type("publication", &["article", "book"]);

    // Query for articles containing gold: the book is a relaxed answer with
    // penalty #(article)/#(publication members) = 3/4.
    let r = flex
        .query("//article[.contains(\"gold\")]")
        .unwrap()
        .top(5)
        .hierarchy(h.clone())
        .execute();
    assert_eq!(r.hits.len(), 2);
    let relaxed = &r.hits[1];
    assert!(
        (r.hits[0].score.ss - relaxed.score.ss - 0.75).abs() < 1e-9,
        "expected penalty 3/4, got {}",
        r.hits[0].score.ss - relaxed.score.ss
    );

    // Query for books containing gold: the article relaxation costs only
    // #(book)/#(members) = 1/4.
    let r = flex
        .query("//book[.contains(\"gold\")]")
        .unwrap()
        .top(5)
        .hierarchy(h)
        .execute();
    assert_eq!(r.hits.len(), 2);
    assert!((r.hits[0].score.ss - r.hits[1].score.ss - 0.25).abs() < 1e-9);
}

#[test]
fn hierarchy_composes_with_structural_relaxation() {
    let xml = r#"<lib>
      <article><section><paragraph>gold coin</paragraph></section></article>
      <book><wrapper><section><paragraph>gold coin</paragraph></section></wrapper></book>
      <note>gold coin</note>
    </lib>"#;
    let flex = FleXPath::from_xml(xml).unwrap();
    let mut h = TagHierarchy::new();
    h.add_type("publication", &["article", "book"]);
    let r = flex
        .query("//article[./section[./paragraph[.contains(\"gold\")]]]")
        .unwrap()
        .top(5)
        .hierarchy(h)
        .execute();
    let tags: Vec<&str> = r
        .hits
        .iter()
        .filter_map(|hit| flex.document().tag_name(hit.node))
        .collect();
    // Article exact, book via hierarchy + axis relaxation; the note is not
    // a publication and never matches.
    assert!(tags.contains(&"article"));
    assert!(tags.contains(&"book"));
    assert!(!tags.contains(&"note"));
    assert_eq!(tags[0], "article", "exact match must rank first");
}

#[test]
fn all_algorithms_support_the_hierarchy() {
    let flex = FleXPath::from_xml(LIBRARY).unwrap();
    let mut expected: Option<Vec<flexpath::NodeId>> = None;
    for alg in [Algorithm::Dpo, Algorithm::Sso, Algorithm::Hybrid] {
        let r = flex
            .query(QUERY)
            .unwrap()
            .top(10)
            .algorithm(alg)
            .hierarchy(publication_hierarchy())
            .execute();
        let mut nodes = r.nodes();
        nodes.sort();
        match &expected {
            None => expected = Some(nodes),
            Some(e) => assert_eq!(&nodes, e, "{alg} disagrees"),
        }
    }
}

#[test]
fn hierarchy_answers_do_not_claim_exact_tag_bits() {
    let flex = FleXPath::from_xml(LIBRARY).unwrap();
    let r = flex
        .query(QUERY)
        .unwrap()
        .top(10)
        .hierarchy(publication_hierarchy())
        .execute();
    let exact = &r.hits[0];
    let relaxed = &r.hits[1];
    // The relaxed answer fails at least one bit the exact one satisfies.
    assert_ne!(exact.satisfied & !relaxed.satisfied, 0);
}
