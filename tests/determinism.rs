//! Parallel-execution determinism contract: a query run on N worker
//! threads returns **byte-identical** top-K output to the sequential run —
//! same answer ids, same scores, same Completeness — for every algorithm
//! and ranking scheme. This is the engine-level consequence of Theorem 3
//! (order-invariance) plus the deterministic chunk/merge discipline in
//! `flexpath_engine::parallel` (see ARCHITECTURE.md, "Threading model").
//!
//! Also covered: cancelling a parallel run mid-flight stops every worker,
//! and a cancelled DPO run still returns an exact rank prefix of the
//! unbounded ranking (whole speculative batches are discarded, never split).

use flexpath::{Algorithm, CancelToken, FleXPath, ParallelConfig, QueryResults, RankingScheme};
use flexpath_xmark::{generate, XmarkConfig};
use std::sync::OnceLock;

/// A ~2MB XMark document: large enough that every algorithm's candidate
/// sets clear the fan-out floor, small enough to keep the matrix fast.
fn session() -> &'static FleXPath {
    static SESSION: OnceLock<FleXPath> = OnceLock::new();
    SESSION.get_or_init(|| FleXPath::new(generate(&XmarkConfig::sized(2 * 1024 * 1024, 42))))
}

const QUERIES: &[&str] = &[
    "//item[./description/parlist/listitem and ./mailbox/mail/text and ./name]",
    "//item[./description/parlist and ./mailbox/mail/text[./bold and ./keyword]]",
];

/// The full serialized observable state of a result — if any byte of this
/// differs across thread counts, the determinism contract is broken.
fn render(r: &QueryResults) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "completeness={:?}", r.completeness);
    for (rank, hit) in r.hits.iter().enumerate() {
        let _ = writeln!(
            out,
            "#{rank} node={:?} ss={:.17} ks={:.17} satisfied={:#x} level={}",
            hit.node, hit.score.ss, hit.score.ks, hit.satisfied, hit.relaxation_level
        );
    }
    out
}

#[test]
fn threads_8_output_is_byte_identical_to_threads_1() {
    let flex = session();
    // min_round_size = 1 forces the candidate fan-out even where the
    // default floor would keep small rounds sequential — the stronger test.
    let mut eight = ParallelConfig::with_threads(8);
    eight.min_round_size = 1;
    for &query in QUERIES {
        for algorithm in [Algorithm::Dpo, Algorithm::Sso, Algorithm::Hybrid] {
            for scheme in [
                RankingScheme::StructureFirst,
                RankingScheme::KeywordFirst,
                RankingScheme::Combined,
            ] {
                let run = |parallel: ParallelConfig| {
                    flex.query(query)
                        .unwrap()
                        .top(25)
                        .algorithm(algorithm)
                        .scheme(scheme)
                        .parallel(parallel)
                        .execute()
                };
                let seq = run(ParallelConfig::with_threads(1));
                let par = run(eight);
                assert_eq!(
                    render(&seq),
                    render(&par),
                    "{algorithm} / {scheme:?} / {query}: threads=8 diverged from threads=1"
                );
                assert!(!seq.hits.is_empty(), "matrix cell must exercise answers");
            }
        }
    }
}

#[test]
fn intermediate_thread_counts_agree_too() {
    let flex = session();
    let baseline = flex
        .query(QUERIES[0])
        .unwrap()
        .top(40)
        .algorithm(Algorithm::Dpo)
        .threads(1)
        .execute();
    for threads in [2, 3, 4] {
        let mut cfg = ParallelConfig::with_threads(threads);
        cfg.min_round_size = 1;
        let r = flex
            .query(QUERIES[0])
            .unwrap()
            .top(40)
            .algorithm(Algorithm::Dpo)
            .parallel(cfg)
            .execute();
        assert_eq!(render(&baseline), render(&r), "threads={threads}");
    }
}

#[test]
fn dpo_work_counters_match_across_thread_counts() {
    // Speculative rounds that get discarded must not leak into the
    // committed work counters: evaluations/relaxations_used reflect the
    // committed rounds only, which are the same at every thread count.
    let flex = session();
    let run = |threads: usize| {
        flex.query(QUERIES[0])
            .unwrap()
            .top(25)
            .algorithm(Algorithm::Dpo)
            .threads(threads)
            .execute()
    };
    let seq = run(1);
    let par = run(8);
    assert_eq!(seq.stats.evaluations, par.stats.evaluations);
    assert_eq!(seq.stats.relaxations_used, par.stats.relaxations_used);
    assert_eq!(
        seq.stats.intermediate_answers,
        par.stats.intermediate_answers
    );
}

#[test]
fn trace_counter_fingerprints_are_identical_across_thread_counts() {
    // The observability contract on top of the output contract: the
    // deterministic counter fingerprint (span tree + all counters except
    // durations and the nd.* namespace) is byte-identical at every thread
    // count, for every algorithm and ranking scheme.
    let flex = session();
    for algorithm in [Algorithm::Dpo, Algorithm::Sso, Algorithm::Hybrid] {
        for scheme in [
            RankingScheme::StructureFirst,
            RankingScheme::KeywordFirst,
            RankingScheme::Combined,
        ] {
            let run = |threads: usize| {
                let mut cfg = ParallelConfig::with_threads(threads);
                cfg.min_round_size = 1;
                flex.query(QUERIES[0])
                    .unwrap()
                    .top(25)
                    .algorithm(algorithm)
                    .scheme(scheme)
                    .parallel(cfg)
                    .trace()
                    .execute()
                    .trace
                    .expect("trace requested")
                    .counter_fingerprint()
            };
            let baseline = run(1);
            assert!(
                baseline.contains("governor.checkpoint."),
                "{algorithm} / {scheme:?}: fingerprint must carry checkpoint counters"
            );
            // The estimate-vs-actual skew counters are span counters and
            // therefore part of the fingerprint — they must be present
            // (the estimator runs unbudgeted on the driver thread) and,
            // below, identical at every thread count.
            let skew_key = match algorithm {
                Algorithm::Dpo => "round.estimated",
                Algorithm::Sso | Algorithm::Hybrid => "pass.estimated",
            };
            assert!(
                baseline.contains(skew_key),
                "{algorithm} / {scheme:?}: fingerprint must carry {skew_key}"
            );
            for threads in [2, 4, 8] {
                assert_eq!(
                    baseline,
                    run(threads),
                    "{algorithm} / {scheme:?}: fingerprint diverged at threads={threads}"
                );
            }
        }
    }
}

#[test]
fn fingerprints_survive_flight_recording_at_every_thread_count() {
    // The serve-side flight recorder hashes the committed fingerprint and
    // pushes a record after execution; all of that is read-only over the
    // trace, so running with the recorder fed at threads 1/2/4/8 must
    // leave fingerprints (and their FNV-1a hashes) byte-identical.
    use flexpath_serve::recorder::{fnv1a, FlightRecorder, QueryRecord};
    let flex = session();
    for algorithm in [Algorithm::Dpo, Algorithm::Sso, Algorithm::Hybrid] {
        let recorder = FlightRecorder::new(32, std::time::Duration::ZERO);
        let run = |threads: usize| {
            let mut cfg = ParallelConfig::with_threads(threads);
            cfg.min_round_size = 1;
            let results = flex
                .query(QUERIES[1])
                .unwrap()
                .top(25)
                .algorithm(algorithm)
                .parallel(cfg)
                .trace()
                .execute();
            let fp = results
                .trace
                .as_ref()
                .expect("trace requested")
                .counter_fingerprint();
            recorder.record(QueryRecord {
                id: 0,
                endpoint: "query",
                corpus: "xmark".into(),
                query: QueryRecord::clip_query(QUERIES[1]),
                algorithm: results.algorithm.to_string().to_ascii_lowercase(),
                scheme: "structure_first".into(),
                k: 25,
                threads: threads as u64,
                limits: flexpath::QueryLimits::default(),
                duration: std::time::Duration::ZERO,
                complete: results.is_complete(),
                exhaust_reason: None,
                trip_site: None,
                answers: results.hits.len() as u64,
                estimated_answers: results.stats.estimated_answers,
                observed_answers: results.stats.observed_answers,
                skew_millibits: flexpath::skew_millibits(
                    results.stats.estimated_answers,
                    results.stats.observed_answers,
                ),
                fingerprint_hash: Some(fnv1a(fp.as_bytes())),
            });
            fp
        };
        let baseline = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(
                baseline,
                run(threads),
                "{algorithm}: fingerprint diverged at threads={threads} with recorder on"
            );
        }
        let records = recorder.recent(8);
        assert_eq!(records.len(), 4, "{algorithm}: one record per thread count");
        assert!(
            records
                .windows(2)
                .all(|w| w[0].fingerprint_hash == w[1].fingerprint_hash),
            "{algorithm}: recorded fingerprint hashes diverged across thread counts"
        );
        assert!(
            records
                .windows(2)
                .all(|w| w[0].skew_millibits == w[1].skew_millibits),
            "{algorithm}: recorded skew diverged across thread counts"
        );
    }
}

#[test]
fn concurrent_cancel_stops_all_workers_and_keeps_exact_rank_prefix() {
    let flex = session();
    let unbounded = flex
        .query(QUERIES[0])
        .unwrap()
        .top(60)
        .algorithm(Algorithm::Dpo)
        .threads(8)
        .execute();
    assert!(unbounded.is_complete());

    // Cancel from another thread while the 8-worker run is mid-round. The
    // cancel token is shared by every worker through the budget's atomics,
    // so one store stops all of them at their next checkpoint.
    for delay_us in [50u64, 200, 1_000, 5_000] {
        let cancel = CancelToken::new();
        let canceller = {
            let token = cancel.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_micros(delay_us));
                token.cancel();
            })
        };
        let start = std::time::Instant::now();
        let bounded = flex
            .query(QUERIES[0])
            .unwrap()
            .top(60)
            .algorithm(Algorithm::Dpo)
            .threads(8)
            .cancel(cancel)
            .execute();
        let elapsed = start.elapsed();
        canceller.join().expect("canceller thread");
        // All workers observed the trip: execute() returned promptly (the
        // scoped fan-out joins every worker before returning, so merely
        // returning proves no worker kept running).
        assert!(
            elapsed < std::time::Duration::from_secs(10),
            "cancelled run took {elapsed:?}"
        );
        // Exact rank prefix: whole speculative batches are discarded on a
        // trip, so the committed answers are a prefix of the unbounded
        // ranking — never a torn round.
        assert!(
            bounded.hits.len() <= unbounded.hits.len(),
            "cancelled run returned more answers than the complete run"
        );
        assert_eq!(
            bounded.nodes(),
            unbounded.nodes()[..bounded.hits.len()].to_vec(),
            "cancelled parallel DPO must return an exact rank prefix (delay={delay_us}µs)"
        );
        if !bounded.is_complete() {
            // Tripped runs must say so; complete runs (cancel arrived too
            // late) are fine and already covered by the prefix check.
            assert!(bounded.hits.len() <= unbounded.hits.len());
        }
    }
}

#[test]
fn shared_session_parallel_queries_from_many_threads_agree() {
    // The sharded FT cache makes one session safe to share across query
    // threads, each of which is itself running a multi-threaded query.
    let flex = session();
    let expected = render(
        &flex
            .query(QUERIES[1])
            .unwrap()
            .top(20)
            .algorithm(Algorithm::Hybrid)
            .threads(1)
            .execute(),
    );
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                let r = flex
                    .query(QUERIES[1])
                    .unwrap()
                    .top(20)
                    .algorithm(Algorithm::Hybrid)
                    .threads(4)
                    .execute();
                assert_eq!(expected, render(&r));
            });
        }
    });
}
