//! Integration tests reproducing the paper's worked examples end-to-end:
//! Figure 1's query lattice, Example 1's score computation, and the
//! Section 1 narrative ("a strict interpretation of Q1 would miss …").

use flexpath::{Algorithm, FleXPath, RankingScheme};
use flexpath_engine::{build_schedule, PenaltyModel, WeightAssignment};
use flexpath_tpq::{contains_query, parse_query, Predicate, Var};

const Q1: &str =
    "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" and \"streaming\")]]]";
const Q2: &str =
    "//article[./section[./algorithm and ./paragraph and .contains(\"XML\" and \"streaming\")]]";
const Q3: &str =
    "//article[.//algorithm and ./section[./paragraph[.contains(\"XML\" and \"streaming\")]]]";
const Q4: &str =
    "//article[.//algorithm and ./section[./paragraph and .contains(\"XML\" and \"streaming\")]]";
const Q5: &str = "//article[./section[./paragraph and .contains(\"XML\" and \"streaming\")]]";
const Q6: &str = "//article[.contains(\"XML\" and \"streaming\")]";

/// One article per "miss scenario" described in Section 1.
const COLLECTION: &str = r#"<collection>
  <article id="exactQ1"><section>
    <algorithm>alg</algorithm>
    <paragraph>an XML streaming method</paragraph></section></article>
  <article id="titleKeywords"><section>
    <title>XML streaming</title>
    <algorithm>alg</algorithm>
    <paragraph>unrelated text</paragraph></section></article>
  <article id="algOutside"><section>
    <paragraph>more XML streaming text</paragraph></section>
    <algorithm>alg</algorithm></article>
  <article id="noAlgorithm"><section>
    <paragraph>pure XML streaming survey</paragraph></section></article>
  <article id="keywordsAnywhere"><aside>XML streaming aside</aside></article>
  <article id="irrelevant"><section><algorithm>alg</algorithm>
    <paragraph>databases</paragraph></section></article>
</collection>"#;

fn label(flex: &FleXPath, node: flexpath::NodeId) -> String {
    let id = flex.document().symbols().lookup("id").unwrap();
    flex.document()
        .attribute(node, id)
        .unwrap_or("?")
        .to_string()
}

#[test]
fn figure_1_lattice_is_exactly_as_printed() {
    let qs: Vec<_> = [Q1, Q2, Q3, Q4, Q5, Q6]
        .iter()
        .map(|s| parse_query(s).unwrap())
        .collect();
    // Q1 ⊂ Q2, Q1 ⊂ Q3, Q2 ⊂ Q4, Q3 ⊂ Q4, Q4 ⊂ Q5, Q5 ⊂ Q6.
    let expected = [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5)];
    for (a, b) in expected {
        assert!(contains_query(&qs[a], &qs[b]), "Q{} ⊆ Q{}", a + 1, b + 1);
        assert!(!contains_query(&qs[b], &qs[a]), "Q{} ⊄ Q{}", b + 1, a + 1);
    }
}

#[test]
fn strict_q1_misses_what_flexpath_recovers() {
    let flex = FleXPath::from_xml(COLLECTION).unwrap();
    // Strict interpretation: only the exact article answers.
    let strict = flex.query(Q1).unwrap().top(1).execute();
    assert_eq!(label(&flex, strict.hits[0].node), "exactQ1");
    assert_eq!(strict.hits[0].relaxation_level, 0);

    // Flexible interpretation: the Section 1 scenarios appear, correctly
    // ordered by structural fidelity, and the off-topic article never does.
    let flexed = flex.query(Q1).unwrap().top(10).execute();
    let labels: Vec<String> = flexed.hits.iter().map(|h| label(&flex, h.node)).collect();
    assert_eq!(
        labels.len(),
        5,
        "irrelevant article must not appear: {labels:?}"
    );
    assert_eq!(labels[0], "exactQ1");
    assert!(!labels.contains(&"irrelevant".to_string()));
    // The title-keywords article (Q2's catch) outranks the structure-poor
    // keywords-anywhere article (Q6's catch).
    let pos = |l: &str| labels.iter().position(|x| x == l).unwrap();
    assert!(pos("titleKeywords") < pos("keywordsAnywhere"));
    assert!(pos("algOutside") < pos("keywordsAnywhere"));
    // Scores decrease monotonically.
    for w in flexed.hits.windows(2) {
        assert!(w[0].score.ss >= w[1].score.ss - 1e-12);
    }
}

#[test]
fn each_figure_1_query_answers_its_scenario_exactly() {
    let flex = FleXPath::from_xml(COLLECTION).unwrap();
    // (query, article that becomes newly visible under its *strict* form)
    let cases = [
        (Q2, "titleKeywords"),
        (Q3, "algOutside"),
        (Q5, "noAlgorithm"),
        (Q6, "keywordsAnywhere"),
    ];
    for (q, newly_visible) in cases {
        let r = flex.query(q).unwrap().top(10).max_relaxations(0).execute();
        let labels: Vec<String> = r.hits.iter().map(|h| label(&flex, h.node)).collect();
        assert!(
            labels.contains(&newly_visible.to_string()),
            "{q} should catch {newly_visible}, got {labels:?}"
        );
        assert!(
            labels.contains(&"exactQ1".to_string()),
            "{q} contains Q1's answers"
        );
    }
}

#[test]
fn example_1_score_arithmetic() {
    // Example 1: with uniform unit weights, the structural score of an
    // answer to Q1 is 3; Q5's answers score 3 minus the penalties of the
    // four dropped predicates.
    let flex = FleXPath::from_xml(COLLECTION).unwrap();
    let q1 = parse_query(Q1).unwrap();
    let model = PenaltyModel::new(&q1, WeightAssignment::uniform());
    assert_eq!(model.base_structural_score(&q1), 3.0);

    let e = flexpath::FtExpr::all_of(&["XML", "streaming"]);
    let dropped = [
        Predicate::Pc(Var(2), Var(3)),
        Predicate::Ad(Var(2), Var(3)),
        Predicate::Ad(Var(1), Var(3)),
        Predicate::Contains(Var(4), e),
    ];
    let penalty = model.total_penalty(flex.context(), dropped.iter());
    assert!(penalty > 0.0);
    // Every component is within its unit weight.
    for p in &dropped {
        let pi = model.penalty(flex.context(), p);
        assert!((0.0..=1.0).contains(&pi), "π({p}) = {pi}");
    }
    // The noAlgorithm article is a Q5-but-not-Q4 answer: its reported score
    // must equal base − (sum of penalties of exactly the predicates it
    // fails), which is ≥ the Example-1 lower bound 3 − Σπ.
    let r = flex.query(Q1).unwrap().top(10).execute();
    let no_alg = r
        .hits
        .iter()
        .find(|h| label(&flex, h.node) == "noAlgorithm")
        .expect("noAlgorithm article is an answer");
    assert!(no_alg.score.ss >= 3.0 - penalty - 1e-9);
    assert!(no_alg.score.ss < 3.0);
}

#[test]
fn schedule_reproduces_paper_operator_names() {
    let flex = FleXPath::from_xml(COLLECTION).unwrap();
    let q1 = parse_query(Q1).unwrap();
    let model = PenaltyModel::new(&q1, WeightAssignment::uniform());
    let schedule = build_schedule(flex.context(), &model, &q1, 64);
    assert!(!schedule.is_empty());
    // The schedule must include at least one of each operator family for
    // this query (it has pc-edges, a deletable leaf, a promotable subtree,
    // and a contains predicate).
    let shown: String = schedule.iter().map(|s| s.op.to_string()).collect();
    for glyph in ["γ", "λ", "σ", "κ"] {
        assert!(shown.contains(glyph), "missing {glyph} in {shown}");
    }
}

#[test]
fn all_algorithms_and_schemes_agree_on_the_collection() {
    let flex = FleXPath::from_xml(COLLECTION).unwrap();
    for scheme in [
        RankingScheme::StructureFirst,
        RankingScheme::KeywordFirst,
        RankingScheme::Combined,
    ] {
        let mut per_alg = Vec::new();
        for alg in [Algorithm::Dpo, Algorithm::Sso, Algorithm::Hybrid] {
            let r = flex
                .query(Q1)
                .unwrap()
                .top(5)
                .scheme(scheme)
                .algorithm(alg)
                .execute();
            let mut nodes = r.nodes();
            nodes.sort();
            per_alg.push(nodes);
        }
        assert_eq!(per_alg[1], per_alg[2], "SSO vs Hybrid under {scheme:?}");
        assert_eq!(per_alg[0], per_alg[1], "DPO vs SSO under {scheme:?}");
    }
}
