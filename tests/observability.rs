//! Observability-layer acceptance: EXPLAIN ANALYZE renders the full span
//! tree for a relaxed XMark query (per-round operator, candidate / prune /
//! cache / governor-checkpoint counters), the trace JSON is well-formed,
//! and the process-wide metrics registry accumulates across queries.

use flexpath::{explain_profile, Algorithm, FleXPath, ParallelConfig};
use flexpath_xmark::{generate, XmarkConfig};
use std::sync::OnceLock;

fn session() -> &'static FleXPath {
    static SESSION: OnceLock<FleXPath> = OnceLock::new();
    SESSION.get_or_init(|| FleXPath::new(generate(&XmarkConfig::sized(2 * 1024 * 1024, 42))))
}

/// A query that *requires* relaxation to fill k, so the profile shows
/// relaxation rounds beyond round[0].
const RELAXED: &str =
    "//item[./description/parlist/listitem and ./mailbox/mail/text[./bold and ./keyword]]";

#[test]
fn explain_profile_renders_rounds_counters_and_fingerprint() {
    let text = explain_profile(session(), RELAXED, 500, Algorithm::Dpo).unwrap();
    // Header and outcome.
    assert!(text.contains("EXPLAIN ANALYZE"), "{text}");
    assert!(text.contains("completeness: complete"), "{text}");
    // Span tree: parse, schedule, and relaxation rounds with their operator.
    assert!(text.contains("parse ["), "{text}");
    assert!(text.contains("schedule ["), "{text}");
    assert!(text.contains("round[0] op=exact"), "{text}");
    assert!(
        text.contains("round[1] op="),
        "relaxation must have run: {text}"
    );
    // Per-round counters, including the estimate-vs-actual pair.
    assert!(text.contains("round.candidates="), "{text}");
    assert!(text.contains("round.duplicates_pruned="), "{text}");
    assert!(text.contains("round.admitted="), "{text}");
    assert!(text.contains("round.estimated="), "{text}");
    assert!(text.contains("round.observed="), "{text}");
    // The rendered estimate-vs-actual table with log2-ratio skew.
    assert!(text.contains("--- estimate vs actual ---"), "{text}");
    assert!(text.contains("skew(bits)"), "{text}");
    // Cache delta (nd.* namespace) and governor checkpoint counters.
    assert!(text.contains("nd.cache.hits="), "{text}");
    assert!(text.contains("nd.cache.misses="), "{text}");
    assert!(text.contains("governor.checkpoint.dpo_round="), "{text}");
    assert!(
        text.contains("governor.checkpoint.candidate_loop="),
        "{text}"
    );
    // Deterministic fingerprint section, nd.* excluded from it.
    let fp = text
        .split("--- deterministic counter fingerprint ---")
        .nth(1)
        .expect("fingerprint section");
    // Counter keys are space-separated in fingerprint lines; no key may
    // come from the scheduling-dependent nd.* namespace.
    assert!(!fp.contains(" nd."), "fingerprint must exclude nd.*: {fp}");
    assert!(fp.contains("dpo>round[0] op=exact"), "{fp}");
}

#[test]
fn trace_json_is_balanced_and_carries_spans() {
    let r = session()
        .query(RELAXED)
        .unwrap()
        .top(10)
        .algorithm(Algorithm::Hybrid)
        .trace()
        .execute();
    let json = r.trace.expect("trace requested").render_json();
    assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "unbalanced braces: {json}"
    );
    assert!(json.contains("\"name\":\"hybrid\""), "{json}");
    assert!(json.contains("\"duration_us\":"), "{json}");
    assert!(json.contains("\"children\":["), "{json}");
}

#[test]
fn registry_accumulates_queries_and_parallel_worker_attribution() {
    let flex = session();
    let before = flexpath::engine_metrics();
    let mut cfg = ParallelConfig::with_threads(4);
    cfg.min_round_size = 1;
    for _ in 0..3 {
        let r = flex
            .query(RELAXED)
            .unwrap()
            .top(25)
            .algorithm(Algorithm::Dpo)
            .parallel(cfg)
            .execute();
        assert!(!r.hits.is_empty());
    }
    let after = flexpath::engine_metrics();
    let delta = |k: &str| {
        after.counters.get(k).copied().unwrap_or(0) - before.counters.get(k).copied().unwrap_or(0)
    };
    assert!(delta("engine.query.count") >= 3);
    assert!(delta("engine.query.dpo") >= 3);
    assert!(delta("engine.exec.evaluations") > 0);
    assert!(delta("engine.exec.candidates") > 0);
    // Fan-out only engages when a second hardware thread exists: the
    // requested width is clamped to the machine, and a clamped width of 1
    // runs inline (the cost gate, see `flexpath_engine::parallel`). On a
    // single-core machine the *absence* of fan-outs is the asserted
    // behaviour.
    if flexpath::hardware_threads() > 1 {
        assert!(delta("engine.parallel.fan_outs") > 0);
        assert!(delta("engine.parallel.worker[0].items") > 0);
    } else {
        assert_eq!(delta("engine.parallel.fan_outs"), 0);
    }
    // The duration histogram saw every query.
    let hist_before = before
        .histograms
        .get("engine.query_duration")
        .map(|h| h.count)
        .unwrap_or(0);
    let hist_after = after
        .histograms
        .get("engine.query_duration")
        .map(|h| h.count)
        .unwrap_or(0);
    assert!(hist_after >= hist_before + 3);
    // Text rendering mentions the counters.
    let text = after.render_text();
    assert!(text.contains("engine.query.count"), "{text}");
}

#[test]
fn skew_telemetry_accumulates_per_algorithm_histograms() {
    let flex = session();
    let before = flexpath::engine_metrics();
    for algorithm in [Algorithm::Dpo, Algorithm::Sso, Algorithm::Hybrid] {
        let r = flex
            .query(RELAXED)
            .unwrap()
            .top(25)
            .algorithm(algorithm)
            .execute();
        assert!(!r.hits.is_empty());
        // Per-query skew summary is surfaced on the stats, and its sign
        // convention matches the registry encoding.
        let _ = flexpath::skew_millibits(r.stats.estimated_answers, r.stats.observed_answers);
    }
    let after = flexpath::engine_metrics();
    for algo in ["dpo", "sso", "hybrid"] {
        let name = format!("engine.skew.{algo}.millibits");
        let count = |snap: &flexpath::MetricsSnapshot| {
            snap.histograms.get(&name).map(|h| h.count).unwrap_or(0)
        };
        assert!(
            count(&after) > count(&before),
            "{name} histogram saw no observations"
        );
        // Observations land in the sign counters too. (Exact equality with
        // the histogram delta is checked in the engine's unit tests; here
        // other tests may run queries concurrently, so only monotonicity
        // is asserted.)
        let signs: u64 = ["over", "under", "exact"]
            .iter()
            .map(|s| {
                let key = format!("engine.skew.{algo}.{s}");
                after.counters.get(&key).copied().unwrap_or(0)
                    - before.counters.get(&key).copied().unwrap_or(0)
            })
            .sum();
        assert!(signs >= 1, "engine.skew.{algo} sign counters did not move");
    }
}

#[test]
fn prometheus_exposition_parses_and_carries_skew_histograms() {
    let flex = session();
    let _ = flex
        .query(RELAXED)
        .unwrap()
        .top(25)
        .algorithm(Algorithm::Dpo)
        .execute();
    let text = flexpath::engine_metrics().render_prometheus();
    // Sanitized skew histogram series with the full Prometheus triplet.
    assert!(
        text.contains("engine_skew_dpo_millibits_bucket{le=\""),
        "{text}"
    );
    assert!(text.contains("engine_skew_dpo_millibits_sum"), "{text}");
    assert!(text.contains("engine_skew_dpo_millibits_count"), "{text}");
    assert!(text.contains("le=\"+Inf\""), "{text}");
    assert_prometheus_parses(&text);
}

/// A minimal Prometheus text-exposition parser: every line must be a
/// `# TYPE`/`# HELP` comment or a `name[{labels}] value` sample with a
/// metric name in `[a-zA-Z0-9_:]` and a float-parseable value, and every
/// histogram's `_bucket` series must be cumulative (monotone in `le`).
fn assert_prometheus_parses(text: &str) {
    let mut samples = 0usize;
    let mut last_bucket: Option<(String, u64)> = None;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE line names a metric");
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name in {line:?}"
            );
            let kind = parts.next().expect("TYPE line has a kind");
            assert!(
                kind == "counter" || kind == "histogram" || kind == "gauge",
                "unknown TYPE in {line:?}"
            );
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or other comments
        }
        let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
        let name = match series.split_once('{') {
            Some((n, labels)) => {
                assert!(labels.ends_with('}'), "unterminated labels in {line:?}");
                n
            }
            None => series,
        };
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad series name in {line:?}"
        );
        let v: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("bad value in {line:?}"));
        // Cumulative-bucket check: within one _bucket series, counts never
        // decrease ("+Inf" is ordered last by the renderer).
        if let Some(base) = name.strip_suffix("_bucket") {
            let count = v as u64;
            match &last_bucket {
                Some((prev, prev_count)) if prev == base => {
                    assert!(
                        count >= *prev_count,
                        "non-cumulative bucket in {line:?} (prev {prev_count})"
                    );
                    last_bucket = Some((base.to_string(), count));
                }
                _ => last_bucket = Some((base.to_string(), count)),
            }
        } else {
            last_bucket = None;
        }
        samples += 1;
    }
    assert!(samples > 0, "exposition was empty");
}
