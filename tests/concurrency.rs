//! Concurrency contract: one [`FleXPath`] session serves queries from many
//! threads simultaneously with identical results, and the shared full-text
//! cache is populated exactly once per expression.

use flexpath::{Algorithm, CancelToken, FleXPath, QueryLimits};
use flexpath_xmark::{generate, XmarkConfig};
use std::sync::Arc;
use std::time::Duration;

const QUERY: &str =
    "//item[./description/parlist and ./mailbox/mail/text[.contains(\"vintage\" and \"gold\")]]";

#[test]
fn session_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FleXPath>();
    assert_send_sync::<flexpath::TagHierarchy>();
    assert_send_sync::<flexpath::Thesaurus>();
}

#[test]
fn parallel_queries_agree_with_serial_execution() {
    let flex = Arc::new(FleXPath::new(generate(&XmarkConfig::sized(128 * 1024, 33))));
    let serial = flex.query(QUERY).unwrap().top(25).execute();

    let mut handles = Vec::new();
    for t in 0..8 {
        let flex = Arc::clone(&flex);
        handles.push(std::thread::spawn(move || {
            let alg = match t % 3 {
                0 => Algorithm::Dpo,
                1 => Algorithm::Sso,
                _ => Algorithm::Hybrid,
            };
            let r = flex.query(QUERY).unwrap().top(25).algorithm(alg).execute();
            (alg, r.nodes())
        }));
    }
    for h in handles {
        let (alg, nodes) = h.join().expect("worker did not panic");
        if alg != Algorithm::Dpo {
            assert_eq!(nodes, serial.nodes(), "{alg} differs under concurrency");
        } else {
            // DPO's round-level scores may tie-break differently; the sets
            // must still agree.
            let mut a = nodes;
            let mut b = serial.nodes();
            a.sort();
            b.sort();
            assert_eq!(a, b, "DPO set differs under concurrency");
        }
    }
}

/// The serving contract: a shared session stays byte-deterministic even
/// while sibling threads are having their queries cancelled or tripped by
/// deadlines mid-flight. Budget trips on one thread must never leak into
/// another thread's schedule, scores, or trace counters.
#[test]
fn cancellation_on_one_thread_never_perturbs_another() {
    let flex = Arc::new(FleXPath::new(generate(&XmarkConfig::sized(128 * 1024, 35))));
    let fingerprint = |flex: &FleXPath| {
        let r = flex
            .query(QUERY)
            .unwrap()
            .top(25)
            .algorithm(Algorithm::Hybrid)
            .trace()
            .execute();
        assert!(r.completeness.is_complete(), "reference run is complete");
        (
            r.nodes(),
            format!("{:?}", r.hits.iter().map(|h| h.score).collect::<Vec<_>>()),
            r.trace.expect("trace requested").counter_fingerprint(),
        )
    };
    let serial = fingerprint(&flex);

    let mut handles = Vec::new();
    for t in 0..12 {
        let flex = Arc::clone(&flex);
        handles.push(std::thread::spawn(move || match t % 3 {
            // A third of the threads run the real query with a trace.
            0 => {
                let r = flex
                    .query(QUERY)
                    .unwrap()
                    .top(25)
                    .algorithm(Algorithm::Hybrid)
                    .trace()
                    .execute();
                Some((
                    r.nodes(),
                    format!("{:?}", r.hits.iter().map(|h| h.score).collect::<Vec<_>>()),
                    r.trace.expect("trace requested").counter_fingerprint(),
                ))
            }
            // A third get cancelled before they start: zero answers, a
            // typed Cancelled completeness, no panic.
            1 => {
                let token = CancelToken::new();
                token.cancel();
                let r = flex.query(QUERY).unwrap().top(25).cancel(token).execute();
                assert!(!r.completeness.is_complete(), "cancelled run is partial");
                None
            }
            // A third trip an absurdly small deadline mid-flight.
            _ => {
                let r = flex
                    .query(QUERY)
                    .unwrap()
                    .top(25)
                    .limits(QueryLimits::default().with_deadline(Duration::from_nanos(1)))
                    .execute();
                assert!(!r.completeness.is_complete(), "deadline run is partial");
                None
            }
        }));
    }
    for h in handles {
        if let Some(observed) = h.join().expect("worker did not panic") {
            assert_eq!(
                observed, serial,
                "concurrent run diverged from serial fingerprint"
            );
        }
    }

    // After all that mid-flight cancellation, the shared session still
    // produces the identical bytes: nothing was poisoned.
    assert_eq!(fingerprint(&flex), serial, "session state perturbed");
}

#[test]
fn ft_cache_is_shared_across_threads() {
    let flex = Arc::new(FleXPath::new(generate(&XmarkConfig::sized(64 * 1024, 34))));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let flex = Arc::clone(&flex);
        handles.push(std::thread::spawn(move || {
            flex.query(QUERY).unwrap().top(5).execute().hits.len()
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // One distinct contains expression → at most a couple of cache entries
    // (the expression plus any schedule-derived duplicates), not 4×.
    assert!(
        flex.context().ft_cache_size() <= 2,
        "cache should be shared, found {} entries",
        flex.context().ft_cache_size()
    );
}
