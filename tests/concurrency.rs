//! Concurrency contract: one [`FleXPath`] session serves queries from many
//! threads simultaneously with identical results, and the shared full-text
//! cache is populated exactly once per expression.

use flexpath::{Algorithm, FleXPath};
use flexpath_xmark::{generate, XmarkConfig};
use std::sync::Arc;

const QUERY: &str =
    "//item[./description/parlist and ./mailbox/mail/text[.contains(\"vintage\" and \"gold\")]]";

#[test]
fn session_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FleXPath>();
    assert_send_sync::<flexpath::TagHierarchy>();
    assert_send_sync::<flexpath::Thesaurus>();
}

#[test]
fn parallel_queries_agree_with_serial_execution() {
    let flex = Arc::new(FleXPath::new(generate(&XmarkConfig::sized(128 * 1024, 33))));
    let serial = flex.query(QUERY).unwrap().top(25).execute();

    let mut handles = Vec::new();
    for t in 0..8 {
        let flex = Arc::clone(&flex);
        handles.push(std::thread::spawn(move || {
            let alg = match t % 3 {
                0 => Algorithm::Dpo,
                1 => Algorithm::Sso,
                _ => Algorithm::Hybrid,
            };
            let r = flex.query(QUERY).unwrap().top(25).algorithm(alg).execute();
            (alg, r.nodes())
        }));
    }
    for h in handles {
        let (alg, nodes) = h.join().expect("worker did not panic");
        if alg != Algorithm::Dpo {
            assert_eq!(nodes, serial.nodes(), "{alg} differs under concurrency");
        } else {
            // DPO's round-level scores may tie-break differently; the sets
            // must still agree.
            let mut a = nodes;
            let mut b = serial.nodes();
            a.sort();
            b.sort();
            assert_eq!(a, b, "DPO set differs under concurrency");
        }
    }
}

#[test]
fn ft_cache_is_shared_across_threads() {
    let flex = Arc::new(FleXPath::new(generate(&XmarkConfig::sized(64 * 1024, 34))));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let flex = Arc::clone(&flex);
        handles.push(std::thread::spawn(move || {
            flex.query(QUERY).unwrap().top(5).execute().hits.len()
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // One distinct contains expression → at most a couple of cache entries
    // (the expression plus any schedule-derived duplicates), not 4×.
    assert!(
        flex.context().ft_cache_size() <= 2,
        "cache should be shared, found {} entries",
        flex.context().ft_cache_size()
    );
}
