//! Property tests for the bucketized order-maintenance structure
//! (`flexpath_engine::order`) that replaced the score-sorted intermediate
//! `Vec` in PR 7.
//!
//! The contract under test: [`TopKBuckets`] makes the **same keep/prune
//! decision** on every offered answer, and emits the **same ranked
//! sequence** (best key first, ties in arrival order, truncated to K), as
//! the naive shifting implementation it replaced — for every ranking
//! scheme, every K, and every prefix of the offer stream (a governor
//! budget trip can cut the stream anywhere, so prefix equivalence is what
//! makes the replacement observable-behavior-preserving under
//! cancellation too).
//!
//! The oracle here *is* the old implementation in miniature: a `Vec` kept
//! sorted best-first via binary search + `insert` (the shift storm), with
//! the identical prune rule (`len ≥ k` and key ≤ the K-th best).
//!
//! Also covered: [`PruneFloor`] against a sort-based oracle, and the
//! end-to-end regression that `sorted_insert_shifts` stays **zero** on the
//! Fig. 13 workload (XQ3 over XMark) for every algorithm.

use flexpath::{
    Algorithm, Answer, AnswerScore, FleXPath, Offer, PruneFloor, RankingScheme, ScoreKey,
    TopKBuckets,
};
use flexpath_xmark::{generate, XmarkConfig};

/// Deterministic splitmix-style LCG so failures reproduce exactly.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self, m: u32) -> u32 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 33) as u32) % m
    }
}

fn answer(node: u32, ss: f64, ks: f64) -> Answer {
    Answer {
        node: flexpath_xmldom::NodeId(node),
        score: AnswerScore { ss, ks },
        satisfied: 0,
        relaxation_level: 0,
    }
}

/// The naive sorted-`Vec` top-K: the pre-PR-7 implementation, re-stated as
/// an oracle. Insert position via the same "after every ≥ key" rule that
/// binary search + stable shift produced; prune iff K answers are held and
/// the key does not beat the K-th best.
struct VecOracle {
    k: usize,
    scheme: RankingScheme,
    /// Best-first; ties in arrival order.
    list: Vec<Answer>,
}

impl VecOracle {
    fn new(k: usize, scheme: RankingScheme) -> Self {
        VecOracle {
            k,
            scheme,
            list: Vec::new(),
        }
    }

    /// Returns `true` when the answer was kept (mirror of `Offer::Kept`).
    fn offer(&mut self, answer: Answer) -> bool {
        if self.k == 0 {
            return false;
        }
        let key = ScoreKey::new(&answer.score, self.scheme);
        if self.list.len() >= self.k {
            let kth = ScoreKey::new(&self.list[self.k - 1].score, self.scheme);
            if key <= kth {
                return false;
            }
        }
        // Position after every held answer with key ≥ ours: stable
        // best-first order, ties resolved by arrival.
        let pos = self
            .list
            .partition_point(|held| ScoreKey::new(&held.score, self.scheme) >= key);
        self.list.insert(pos, answer); // the shift the buckets avoid
        true
    }

    fn into_ranked(mut self) -> Vec<Answer> {
        self.list.truncate(self.k);
        self.list
    }
}

fn render(answers: &[Answer]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for a in answers {
        let _ = writeln!(
            out,
            "node={} ss={:.17} ks={:.17}",
            a.node.0, a.score.ss, a.score.ks
        );
    }
    out
}

const SCHEMES: [RankingScheme; 3] = [
    RankingScheme::StructureFirst,
    RankingScheme::KeywordFirst,
    RankingScheme::Combined,
];

/// Random offer streams on a coarse score grid (ties are common): the
/// buckets and the sorted-`Vec` oracle agree on every keep/prune decision
/// and on the final ranked sequence, for every scheme and assorted K.
#[test]
fn buckets_match_vec_oracle_on_random_streams() {
    let mut rng = Lcg(0x9E3779B97F4A7C15);
    for trial in 0..120 {
        let scheme = SCHEMES[(trial % 3) as usize];
        let k = [0, 1, 2, 3, 7, 16, 64][rng.next(7) as usize];
        let n = 1 + rng.next(200);
        let mut buckets = TopKBuckets::new(k, scheme);
        let mut oracle = VecOracle::new(k, scheme);
        for node in 0..n {
            // Grid of 8 distinct values per component → dense ties, plus
            // signed zero to exercise total_cmp's -0.0 < +0.0 ordering.
            let ss = match rng.next(8) {
                0 => -0.0,
                v => f64::from(v) / 8.0,
            };
            let ks = f64::from(rng.next(8)) / 8.0;
            let a = answer(node, ss, ks);
            let kept = buckets.offer(a.clone()) == Offer::Kept;
            let kept_oracle = oracle.offer(a);
            assert_eq!(
                kept, kept_oracle,
                "trial {trial} node {node}: keep/prune decision diverged"
            );
            if buckets.len() < k {
                assert_eq!(buckets.len(), oracle.list.len(), "len below K must agree");
            }
        }
        assert_eq!(
            render(&buckets.into_ranked()),
            render(&oracle.into_ranked()),
            "trial {trial} (k={k}, scheme={scheme:?}): ranked output diverged"
        );
    }
}

/// Budget-trip prefixes: a governor can cut the offer stream at any point,
/// and whatever prefix was offered must rank identically in both
/// structures. Replays every prefix length of a tie-heavy stream.
#[test]
fn every_prefix_of_the_stream_ranks_identically() {
    let mut rng = Lcg(0xDEADBEEFCAFE);
    let stream: Vec<Answer> = (0..80)
        .map(|node| {
            answer(
                node,
                f64::from(rng.next(4)) / 4.0,
                f64::from(rng.next(4)) / 4.0,
            )
        })
        .collect();
    for scheme in SCHEMES {
        for prefix in 0..=stream.len() {
            let mut buckets = TopKBuckets::new(5, scheme);
            let mut oracle = VecOracle::new(5, scheme);
            for a in &stream[..prefix] {
                buckets.offer(a.clone());
                oracle.offer(a.clone());
            }
            assert_eq!(
                render(&buckets.into_ranked()),
                render(&oracle.into_ranked()),
                "{scheme:?}: prefix {prefix} diverged"
            );
        }
    }
}

/// Arrival order within a tied bucket is preserved exactly — document
/// order when fed from the structural join, which is what makes the
/// replacement byte-identical rather than merely rank-equivalent.
#[test]
fn tied_keys_preserve_arrival_order() {
    for scheme in SCHEMES {
        let mut buckets = TopKBuckets::new(10, scheme);
        let mut oracle = VecOracle::new(10, scheme);
        for node in 0..12 {
            let a = answer(node, 0.5, 0.5); // all tied
            buckets.offer(a.clone());
            oracle.offer(a);
        }
        let got: Vec<u32> = buckets.into_ranked().iter().map(|a| a.node.0).collect();
        let want: Vec<u32> = oracle.into_ranked().iter().map(|a| a.node.0).collect();
        assert_eq!(got, want, "{scheme:?}");
        assert_eq!(got, (0..10).collect::<Vec<_>>(), "{scheme:?}");
    }
}

/// `PruneFloor` against a sort-based oracle: after any observation
/// sequence, the floor is the K-th best value seen (or `None` below K).
#[test]
fn prune_floor_matches_sort_oracle() {
    let mut rng = Lcg(0x1234_5678_9ABC);
    for trial in 0..60 {
        let k = rng.next(6) as usize; // includes k = 0
        let mut floor = PruneFloor::new(k);
        let mut seen: Vec<f64> = Vec::new();
        for _ in 0..rng.next(40) {
            let v = f64::from(rng.next(16)) / 16.0;
            floor.observe(v);
            seen.push(v);
            seen.sort_by(|a, b| b.total_cmp(a));
            let want = if k == 0 || seen.len() < k {
                None
            } else {
                Some(seen[k - 1])
            };
            assert_eq!(floor.floor(), want, "trial {trial} (k={k})");
        }
    }
}

/// Fig. 13 regression: on the thread-scaling workload (XQ3 over XMark) the
/// engine performs **zero** sorted-insert shifts for every algorithm — the
/// shift storm this structure was built to kill stays dead. Guards the
/// `shifts` column of `results/threads_scaling.json`.
#[test]
fn fig13_workload_performs_zero_sorted_insert_shifts() {
    const XQ3: &str = "//item[./description/parlist/listitem and ./mailbox/mail/text[./bold and ./keyword and ./emph] and ./name and ./incategory]";
    let flex = FleXPath::new(generate(&XmarkConfig::sized(2 * 1024 * 1024, 1)));
    for algorithm in [Algorithm::Dpo, Algorithm::Sso, Algorithm::Hybrid] {
        let r = flex
            .query(XQ3)
            .unwrap()
            .top(500)
            .algorithm(algorithm)
            .execute();
        assert!(
            !r.hits.is_empty(),
            "{algorithm}: workload must produce answers"
        );
        assert_eq!(
            r.stats.sorted_insert_shifts, 0,
            "{algorithm}: sorted-insert shifts crept back in"
        );
        // DPO ranks each speculative batch wholesale and never maintains a
        // cross-relaxation intermediate, so only SSO/Hybrid report buckets.
        if algorithm != Algorithm::Dpo {
            assert!(
                r.stats.buckets > 0,
                "{algorithm}: bucketized path must actually be in use"
            );
        }
    }
}
