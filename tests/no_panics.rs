//! Panic-policy guard, backed by the AST-level rule in `flexpath-lint`.
//!
//! This replaces the old indentation-counting line scanner: the linter
//! lexes each file, scopes `#[allow(…)]` / `#[cfg(test)]` attributes
//! structurally, and checks `.unwrap()` / `.expect(` / panic macros /
//! `unsafe` (plus direct indexing in the byte-decoding modules). Coverage
//! now includes `crates/ftsearch/src`, which the line scanner never saw.
//! A documented-contract panic opts out with `#[allow(clippy::…)]` or a
//! justified `// lint:allow(panic): …` comment, both honored here and by
//! clippy/the full workspace lint.

use std::path::Path;

/// Crate source trees covered by the panic policy.
const SCANNED: &[&str] = &[
    "crates/xmldom/src",
    "crates/engine/src",
    "crates/store/src",
    "crates/ftsearch/src",
];

#[test]
fn library_sources_pass_the_panic_policy_rule() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = flexpath_lint::lint_workspace(root).expect("workspace parses");
    assert!(
        report.files_scanned >= 30,
        "scan covered only {} sources — directory layout changed?",
        report.files_scanned
    );
    for dir in SCANNED {
        assert!(
            root.join(dir).is_dir(),
            "{dir} missing — panic-policy coverage shrank"
        );
    }
    let panics: Vec<String> = report
        .violations
        .iter()
        .filter(|v| v.rule == "panic")
        .map(|v| v.render())
        .collect();
    assert!(
        panics.is_empty(),
        "panic-policy violations (mark a documented contract with \
         #[allow(clippy::unwrap_used)] or `// lint:allow(panic): why`):\n{}",
        panics.join("\n")
    );
}

#[test]
fn rule_honors_the_allow_optout() {
    // The builder's infallible wrappers are the canonical opted-out panics:
    // the rule must see their `#[allow]` and stay quiet, and the file must
    // actually contain the expects being exempted (otherwise the guard is
    // vacuous).
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let builder = root.join("crates/xmldom/src/builder.rs");
    let text = std::fs::read_to_string(&builder).expect("builder.rs exists");
    assert!(text.contains("#[allow(clippy::expect_used)]"));
    assert!(text.contains(".expect("));
    let violations = flexpath_lint::lint_source(
        "crates/xmldom/src/builder.rs",
        &text,
        flexpath_lint::classify("crates/xmldom/src/builder.rs"),
    )
    .expect("builder.rs parses");
    let panics: Vec<&flexpath_lint::Violation> =
        violations.iter().filter(|v| v.rule == "panic").collect();
    assert!(panics.is_empty(), "{panics:?}");
}
