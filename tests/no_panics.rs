//! Panic-policy guard: library source of the input-facing crates must not
//! call `.unwrap()` / `.expect(` on input-reachable paths.
//!
//! The same rule is enforced at lint level by
//! `#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]`
//! in `flexpath-xmldom`, `flexpath-engine`, and `flexpath-store`; this test re-checks it by
//! source scan so plain `cargo test` catches violations without a clippy
//! run. A documented-contract panic opts out the enclosing item with
//! `#[allow(clippy::unwrap_used)]` / `#[allow(clippy::expect_used)]`, which
//! both the lint and this scan honor.

use std::fs;
use std::path::{Path, PathBuf};

/// Crate source trees covered by the panic policy.
const SCANNED: &[&str] = &["crates/xmldom/src", "crates/engine/src", "crates/store/src"];

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = fs::read_dir(dir).unwrap_or_else(|e| panic!("read {}: {e}", dir.display()));
    for entry in entries {
        let path = entry.expect("readable dir entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
}

/// Scans one file, appending `file:line: text` for every violation.
fn scan(path: &Path, violations: &mut Vec<String>) {
    let text = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    // Test modules sit at the end of each file; everything from the
    // `#[cfg(test)]` attribute on is out of scope for the policy.
    let lines = text
        .lines()
        .take_while(|l| !l.trim_start().starts_with("#[cfg(test)]"));
    // While > 0, we are inside an item exempted by an `#[allow(clippy::…)]`
    // attribute: skip until a closing brace returns to the attribute's
    // indentation.
    let mut exempt_indent: Option<usize> = None;
    for (idx, line) in lines.enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") {
            continue; // line, doc, and module comments
        }
        let indent = line.len() - trimmed.len();
        if let Some(allow_indent) = exempt_indent {
            if indent <= allow_indent && trimmed.starts_with('}') {
                exempt_indent = None;
            }
            continue;
        }
        if trimmed.starts_with("#[allow(clippy::unwrap_used")
            || trimmed.starts_with("#[allow(clippy::expect_used")
        {
            exempt_indent = Some(indent);
            continue;
        }
        if line.contains(".unwrap()") || line.contains(".expect(") {
            violations.push(format!("{}:{}: {}", path.display(), idx + 1, trimmed));
        }
    }
}

#[test]
fn library_sources_have_no_unwrap_or_expect_on_input_paths() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    for dir in SCANNED {
        rust_sources(&root.join(dir), &mut files);
    }
    assert!(
        files.len() >= 15,
        "scan found only {} sources — directory layout changed?",
        files.len()
    );
    let mut violations = Vec::new();
    for file in &files {
        scan(file, &mut violations);
    }
    assert!(
        violations.is_empty(),
        "unwrap/expect on library paths (mark a documented contract with \
         #[allow(clippy::unwrap_used)] / #[allow(clippy::expect_used)]):\n{}",
        violations.join("\n")
    );
}

#[test]
fn scan_honors_the_allow_optout() {
    // The builder's infallible wrappers are the canonical opted-out panics:
    // the scan must see their `#[allow]` and stay quiet, and the file must
    // actually contain the expects being exempted (otherwise the guard is
    // vacuous).
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let builder = root.join("crates/xmldom/src/builder.rs");
    let text = fs::read_to_string(&builder).expect("builder.rs exists");
    assert!(text.contains("#[allow(clippy::expect_used)]"));
    assert!(text.contains(".expect("));
    let mut violations = Vec::new();
    scan(&builder, &mut violations);
    assert!(violations.is_empty(), "{violations:?}");
}
