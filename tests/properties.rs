//! Randomized (seeded, deterministic) tests over random documents and
//! random queries: the empirical side of Theorems 2 and 3.
//!
//! * **Soundness** — for every applicable operator, `answers(Q) ⊆
//!   answers(op(Q))`, verified by actual evaluation (not just the
//!   homomorphism check).
//! * **Monotone growth** — each relaxation-schedule prefix's answer set
//!   contains the previous prefix's.
//! * **Algorithm agreement** — DPO, SSO, and Hybrid return consistent
//!   top-K answer sets.
//! * **Relevance** — relaxed answers never outscore exact ones.
//!
//! Each test drives its cases from a fixed-seed internal PRNG, so failures
//! reproduce exactly and no external property-testing framework is needed.

use flexpath::{Algorithm, FleXPath, RankingScheme};
use flexpath_engine::{full_encoding_topk, rewrite_enumeration_topk, TopKRequest};
use flexpath_tpq::{applicable_ops, apply_op, Tpq, TpqBuilder};
use flexpath_xmark::rng::{Rng, SeedableRng, StdRng};

const TAGS: [&str; 5] = ["a", "b", "c", "d", "e"];
const WORDS: [&str; 4] = ["gold", "silver", "vintage", "auction"];
const CASES: u64 = 48;

/// A random XML tree, rendered directly to a string.
fn random_doc(rng: &mut StdRng) -> String {
    fn subtree(rng: &mut StdRng, depth: u32, out: &mut String) {
        if depth >= 4 || rng.gen_bool(0.25) {
            out.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
            return;
        }
        let tag = TAGS[rng.gen_range(0..TAGS.len())];
        let kids = rng.gen_range(0..4usize);
        if kids == 0 {
            out.push_str(&format!("<{tag}/>"));
        } else {
            out.push_str(&format!("<{tag}>"));
            for _ in 0..kids {
                subtree(rng, depth + 1, out);
            }
            out.push_str(&format!("</{tag}>"));
        }
    }
    let mut body = String::new();
    subtree(rng, 0, &mut body);
    format!("<root>{body}</root>")
}

/// A random small TPQ rooted at a random tag.
fn random_query(rng: &mut StdRng) -> Tpq {
    let mut b = TpqBuilder::new(TAGS[rng.gen_range(0..TAGS.len())]);
    let mut created = vec![0usize];
    let nodes = rng.gen_range(1..4usize);
    for _ in 0..nodes {
        let tag = TAGS[rng.gen_range(0..TAGS.len())];
        let parent = created[rng.gen_range(0..created.len())];
        let idx = if rng.gen_bool(0.5) {
            b.child(parent, tag)
        } else {
            b.descendant(parent, tag)
        };
        created.push(idx);
    }
    if rng.gen_bool(0.5) {
        let target = *created.last().unwrap();
        let word = WORDS[rng.gen_range(0..WORDS.len())];
        b.add_contains(target, flexpath::FtExpr::term(word));
    }
    b.build()
}

/// Evaluates a TPQ exactly (no relaxation) and returns its answer set.
fn exact_answers(flex: &FleXPath, q: &Tpq) -> Vec<flexpath::NodeId> {
    let mut r = flex
        .query_tpq(q.clone())
        .top(usize::MAX / 2)
        .max_relaxations(0)
        .execute()
        .nodes();
    r.sort();
    r
}

/// Runs `body` over `CASES` deterministic (doc, query) pairs.
fn for_cases(seed: u64, mut body: impl FnMut(&mut StdRng, &str, &Tpq)) {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed ^ (case.wrapping_mul(0x9E37_79B9)));
        let xml = random_doc(&mut rng);
        let q = random_query(&mut rng);
        body(&mut rng, &xml, &q);
    }
}

#[test]
fn operators_are_sound_under_evaluation() {
    for_cases(0xA11CE, |_, xml, q| {
        let flex = FleXPath::from_xml(xml).unwrap();
        let base = exact_answers(&flex, q);
        for op in applicable_ops(q) {
            let relaxed = apply_op(q, &op).unwrap();
            let more = exact_answers(&flex, &relaxed);
            for n in &base {
                assert!(
                    more.contains(n),
                    "{op} lost answer {n:?} (query {}, doc {xml})",
                    q.to_xpath()
                );
            }
        }
    });
}

#[test]
fn relaxation_only_adds_answers_along_the_schedule() {
    for_cases(0xB0B, |_, xml, q| {
        let flex = FleXPath::from_xml(xml).unwrap();
        // Run with generous K and full relaxation: the result must contain
        // every exact answer, all carrying the maximal score.
        let exact = exact_answers(&flex, q);
        let full = flex.query_tpq(q.clone()).top(10_000).execute();
        let full_nodes: Vec<_> = full.nodes();
        for n in &exact {
            assert!(full_nodes.contains(n), "exact answer {n:?} missing");
        }
        if !exact.is_empty() {
            let best = full.hits[0].score.ss;
            for h in &full.hits {
                if exact.contains(&h.node) {
                    assert!(
                        (h.score.ss - best).abs() < 1e-9,
                        "exact answer scored below maximum"
                    );
                }
            }
        }
    });
}

#[test]
fn sso_and_hybrid_agree() {
    for_cases(0xC0FFEE, |rng, xml, q| {
        let k = rng.gen_range(1..8usize);
        let flex = FleXPath::from_xml(xml).unwrap();
        let s = flex
            .query_tpq(q.clone())
            .top(k)
            .algorithm(Algorithm::Sso)
            .execute();
        let h = flex
            .query_tpq(q.clone())
            .top(k)
            .algorithm(Algorithm::Hybrid)
            .execute();
        assert_eq!(s.nodes(), h.nodes());
        for (a, b) in s.hits.iter().zip(h.hits.iter()) {
            assert!((a.score.ss - b.score.ss).abs() < 1e-9);
            assert!((a.score.ks - b.score.ks).abs() < 1e-9);
        }
    });
}

#[test]
fn dpo_answer_sets_match_encoded_algorithms() {
    for_cases(0xD1CE, |rng, xml, q| {
        let k = rng.gen_range(1..8usize);
        let flex = FleXPath::from_xml(xml).unwrap();
        let d = flex
            .query_tpq(q.clone())
            .top(k)
            .algorithm(Algorithm::Dpo)
            .execute();
        let h = flex
            .query_tpq(q.clone())
            .top(k)
            .algorithm(Algorithm::Hybrid)
            .execute();
        // DPO's coarser per-round scores can reorder ties, but the sets of
        // structural scores attainable must agree in size.
        assert_eq!(d.hits.len(), h.hits.len());
    });
}

#[test]
fn relevance_exact_answers_never_outscored() {
    for_cases(0xFACE, |_, xml, q| {
        let flex = FleXPath::from_xml(xml).unwrap();
        let r = flex.query_tpq(q.clone()).top(10_000).execute();
        let exact = exact_answers(&flex, q);
        let best_exact = r
            .hits
            .iter()
            .filter(|h| exact.contains(&h.node))
            .map(|h| h.score.ss)
            .fold(f64::NEG_INFINITY, f64::max);
        if best_exact.is_finite() {
            for h in &r.hits {
                assert!(
                    h.score.ss <= best_exact + 1e-9,
                    "relaxed answer outscored exact ones structurally"
                );
            }
        }
    });
}

#[test]
fn encoded_and_enumerated_strategies_agree_on_answer_sets() {
    for_cases(0x5EED, |_, xml, q| {
        // Two *independent* evaluation paths: the relaxation-encoded plan
        // (ghost operands + bitsets) vs exhaustive query enumeration with
        // exact evaluation. They must cover the same answer universe.
        let flex = FleXPath::from_xml(xml).unwrap();
        let req = TopKRequest::new(q.clone(), 10_000);
        let encoded = full_encoding_topk(flex.context(), &req);
        let enumerated = rewrite_enumeration_topk(flex.context(), &req, 5_000);
        let mut a = encoded.nodes();
        let mut b = enumerated.nodes();
        a.sort();
        a.dedup();
        b.sort();
        b.dedup();
        assert_eq!(a, b, "strategies diverge on {} / {}", q.to_xpath(), xml);
    });
}

#[test]
fn scheme_results_are_permutations_of_each_other_at_full_k() {
    for_cases(0xF00D, |_, xml, q| {
        let flex = FleXPath::from_xml(xml).unwrap();
        let mut sets = Vec::new();
        for scheme in [
            RankingScheme::StructureFirst,
            RankingScheme::KeywordFirst,
            RankingScheme::Combined,
        ] {
            let mut nodes = flex
                .query_tpq(q.clone())
                .top(10_000)
                .scheme(scheme)
                .execute()
                .nodes();
            nodes.sort();
            sets.push(nodes);
        }
        assert_eq!(&sets[0], &sets[1]);
        assert_eq!(&sets[1], &sets[2]);
    });
}
