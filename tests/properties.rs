//! Property-based tests over random documents and random queries:
//! the empirical side of Theorems 2 and 3.
//!
//! * **Soundness** — for every applicable operator, `answers(Q) ⊆
//!   answers(op(Q))`, verified by actual evaluation (not just the
//!   homomorphism check).
//! * **Monotone growth** — each relaxation-schedule prefix's answer set
//!   contains the previous prefix's.
//! * **Algorithm agreement** — DPO, SSO, and Hybrid return consistent
//!   top-K answer sets.
//! * **Relevance** — relaxed answers never outscore exact ones.

use flexpath::{Algorithm, FleXPath, RankingScheme};
use flexpath_engine::{full_encoding_topk, rewrite_enumeration_topk, TopKRequest};
use flexpath_tpq::{applicable_ops, apply_op, Tpq, TpqBuilder};
use proptest::prelude::*;

const TAGS: [&str; 5] = ["a", "b", "c", "d", "e"];
const WORDS: [&str; 4] = ["gold", "silver", "vintage", "auction"];

/// A random XML tree, rendered directly to a string.
fn arb_doc() -> impl Strategy<Value = String> {
    let leaf = (0usize..WORDS.len()).prop_map(|w| WORDS[w].to_string());
    let tree = leaf.prop_recursive(4, 24, 4, |inner| {
        (0usize..TAGS.len(), prop::collection::vec(inner, 0..4)).prop_map(|(t, kids)| {
            let tag = TAGS[t];
            if kids.is_empty() {
                format!("<{tag}/>")
            } else {
                format!("<{tag}>{}</{tag}>", kids.join(""))
            }
        })
    });
    tree.prop_map(|body| format!("<root>{body}</root>"))
}

/// A random small TPQ rooted at a random tag.
fn arb_query() -> impl Strategy<Value = Tpq> {
    (
        0usize..TAGS.len(),
        prop::collection::vec((0usize..TAGS.len(), any::<bool>(), 0usize..3), 1..4),
        prop::option::of(0usize..WORDS.len()),
    )
        .prop_map(|(root_tag, nodes, contains_word)| {
            let mut b = TpqBuilder::new(TAGS[root_tag]);
            let mut created = vec![0usize];
            for (tag, is_child, parent_pick) in nodes {
                let parent = created[parent_pick % created.len()];
                let idx = if is_child {
                    b.child(parent, TAGS[tag])
                } else {
                    b.descendant(parent, TAGS[tag])
                };
                created.push(idx);
            }
            if let Some(w) = contains_word {
                let target = *created.last().unwrap();
                b.add_contains(target, flexpath::FtExpr::term(WORDS[w]));
            }
            b.build()
        })
}

/// Evaluates a TPQ exactly (no relaxation) and returns its answer set.
fn exact_answers(flex: &FleXPath, q: &Tpq) -> Vec<flexpath::NodeId> {
    let mut r = flex
        .query_tpq(q.clone())
        .top(usize::MAX / 2)
        .max_relaxations(0)
        .execute()
        .nodes();
    r.sort();
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn operators_are_sound_under_evaluation(xml in arb_doc(), q in arb_query()) {
        let flex = FleXPath::from_xml(&xml).unwrap();
        let base = exact_answers(&flex, &q);
        for op in applicable_ops(&q) {
            let relaxed = apply_op(&q, &op).unwrap();
            let more = exact_answers(&flex, &relaxed);
            for n in &base {
                prop_assert!(
                    more.contains(n),
                    "{op} lost answer {n} (query {}, doc {xml})",
                    q.to_xpath()
                );
            }
        }
    }

    #[test]
    fn relaxation_only_adds_answers_along_the_schedule(
        xml in arb_doc(),
        q in arb_query(),
    ) {
        let flex = FleXPath::from_xml(&xml).unwrap();
        // Run with generous K and full relaxation: the result must contain
        // every exact answer, all carrying the maximal score.
        let exact = exact_answers(&flex, &q);
        let full = flex
            .query_tpq(q.clone())
            .top(10_000)
            .execute();
        let full_nodes: Vec<_> = full.nodes();
        for n in &exact {
            prop_assert!(full_nodes.contains(n), "exact answer {n} missing");
        }
        if !exact.is_empty() {
            let best = full.hits[0].score.ss;
            for h in &full.hits {
                if exact.contains(&h.node) {
                    prop_assert!((h.score.ss - best).abs() < 1e-9,
                        "exact answer scored below maximum");
                }
            }
        }
    }

    #[test]
    fn sso_and_hybrid_agree(xml in arb_doc(), q in arb_query(), k in 1usize..8) {
        let flex = FleXPath::from_xml(&xml).unwrap();
        let s = flex.query_tpq(q.clone()).top(k).algorithm(Algorithm::Sso).execute();
        let h = flex.query_tpq(q.clone()).top(k).algorithm(Algorithm::Hybrid).execute();
        prop_assert_eq!(s.nodes(), h.nodes());
        for (a, b) in s.hits.iter().zip(h.hits.iter()) {
            prop_assert!((a.score.ss - b.score.ss).abs() < 1e-9);
            prop_assert!((a.score.ks - b.score.ks).abs() < 1e-9);
        }
    }

    #[test]
    fn dpo_answer_sets_match_encoded_algorithms(
        xml in arb_doc(),
        q in arb_query(),
        k in 1usize..8,
    ) {
        let flex = FleXPath::from_xml(&xml).unwrap();
        let d = flex.query_tpq(q.clone()).top(k).algorithm(Algorithm::Dpo).execute();
        let h = flex.query_tpq(q.clone()).top(k).algorithm(Algorithm::Hybrid).execute();
        // DPO's coarser per-round scores can reorder ties, but the sets of
        // structural scores attainable must agree in size.
        prop_assert_eq!(d.hits.len(), h.hits.len());
    }

    #[test]
    fn relevance_exact_answers_never_outscored(xml in arb_doc(), q in arb_query()) {
        let flex = FleXPath::from_xml(&xml).unwrap();
        let r = flex.query_tpq(q.clone()).top(10_000).execute();
        let exact = exact_answers(&flex, &q);
        let best_exact = r
            .hits
            .iter()
            .filter(|h| exact.contains(&h.node))
            .map(|h| h.score.ss)
            .fold(f64::NEG_INFINITY, f64::max);
        if best_exact.is_finite() {
            for h in &r.hits {
                prop_assert!(h.score.ss <= best_exact + 1e-9,
                    "relaxed answer outscored exact ones structurally");
            }
        }
    }

    #[test]
    fn encoded_and_enumerated_strategies_agree_on_answer_sets(
        xml in arb_doc(),
        q in arb_query(),
    ) {
        // Two *independent* evaluation paths: the relaxation-encoded plan
        // (ghost operands + bitsets) vs exhaustive query enumeration with
        // exact evaluation. They must cover the same answer universe.
        let flex = FleXPath::from_xml(&xml).unwrap();
        let req = TopKRequest::new(q.clone(), 10_000);
        let encoded = full_encoding_topk(flex.context(), &req);
        let enumerated = rewrite_enumeration_topk(flex.context(), &req, 5_000);
        let mut a = encoded.nodes();
        let mut b = enumerated.nodes();
        a.sort();
        a.dedup();
        b.sort();
        b.dedup();
        prop_assert_eq!(a, b, "strategies diverge on {} / {}", q.to_xpath(), xml);
    }

    #[test]
    fn scheme_results_are_permutations_of_each_other_at_full_k(
        xml in arb_doc(),
        q in arb_query(),
    ) {
        let flex = FleXPath::from_xml(&xml).unwrap();
        let mut sets = Vec::new();
        for scheme in [
            RankingScheme::StructureFirst,
            RankingScheme::KeywordFirst,
            RankingScheme::Combined,
        ] {
            let mut nodes = flex
                .query_tpq(q.clone())
                .top(10_000)
                .scheme(scheme)
                .execute()
                .nodes();
            nodes.sort();
            sets.push(nodes);
        }
        prop_assert_eq!(&sets[0], &sets[1]);
        prop_assert_eq!(&sets[1], &sets[2]);
    }
}
