//! Resource-governor contract: deadlines, budgets, and cross-thread
//! cancellation degrade gracefully to best-effort top-K results instead of
//! panicking or running away — and DPO's partial results are exact rank
//! prefixes of the unbounded run (Theorem 3; see DESIGN.md, "Resource
//! governance & partial results").

use flexpath::{Algorithm, CancelToken, Completeness, ExhaustReason, FleXPath, QueryLimits};
use flexpath_xmark::{generate, XmarkConfig};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// The paper's Section 6 scale point: a ~10MB XMark document, generated
/// once and shared by every test in this file.
fn big_session() -> &'static FleXPath {
    static SESSION: OnceLock<FleXPath> = OnceLock::new();
    SESSION.get_or_init(|| FleXPath::new(generate(&XmarkConfig::sized(10 * 1024 * 1024, 42))))
}

const XQ3: &str = "//item[./description/parlist/listitem and ./mailbox/mail/text[./bold and ./keyword and ./emph] and ./name and ./incategory]";

#[test]
fn one_ms_deadline_returns_exhausted_prefix_of_unbounded_dpo_run() {
    let flex = big_session();
    let unbounded = flex
        .query(XQ3)
        .unwrap()
        .top(100)
        .algorithm(Algorithm::Dpo)
        .execute();
    assert!(unbounded.is_complete());
    assert!(!unbounded.hits.is_empty());

    let bounded = flex
        .query(XQ3)
        .unwrap()
        .top(100)
        .algorithm(Algorithm::Dpo)
        .deadline(Duration::from_millis(1))
        .execute();
    // 1ms is not enough to finish a 100-answer search over 10MB: the run
    // must report exhaustion, not hang or panic.
    match bounded.completeness {
        Completeness::Exhausted { reason, .. } => {
            assert_eq!(reason, ExhaustReason::Deadline)
        }
        Completeness::Complete => panic!("1ms deadline cannot complete XQ3 at k=100"),
    }
    // Prefix property: whatever the bounded run returned is exactly the
    // leading slice of the unbounded ranking (completed DPO rounds only).
    assert!(bounded.hits.len() < unbounded.hits.len());
    assert_eq!(
        bounded.nodes(),
        unbounded.nodes()[..bounded.hits.len()].to_vec(),
        "deadline-bounded DPO answers must be a rank prefix of the unbounded run"
    );
}

#[test]
fn deadline_partial_results_are_prefixes_at_every_cutoff() {
    let flex = big_session();
    let unbounded = flex
        .query(XQ3)
        .unwrap()
        .top(60)
        .algorithm(Algorithm::Dpo)
        .execute();
    // Sample several deadlines: every partial result, wherever the clock
    // happened to cut the round loop, must be a prefix.
    for us in [200, 1_000, 5_000, 20_000] {
        let bounded = flex
            .query(XQ3)
            .unwrap()
            .top(60)
            .algorithm(Algorithm::Dpo)
            .deadline(Duration::from_micros(us))
            .execute();
        assert!(
            bounded.hits.len() <= unbounded.hits.len(),
            "deadline={us}µs produced more answers than the unbounded run"
        );
        assert_eq!(
            bounded.nodes(),
            unbounded.nodes()[..bounded.hits.len()].to_vec(),
            "deadline={us}µs result is not a prefix"
        );
    }
}

#[test]
fn cross_thread_cancellation_stops_within_50ms() {
    let flex = big_session();
    let cancel = CancelToken::new();
    let token = cancel.clone();
    let worker = std::thread::spawn(move || {
        big_session()
            .query(XQ3)
            .unwrap()
            .top(500)
            .algorithm(Algorithm::Dpo)
            .cancel(token)
            .execute()
    });
    // Let the query get properly underway before pulling the plug.
    std::thread::sleep(Duration::from_millis(20));
    let cancelled_at = Instant::now();
    cancel.cancel();
    let result = worker.join().expect("worker must not panic");
    let latency = cancelled_at.elapsed();
    assert!(
        latency < Duration::from_millis(50),
        "cancellation took {latency:?} (limit 50ms)"
    );
    // Either the query finished before the cancel landed, or it reports it.
    if let Completeness::Exhausted { reason, .. } = result.completeness {
        assert_eq!(reason, ExhaustReason::Cancelled);
    }
    let _ = flex;
}

#[test]
fn zero_budgets_return_exhausted_without_panicking() {
    let flex = big_session();
    for alg in [Algorithm::Dpo, Algorithm::Sso, Algorithm::Hybrid] {
        let r = flex
            .query(XQ3)
            .unwrap()
            .top(10)
            .algorithm(alg)
            .limits(QueryLimits::default().with_max_candidate_answers(0))
            .execute();
        assert!(
            r.hits.is_empty(),
            "{alg}: zero answer budget admits nothing"
        );
        assert!(
            matches!(
                r.completeness,
                Completeness::Exhausted {
                    reason: ExhaustReason::AnswerBudget,
                    ..
                }
            ),
            "{alg}: got {:?}",
            r.completeness
        );
    }
}

#[test]
fn postings_budget_trips_with_the_right_reason() {
    let flex = big_session();
    let r = flex
        .query("//item[./description[.contains(\"gold\")]]")
        .unwrap()
        .top(10)
        .algorithm(Algorithm::Dpo)
        .limits(QueryLimits::default().with_max_ft_postings_scanned(1))
        .execute();
    match r.completeness {
        Completeness::Exhausted { reason, .. } => {
            assert_eq!(reason, ExhaustReason::PostingsBudget)
        }
        Completeness::Complete => {
            panic!("a 1-posting budget cannot cover a 10MB index scan")
        }
    }
}

#[test]
fn relaxation_enumeration_cap_reports_remaining_work() {
    let flex = big_session();
    // Force relaxation (k far beyond the exact answer universe — there are
    // fewer items than this in the whole document) but forbid any
    // relaxation from being enumerated.
    let r = flex
        .query(XQ3)
        .unwrap()
        .top(1_000_000)
        .algorithm(Algorithm::Dpo)
        .limits(QueryLimits::default().with_max_relaxations_enumerated(0))
        .execute();
    match r.completeness {
        Completeness::Exhausted {
            reason,
            relaxations_explored,
            relaxations_remaining_estimate,
        } => {
            assert_eq!(reason, ExhaustReason::RelaxationBudget);
            assert_eq!(relaxations_explored, 0);
            assert!(relaxations_remaining_estimate > 0);
        }
        Completeness::Complete => panic!("k=1M over XQ3 requires relaxations"),
    }
    // The exact round still ran: any answers returned are exact matches.
    for h in &r.hits {
        assert_eq!(h.relaxation_level, 0);
    }
}

#[test]
fn unlimited_limits_report_complete_across_algorithms() {
    let flex = big_session();
    for alg in [Algorithm::Dpo, Algorithm::Sso, Algorithm::Hybrid] {
        let r = flex
            .query("//item[./description/parlist]")
            .unwrap()
            .top(5)
            .algorithm(alg)
            .execute();
        assert!(r.is_complete(), "{alg}");
        assert_eq!(r.hits.len(), 5, "{alg}");
    }
}

#[test]
fn tripped_traces_cover_every_checkpoint_site_and_match_completeness() {
    use flexpath_engine::{reason_key, CheckpointSite};
    let flex = big_session();

    // One budget-tripped run per checkpoint site: budget-typed limits are
    // attributed to the site whose charge trips them, deadlines to the
    // driving loop of the chosen algorithm.
    let runs: Vec<(&str, flexpath::QueryResults)> = vec![
        (
            "schedule",
            flex.query(XQ3)
                .unwrap()
                .top(1_000_000)
                .algorithm(Algorithm::Dpo)
                .limits(QueryLimits::default().with_max_relaxations_enumerated(0))
                .trace()
                .execute(),
        ),
        (
            "ft_eval",
            flex.query("//item[./description[.contains(\"gold\")]]")
                .unwrap()
                .top(10)
                .algorithm(Algorithm::Dpo)
                .limits(QueryLimits::default().with_max_ft_postings_scanned(1))
                .trace()
                .execute(),
        ),
        (
            "candidate_loop",
            flex.query(XQ3)
                .unwrap()
                .top(10)
                .algorithm(Algorithm::Dpo)
                .limits(QueryLimits::default().with_max_candidate_answers(0))
                .trace()
                .execute(),
        ),
        (
            "dpo_round",
            flex.query(XQ3)
                .unwrap()
                .top(100)
                .algorithm(Algorithm::Dpo)
                .deadline(Duration::from_micros(1))
                .trace()
                .execute(),
        ),
        (
            "sso_pass",
            flex.query(XQ3)
                .unwrap()
                .top(100)
                .algorithm(Algorithm::Sso)
                .deadline(Duration::from_micros(1))
                .trace()
                .execute(),
        ),
        (
            "hybrid_pass",
            flex.query(XQ3)
                .unwrap()
                .top(100)
                .algorithm(Algorithm::Hybrid)
                .deadline(Duration::from_micros(1))
                .trace()
                .execute(),
        ),
    ];

    let mut seen = std::collections::BTreeSet::new();
    for (expected_site, r) in &runs {
        let reason = r
            .completeness
            .exhaust_reason()
            .unwrap_or_else(|| panic!("{expected_site}: run must trip its budget"));
        let trace = r.trace.as_ref().expect("trace requested");
        // The trip site in the trace matches what Completeness reports …
        assert_eq!(
            trace
                .root
                .counters
                .get(&format!("governor.trip.site.{expected_site}")),
            Some(&1),
            "{expected_site}: trip site missing or wrong; root counters: {:?}",
            trace.root.counters
        );
        // … and so does the trip reason.
        assert_eq!(
            trace
                .root
                .counters
                .get(&format!("governor.trip.reason.{}", reason_key(reason))),
            Some(&1),
            "{expected_site}: trip reason mismatch"
        );
        seen.insert(*expected_site);
    }
    // Together the six runs exercise every named checkpoint site.
    for site in CheckpointSite::ALL {
        assert!(
            seen.contains(site.name()),
            "checkpoint site {site} has no covering tripped run"
        );
    }
}

#[test]
fn checkpoint_counters_appear_in_traced_spans() {
    // Even an untripped run records how often each cooperative checkpoint
    // was consulted — the EXPLAIN ANALYZE signal for where a budget *would*
    // bite.
    let flex = big_session();
    let r = flex
        .query(XQ3)
        .unwrap()
        .top(20)
        .algorithm(Algorithm::Dpo)
        .trace()
        .execute();
    let trace = r.trace.expect("trace requested");
    assert!(trace.total("governor.checkpoint.schedule") > 0);
    assert!(trace.total("governor.checkpoint.dpo_round") > 0);
    assert!(trace.total("governor.checkpoint.candidate_loop") > 0);
}

#[test]
fn generous_deadline_matches_the_unbounded_run_exactly() {
    let flex = big_session();
    let unbounded = flex.query(XQ3).unwrap().top(20).execute();
    let bounded = flex
        .query(XQ3)
        .unwrap()
        .top(20)
        .deadline(Duration::from_secs(600))
        .execute();
    assert!(bounded.is_complete());
    assert_eq!(bounded.nodes(), unbounded.nodes());
}
