//! End-to-end tests on the XMark workload (the paper's Section 6 setup):
//! the three benchmark queries, growing K forcing relaxation, scheme
//! coverage, and cross-algorithm consistency at scale.

use flexpath::{Algorithm, FleXPath, RankingScheme};
use flexpath_xmark::{generate, XmarkConfig};

const XQ1: &str = "//item[./description/parlist]";
const XQ2: &str = "//item[./description/parlist and ./mailbox/mail/text]";
const XQ3: &str = "//item[./description/parlist/listitem and ./mailbox/mail/text[./bold and ./keyword and ./emph] and ./name and ./incategory]";

fn session(kb: usize, seed: u64) -> FleXPath {
    FleXPath::new(generate(&XmarkConfig::sized(kb * 1024, seed)))
}

#[test]
fn benchmark_queries_produce_answers_at_every_k() {
    let flex = session(256, 1);
    for q in [XQ1, XQ2, XQ3] {
        for k in [1, 10, 50] {
            let r = flex.query(q).unwrap().top(k).execute();
            assert!(!r.hits.is_empty(), "{q} at k={k}");
            assert!(r.hits.len() <= k);
            for w in r.hits.windows(2) {
                assert!(w[0].score.ss >= w[1].score.ss - 1e-12);
            }
        }
    }
}

#[test]
fn growing_k_forces_relaxation_and_preserves_prefix() {
    let flex = session(256, 2);
    let small = flex.query(XQ3).unwrap().top(5).execute();
    let big = flex.query(XQ3).unwrap().top(100).execute();
    assert!(big.hits.len() >= small.hits.len());
    // Structure-first: the top-5 of the big run equals the small run.
    assert_eq!(
        small.nodes(),
        big.nodes()[..small.hits.len()].to_vec(),
        "top-K prefix stability"
    );
    // The big run needed relaxation or already had enough exact matches; in
    // either case levels are consistent with scores.
    for w in big.hits.windows(2) {
        assert!(w[0].score.ss >= w[1].score.ss - 1e-12);
    }
}

#[test]
fn exact_answers_rank_before_relaxed_ones() {
    let flex = session(256, 3);
    let r = flex.query(XQ3).unwrap().top(200).execute();
    let first_relaxed = r
        .hits
        .iter()
        .position(|h| h.relaxation_level > 0)
        .unwrap_or(r.hits.len());
    for h in &r.hits[..first_relaxed] {
        assert_eq!(h.relaxation_level, 0);
        assert!((h.score.ss - r.hits[0].score.ss).abs() < 1e-9);
    }
}

#[test]
fn algorithms_agree_on_xmark_across_sizes_and_k() {
    for (kb, seed) in [(64, 10), (256, 11)] {
        let flex = session(kb, seed);
        for q in [XQ1, XQ2] {
            for k in [5, 40] {
                let sso = flex
                    .query(q)
                    .unwrap()
                    .top(k)
                    .algorithm(Algorithm::Sso)
                    .execute();
                let hyb = flex
                    .query(q)
                    .unwrap()
                    .top(k)
                    .algorithm(Algorithm::Hybrid)
                    .execute();
                assert_eq!(sso.nodes(), hyb.nodes(), "{q} k={k} kb={kb}");
                let dpo = flex
                    .query(q)
                    .unwrap()
                    .top(k)
                    .algorithm(Algorithm::Dpo)
                    .execute();
                // DPO scores whole relaxation rounds (compile-time), SSO
                // scores each answer (Section 5.2.1) — so when relaxation
                // kicks in, their rankings may resolve boundary cases
                // differently. What is guaranteed: same answer count, and
                // agreement on the exact (level-0) matches.
                assert_eq!(dpo.hits.len(), sso.hits.len(), "{q} k={k} kb={kb}");
                let exact = |r: &flexpath::QueryResults| {
                    let mut v: Vec<_> = r
                        .hits
                        .iter()
                        .filter(|h| h.relaxation_level == 0)
                        .map(|h| h.node)
                        .collect();
                    v.sort();
                    v
                };
                if sso.hits.iter().all(|h| h.relaxation_level == 0) {
                    assert_eq!(exact(&dpo), exact(&sso), "{q} k={k} kb={kb}");
                }
            }
        }
    }
}

#[test]
fn full_text_queries_combine_with_structure() {
    let flex = session(256, 4);
    let q = "//item[./description/parlist and .contains(\"gold\")]";
    let r = flex.query(q).unwrap().top(25).execute();
    assert!(!r.hits.is_empty());
    // Every answer's subtree mentions (a stem of) gold.
    for h in &r.hits {
        let text = flex.document().subtree_text(h.node).to_lowercase();
        assert!(text.contains("gold"), "answer without keyword");
        assert!(h.score.ks > 0.0);
    }
}

#[test]
fn ranking_schemes_reorder_but_do_not_invent_answers() {
    let flex = session(128, 5);
    let q = "//item[./description/parlist and .contains(\"vintage\")]";
    let k = 15;
    let sf = flex
        .query(q)
        .unwrap()
        .top(k)
        .scheme(RankingScheme::StructureFirst)
        .execute();
    let kf = flex
        .query(q)
        .unwrap()
        .top(k)
        .scheme(RankingScheme::KeywordFirst)
        .execute();
    let cb = flex
        .query(q)
        .unwrap()
        .top(k)
        .scheme(RankingScheme::Combined)
        .execute();
    // Keyword-first is sorted on ks; combined on ss+ks.
    for w in kf.hits.windows(2) {
        assert!(w[0].score.ks >= w[1].score.ks - 1e-12);
    }
    for w in cb.hits.windows(2) {
        assert!(w[0].score.ss + w[0].score.ks >= w[1].score.ss + w[1].score.ks - 1e-12);
    }
    // All schemes draw from the same answer universe.
    for h in kf.hits.iter().chain(cb.hits.iter()) {
        let text = flex.document().subtree_text(h.node).to_lowercase();
        assert!(text.contains("vintag"), "stemmed keyword must occur");
    }
    let _ = sf;
}

#[test]
fn deterministic_across_runs() {
    let flex = session(128, 6);
    let a = flex.query(XQ2).unwrap().top(30).execute();
    let b = flex.query(XQ2).unwrap().top(30).execute();
    assert_eq!(a.nodes(), b.nodes());
    assert_eq!(a.scores_vec(), b.scores_vec());
}

trait ScoresVec {
    fn scores_vec(&self) -> Vec<(f64, f64)>;
}

impl ScoresVec for flexpath::QueryResults {
    fn scores_vec(&self) -> Vec<(f64, f64)> {
        self.hits.iter().map(|h| (h.score.ss, h.score.ks)).collect()
    }
}
