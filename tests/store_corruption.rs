//! Corruption suite for the persistent store: every damaged input —
//! truncation at any byte, a flipped byte anywhere, wrong magic, a future
//! format version — must surface as a *typed* [`StoreError`], never a
//! panic, never an out-of-bounds slice, never a giant bogus allocation.
//!
//! Two decode disciplines are exercised. The eager path
//! ([`CorpusStore`]) verifies everything at open. The lazy path
//! ([`FleXPath::open`]) verifies the header + meta at open and each
//! section on first touch: damage in an untouched section must NOT fail
//! the open, and the first touch must surface a typed checksum error
//! through `try_execute` — never a panic.

use flexpath::{Budget, Catalog, CorpusStore, EngineError, FleXPath, SourceErrorKind, StoreError};
use flexpath_store::{FORMAT_VERSION, MAGIC};
use std::ops::Range;
use std::path::PathBuf;

const XML: &str = r#"<site>
  <item><name>gold watch</name><description><parlist><listitem>rare
    collectible watch</listitem></parlist></description>
    <mailbox><mail><text>asking about the <bold>gold</bold> watch</text></mail></mailbox>
    <incategory category="c1"/></item>
  <item><name>silver ring</name><description>plain silver ring, no list
    </description></item>
</site>"#;

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("flexpath-corruption-{tag}-{}", std::process::id()))
}

/// A healthy store file for the tests to damage.
fn store_bytes() -> Vec<u8> {
    let dir = temp_dir("seed");
    let path = dir.join("doc.fxs");
    FleXPath::from_xml(XML)
        .expect("corpus parses")
        .save(&path, "doc")
        .expect("store saves");
    let bytes = std::fs::read(&path).expect("store file readable");
    let _ = std::fs::remove_dir_all(&dir);
    bytes
}

fn decode(bytes: &[u8]) -> Result<CorpusStore, StoreError> {
    CorpusStore::from_bytes(bytes, &Budget::unlimited())
}

/// The byte ranges of a store image that are semantically live: the
/// header (fixed fields + section table + header CRC) and every section
/// payload. v2 images additionally contain zero padding between payloads
/// (for 8-byte alignment) that no CRC covers — flipping those bytes must
/// NOT break decoding, which is exactly what the sweep below asserts.
fn covered_ranges(bytes: &[u8]) -> Vec<Range<usize>> {
    assert_eq!(&bytes[..8], &MAGIC);
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    // Fixed header + table + the trailing header CRC-32.
    let mut ranges = Vec::with_capacity(count + 1);
    ranges.push(0..16 + count * 24 + 4);
    for i in 0..count {
        let e = 16 + i * 24;
        let offset = u64::from_le_bytes(bytes[e + 4..e + 12].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(bytes[e + 12..e + 20].try_into().unwrap()) as usize;
        ranges.push(offset..offset + len);
    }
    ranges
}

/// Offset and length of the section with raw id `id`.
fn section_range(bytes: &[u8], id: u32) -> Range<usize> {
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    for i in 0..count {
        let e = 16 + i * 24;
        if u32::from_le_bytes(bytes[e..e + 4].try_into().unwrap()) == id {
            let offset = u64::from_le_bytes(bytes[e + 4..e + 12].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(bytes[e + 12..e + 20].try_into().unwrap()) as usize;
            return offset..offset + len;
        }
    }
    panic!("section id {id} not found in table");
}

#[test]
fn healthy_file_decodes() {
    let store = decode(&store_bytes()).expect("undamaged file loads");
    assert_eq!(store.name(), "doc");
}

#[test]
fn every_truncation_point_is_a_typed_error() {
    let bytes = store_bytes();
    for cut in 0..bytes.len() {
        let err = decode(&bytes[..cut]).expect_err("truncated file must not decode");
        // The Display impl must also hold up on every variant.
        let _ = format!("{err}");
    }
}

#[test]
fn every_single_byte_flip_is_detected() {
    // The header is covered by the header CRC (and the magic/version
    // checks before it); every payload byte is covered by its section
    // CRC — so no flip in a *live* byte may decode successfully. The only
    // bytes outside those ranges are the v2 alignment padding: zeroes
    // that no reader ever interprets, whose flips must decode to the same
    // store (robustness against e.g. a tool that rewrites dead bytes).
    let bytes = store_bytes();
    let covered = covered_ranges(&bytes);
    for i in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0x40;
        if covered.iter().any(|r| r.contains(&i)) {
            let err = decode(&bad)
                .err()
                .unwrap_or_else(|| panic!("flip at live byte {i} went undetected"));
            let _ = format!("{err}");
        } else {
            assert_eq!(bytes[i], 0, "padding byte {i} must be zero as written");
            let store = decode(&bad)
                .unwrap_or_else(|e| panic!("flip at padding byte {i} broke decode: {e}"));
            assert_eq!(store.name(), "doc");
        }
    }
}

#[test]
fn wrong_magic_is_typed() {
    let mut bytes = store_bytes();
    bytes[..8].copy_from_slice(b"NOTAFXPS");
    assert!(matches!(decode(&bytes), Err(StoreError::BadMagic)));
}

#[test]
fn future_version_reports_unsupported_not_checksum() {
    // A future writer may lay the header out differently, so the version
    // check must win over the (now stale) header CRC.
    let mut bytes = store_bytes();
    let future = FORMAT_VERSION + 1;
    bytes[8..12].copy_from_slice(&future.to_le_bytes());
    match decode(&bytes) {
        Err(StoreError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, future);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn flipped_byte_in_each_section_names_that_section() {
    let bytes = store_bytes();
    assert_eq!(&bytes[..8], &MAGIC);
    // Walk the section table (16-byte fixed header, then 24-byte entries:
    // id u32, offset u64, len u64, crc u32 — all little-endian).
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    assert!(count >= 6, "expected all six sections, found {count}");
    for i in 0..count {
        let e = 16 + i * 24;
        let offset = u64::from_le_bytes(bytes[e + 4..e + 12].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(bytes[e + 12..e + 20].try_into().unwrap()) as usize;
        if len == 0 {
            continue;
        }
        let mut bad = bytes.clone();
        bad[offset + len / 2] ^= 0xff;
        match decode(&bad) {
            Err(StoreError::ChecksumMismatch { .. }) => {}
            other => panic!("section {i} flip: expected ChecksumMismatch, got {other:?}"),
        }
    }
}

/// Writes a (possibly damaged) image to a fresh temp file and returns the
/// path; the caller removes the directory.
fn write_store(tag: &str, bytes: &[u8]) -> PathBuf {
    let dir = temp_dir(tag);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("doc.fxs");
    std::fs::write(&path, bytes).expect("write store");
    path
}

#[test]
fn lazy_open_tolerates_corruption_in_untouched_sections() {
    // Flip a byte inside the postings payload. A lazy open validates only
    // the header and meta, so the open must succeed, and a structure-only
    // query (which never touches the index) must answer normally.
    let bytes = store_bytes();
    let postings = section_range(&bytes, 6);
    let mut bad = bytes.clone();
    bad[postings.start + postings.len() / 2] ^= 0xff;
    let path = write_store("lazy-postings", &bad);

    let flex = FleXPath::open(&path).expect("lazy open ignores untouched damage");
    let hits = flex
        .query("//item[./name]")
        .expect("query parses")
        .top(5)
        .try_execute()
        .expect("structure-only query never touches the damaged index")
        .hits;
    assert_eq!(hits.len(), 2);

    // The first full-text touch must surface the damage as a typed
    // checksum error naming the index — never a panic.
    let err = flex
        .query(r#"//item[.contains("gold")]"#)
        .expect("query parses")
        .top(5)
        .try_execute()
        .expect_err("full-text query touches the damaged postings");
    match err {
        EngineError::Store(src) => {
            assert_eq!(src.part, "index");
            assert_eq!(src.kind, SourceErrorKind::Checksum);
        }
        other => panic!("expected EngineError::Store, got {other:?}"),
    }

    // The fault is durable: asking again re-surfaces the same error.
    assert!(flex
        .query(r#"//item[.contains("gold")]"#)
        .expect("query parses")
        .top(5)
        .try_execute()
        .is_err());
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

#[test]
fn lazy_first_structural_touch_surfaces_document_damage() {
    // Damage the elems section (id 3): the open still succeeds (header +
    // meta verify), and the *first structural touch* reports a typed
    // checksum error for the document part.
    let bytes = store_bytes();
    let elems = section_range(&bytes, 3);
    let mut bad = bytes.clone();
    bad[elems.start + elems.len() / 2] ^= 0xff;
    let path = write_store("lazy-elems", &bad);

    let flex = FleXPath::open(&path).expect("open validates only header + meta");
    let err = flex
        .query("//item[./name]")
        .expect("query parses")
        .top(5)
        .try_execute()
        .expect_err("structural query touches the damaged document");
    match err {
        EngineError::Store(src) => {
            assert_eq!(src.part, "document");
            assert_eq!(src.kind, SourceErrorKind::Checksum);
        }
        other => panic!("expected EngineError::Store, got {other:?}"),
    }
    // The fallible document accessor reports the same typed failure.
    assert!(flex.try_document().is_err());
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

#[test]
fn eager_open_still_rejects_any_section_damage_up_front() {
    // `open_eager` keeps the v1 contract on v2 files: everything decodes
    // (and therefore verifies) at open time.
    let bytes = store_bytes();
    let postings = section_range(&bytes, 6);
    let mut bad = bytes.clone();
    bad[postings.start + postings.len() / 2] ^= 0xff;
    let path = write_store("eager-postings", &bad);
    assert!(matches!(
        FleXPath::open_eager(&path),
        Err(StoreError::ChecksumMismatch { .. })
    ));
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

#[test]
fn on_disk_garbage_and_truncation_are_typed_through_open() {
    let dir = temp_dir("disk");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let garbage = dir.join("garbage.fxs");
    std::fs::write(&garbage, b"this is not a store file").expect("write");
    assert!(matches!(
        CorpusStore::open(&garbage),
        Err(StoreError::BadMagic)
    ));
    let bytes = store_bytes();
    let truncated = dir.join("truncated.fxs");
    std::fs::write(&truncated, &bytes[..bytes.len() / 2]).expect("write");
    match CorpusStore::open(&truncated) {
        Ok(_) => panic!("truncated file must not open"),
        Err(e) => {
            let _ = format!("{e}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn catalog_listing_quarantines_damaged_entries() {
    // A catalog directory with one healthy store, one store truncated
    // mid-header, one with a bit flipped in the section table, and one
    // plain-garbage file: `list_report` must serve the healthy entry and
    // quarantine each damaged file with a typed error — never fail the
    // whole listing, never panic. (Listing verifies only the header and
    // meta section — that is what keeps it cheap — so the damage here is
    // aimed at that region; payload damage is caught at load time, see
    // the flip/truncation sweeps above.)
    let dir = temp_dir("quarantine");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let bytes = store_bytes();
    std::fs::write(dir.join("healthy.fxs"), &bytes).expect("write healthy");
    std::fs::write(dir.join("truncated.fxs"), &bytes[..20]).expect("write truncated");
    let mut flipped = bytes.clone();
    flipped[17] ^= 0xff; // inside the section table, covered by the header CRC
    std::fs::write(dir.join("flipped.fxs"), &flipped).expect("write flipped");
    std::fs::write(dir.join("garbage.fxs"), b"junk").expect("write garbage");
    // Non-.fxs files are not the catalog's business at all.
    std::fs::write(dir.join("notes.txt"), b"ignore me").expect("write notes");

    let catalog = Catalog::open(&dir).expect("catalog opens");
    let report = catalog.list_report().expect("listing survives corruption");
    assert_eq!(report.entries.len(), 1, "only the healthy store lists");
    assert_eq!(report.entries[0].meta.name, "doc");
    assert_eq!(
        report.quarantined.len(),
        3,
        "every damaged .fxs file is quarantined: {:?}",
        report.quarantined
    );
    for q in &report.quarantined {
        // Typed error with a working Display, and the path names the file.
        assert!(q.path.extension().is_some_and(|x| x == "fxs"));
        let _ = format!("{}", q.error);
    }

    // The legacy `list()` keeps working and agrees with the report.
    let entries = catalog.list().expect("list() tolerates corruption");
    assert_eq!(entries.len(), 1);

    // Quarantine is observation, not repair: the healthy entry still
    // loads (by file name — the meta name inside is "doc").
    let store = catalog.load("healthy").expect("healthy store loads");
    assert_eq!(store.name(), "doc");
    let _ = std::fs::remove_dir_all(&dir);
}
