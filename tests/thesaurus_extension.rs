//! Integration tests for thesaurus-based keyword relaxation (the paper's
//! Section 3.4: "replacing keywords with more general ones"), wired through
//! the facade's query builder.

use flexpath::{FleXPath, Thesaurus};

const SHOP: &str = r#"<shop>
  <item id="i1"><name>ring</name><desc>solid gold ring</desc></item>
  <item id="i2"><name>ring</name><desc>golden band</desc></item>
  <item id="i3"><name>ring</name><desc>gilded hoop</desc></item>
  <item id="i4"><name>ring</name><desc>silver band</desc></item>
</shop>"#;

fn gems() -> Thesaurus {
    let mut t = Thesaurus::new();
    t.add_ring(&["gold", "golden", "gilded"]);
    t
}

fn label(flex: &FleXPath, node: flexpath::NodeId) -> String {
    let id = flex.document().symbols().lookup("id").unwrap();
    flex.document()
        .attribute(node, id)
        .unwrap_or("?")
        .to_string()
}

#[test]
fn without_thesaurus_only_literal_matches() {
    let flex = FleXPath::from_xml(SHOP).unwrap();
    let r = flex
        .query("//item[.contains(\"gold\")]")
        .unwrap()
        .top(10)
        .execute();
    let labels: Vec<String> = r.hits.iter().map(|h| label(&flex, h.node)).collect();
    assert_eq!(labels, ["i1"]);
}

#[test]
fn thesaurus_expands_to_the_synonym_ring() {
    let flex = FleXPath::from_xml(SHOP).unwrap();
    let r = flex
        .query("//item[.contains(\"gold\")]")
        .unwrap()
        .top(10)
        .thesaurus(gems())
        .execute();
    let mut labels: Vec<String> = r.hits.iter().map(|h| label(&flex, h.node)).collect();
    labels.sort();
    assert_eq!(labels, ["i1", "i2", "i3"]);
    // Silver never sneaks in.
    assert!(!labels.contains(&"i4".to_string()));
}

#[test]
fn expansion_composes_with_structural_relaxation() {
    // contains on desc + thesaurus: the structure relaxes AND the keyword
    // relaxes, independently.
    let xml = r#"<shop>
      <item id="exact"><desc>gold coin</desc></item>
      <item id="syn"><desc>golden coin</desc></item>
      <item id="deep"><wrap><desc>gilded coin</desc></wrap></item>
    </shop>"#;
    let flex = FleXPath::from_xml(xml).unwrap();
    let r = flex
        .query("//item[./desc[.contains(\"gold\" and \"coin\")]]")
        .unwrap()
        .top(10)
        .thesaurus(gems())
        .execute();
    let labels: Vec<String> = r.hits.iter().map(|h| label(&flex, h.node)).collect();
    assert_eq!(labels.len(), 3, "{labels:?}");
    assert_eq!(labels[0], "exact");
    // The synonym-only match keeps full structure → outranks the one that
    // also needed a structural relaxation.
    assert_eq!(labels[1], "syn");
    assert_eq!(labels[2], "deep");
}

#[test]
fn thesaurus_is_monotone_under_evaluation() {
    let flex = FleXPath::from_xml(SHOP).unwrap();
    let strict = flex
        .query("//item[.contains(\"gold\")]")
        .unwrap()
        .top(10)
        .execute();
    let expanded = flex
        .query("//item[.contains(\"gold\")]")
        .unwrap()
        .top(10)
        .thesaurus(gems())
        .execute();
    for n in strict.nodes() {
        assert!(expanded.nodes().contains(&n), "expansion lost an answer");
    }
    assert!(expanded.hits.len() >= strict.hits.len());
}
