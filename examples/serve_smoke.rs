//! End-to-end smoke test for `flexpath-serve`, runnable from CI: boot the
//! server over a small XMark store, drive every endpoint through the real
//! HTTP client, prove the robustness headlines (server-clamped limits,
//! budget trips degrading into partials with `Retry-After`, drain
//! shedding with typed 503s), and exit non-zero (panic) on any
//! divergence.

use flexpath::FleXPath;
use flexpath_serve::{http_call, ServePolicy, Server, ServerState};
use flexpath_xmark::{generate, XmarkConfig};
use std::sync::Arc;
use std::time::Duration;

const QUERY: &str = "//item[./description/parlist and ./mailbox/mail/text]";
const TIMEOUT: Duration = Duration::from_secs(5);

fn main() {
    let dir = std::path::Path::new("target/smoke/serve");
    let _ = std::fs::remove_dir_all(dir);

    // A catalog with one stored document, loaded through the real
    // FXPSTORE path (not injected) so the smoke covers store -> session.
    let state = ServerState::open(dir).expect("catalog opens");
    let flex = FleXPath::new(generate(&XmarkConfig::sized(128 * 1024, 1)));
    let ctx = flex.context();
    state
        .catalog()
        .save(&flexpath::StoreBuilder::from_parts(
            "doc",
            ctx.doc(),
            ctx.stats(),
            ctx.index(),
        ))
        .expect("store saves");
    drop(flex);

    let server = Server::bind("127.0.0.1:0", Arc::new(state), ServePolicy::for_tests())
        .expect("binds port 0");
    let addr = server.local_addr().expect("bound addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server runs"));

    // A complete query answers 200 with hits.
    let body = format!(r#"{{"catalog":"doc","query":"{QUERY}","k":5}}"#);
    let resp = http_call(addr, "POST", "/query", body.as_bytes(), TIMEOUT).expect("query");
    assert_eq!(resp.status, 200, "query: {}", resp.body_text());
    assert!(resp.body_text().contains(r#""complete":true"#));
    println!("query OK: {} bytes", resp.body.len());

    // A budget trip degrades into a 200 partial with Retry-After.
    let body = format!(r#"{{"catalog":"doc","query":"{QUERY}","k":5,"max_candidates":0}}"#);
    let resp = http_call(addr, "POST", "/query", body.as_bytes(), TIMEOUT).expect("partial");
    assert_eq!(resp.status, 200, "partial: {}", resp.body_text());
    assert!(resp.body_text().contains(r#""reason":"answer_budget""#));
    assert!(resp.header("retry-after").is_some());
    println!("degradation OK: partial + Retry-After");

    // Explain, catalogs, metrics, health all answer.
    let body = format!(r#"{{"catalog":"doc","query":"{QUERY}","k":5}}"#);
    let resp = http_call(addr, "POST", "/explain", body.as_bytes(), TIMEOUT).expect("explain");
    assert_eq!(resp.status, 200);
    let resp = http_call(addr, "GET", "/catalogs", b"", TIMEOUT).expect("catalogs");
    assert!(resp.body_text().contains(r#""doc""#));
    let resp = http_call(addr, "GET", "/metrics", b"", TIMEOUT).expect("metrics");
    assert!(resp.body_text().contains("serve_requests"));
    let resp = http_call(addr, "GET", "/healthz", b"", TIMEOUT).expect("healthz");
    assert_eq!(resp.status, 200);
    println!("endpoints OK: explain, catalogs, metrics, healthz");

    // Malformed bytes get a typed status, not a hang or a panic.
    let resp = http_call(addr, "POST", "/query", b"{broken", TIMEOUT).expect("bad json");
    assert_eq!(resp.status, 400);

    // Drain: shutdown answers new work with 503 and run() returns.
    handle.shutdown();
    if let Ok(resp) = http_call(addr, "GET", "/healthz", b"", TIMEOUT) {
        assert_eq!(resp.status, 503, "draining healthz: {}", resp.body_text());
    }
    join.join().expect("server thread");
    println!("drain OK: serve smoke passed");
}
