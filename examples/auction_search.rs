//! Flexible search over an XMark-style auction site — the paper's
//! evaluation workload (Section 6) — comparing DPO, SSO, and Hybrid.
//!
//! Run with: `cargo run --release --example auction_search [-- <size-kb> <k>]`

use flexpath::{Algorithm, FleXPath, RankingScheme};
use flexpath_xmark::{generate, XmarkConfig};
use std::time::Instant;

/// The paper's benchmark queries (Section 6), named XQ1–XQ3 here to avoid
/// clashing with Figure 1's Q1–Q6.
const QUERIES: [(&str, &str); 3] = [
    ("XQ1", "//item[./description/parlist]"),
    ("XQ2", "//item[./description/parlist and ./mailbox/mail/text]"),
    (
        "XQ3",
        "//item[./description/parlist/listitem and ./mailbox/mail/text[./bold and ./keyword and ./emph] and ./name and ./incategory]",
    ),
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let size_kb: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(512);
    let k: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(50);

    println!("generating ~{size_kb} KB XMark document (seed 42)…");
    let doc = generate(&XmarkConfig::sized(size_kb * 1024, 42));
    let items = doc.nodes_with_tag_name("item").len();
    println!(
        "{} nodes, {} items; building index and statistics…\n",
        doc.node_count(),
        items
    );
    let flex = FleXPath::new(doc);

    // Add a full-text twist on top of XQ2: items whose mail text mentions
    // vintage gold.
    let ft_query = "//item[./description/parlist and ./mailbox/mail/text[.contains(\"vintage\" and \"gold\")]]";

    for (name, q) in QUERIES.iter().copied().chain([("XQ2+ft", ft_query)]) {
        println!("── {name}: {q}");
        for alg in [Algorithm::Dpo, Algorithm::Sso, Algorithm::Hybrid] {
            let t = Instant::now();
            let r = flex
                .query(q)
                .expect("benchmark query parses")
                .top(k)
                .algorithm(alg)
                .scheme(RankingScheme::StructureFirst)
                .execute();
            let dt = t.elapsed();
            println!(
                "   {alg:<6} {:>6.2?}  answers={:<4} relaxations={:<2} evals={:<2} \
                 intermediates={:<6} shifts={:<7} buckets={}",
                dt,
                r.hits.len(),
                r.stats.relaxations_used,
                r.stats.evaluations,
                r.stats.intermediate_answers,
                r.stats.sorted_insert_shifts,
                r.stats.buckets,
            );
        }
        println!();
    }

    // Show what relaxation actually surfaced for XQ3.
    let r = flex.query(QUERIES[2].1).unwrap().top(k).execute();
    if let (Some(best), Some(worst)) = (r.hits.first(), r.hits.last()) {
        println!(
            "XQ3 score range: best ss={:.3} … worst ss={:.3}",
            best.score.ss, worst.score.ss
        );
        println!(
            "levels used: {:?}",
            r.hits
                .iter()
                .map(|h| h.relaxation_level)
                .collect::<std::collections::BTreeSet<_>>()
        );
    }
}
