//! Digital-library search with a **type hierarchy** (the paper's
//! Section 3.4 extension): a query for `article`s about a topic also
//! surfaces `book`s, `thesis`es and `techreport`s — at a penalty derived
//! from how much of the `publication` type each subtype covers.
//!
//! Run with: `cargo run --example digital_library`

use flexpath::{FleXPath, TagHierarchy};

const CATALOG: &str = r#"<catalog>
  <article id="a1"><title>Streaming XML engines</title>
    <section><paragraph>We survey XML streaming evaluation.</paragraph></section></article>
  <article id="a2"><title>Relational optimizers</title>
    <section><paragraph>Cost models for joins.</paragraph></section></article>
  <book id="b1"><title>XML in depth</title>
    <chapter><section><paragraph>A chapter on XML streaming and twigs.</paragraph></section></chapter></book>
  <thesis id="t1"><title>Flexible querying</title>
    <section><paragraph>Relaxation for XML streaming search.</paragraph></section></thesis>
  <techreport id="r1"><abstract>Notes on XML streaming deployments.</abstract></techreport>
  <newsletter id="n1"><section><paragraph>XML streaming gossip.</paragraph></section></newsletter>
</catalog>"#;

const QUERY: &str = "//article[./section[./paragraph[.contains(\"XML\" and \"streaming\")]]]";

fn main() {
    let flex = FleXPath::from_xml(CATALOG).expect("catalog parses");

    println!("== digital library: searching articles about XML streaming ==\n");
    println!("query: {QUERY}\n");

    // 1. Plain FleXPath: structural relaxation only — other element types
    //    can never match a tag predicate.
    let plain = flex.query(QUERY).unwrap().top(10).execute();
    println!("without a type hierarchy ({} answers):", plain.hits.len());
    print_hits(&flex, &plain);

    // 2. With the publication hierarchy, sibling subtypes become
    //    penalized matches; the newsletter stays out (not a publication).
    let mut hierarchy = TagHierarchy::new();
    hierarchy.add_type("publication", &["article", "book", "thesis", "techreport"]);
    let with = flex
        .query(QUERY)
        .unwrap()
        .top(10)
        .hierarchy(hierarchy)
        .execute();
    println!(
        "\nwith article ⊑ publication ⊒ {{book, thesis, techreport}} ({} answers):",
        with.hits.len()
    );
    print_hits(&flex, &with);

    println!(
        "\nnote: the newsletter also mentions the keywords but is not a\n\
         publication subtype, so no relaxation ever admits it."
    );
}

fn print_hits(flex: &FleXPath, results: &flexpath::QueryResults) {
    let id = flex.document().symbols().lookup("id").unwrap();
    for hit in &results.hits {
        println!(
            "  [{}] <{}> ss={:.3} ks={:.3} level={}",
            flex.document().attribute(hit.node, id).unwrap_or("?"),
            flex.document().tag_name(hit.node).unwrap_or("?"),
            hit.score.ss,
            hit.score.ks,
            hit.relaxation_level
        );
    }
}
