//! Interactive-ish tour of the relaxation theory: logical form, closure,
//! core, the operator-generated relaxation space, and the penalty-ordered
//! schedule for a query of your choice.
//!
//! Run with:
//! `cargo run --example relaxation_explorer -- '<xpath>' [corpus.xml]`
//! (defaults to the paper's Q1 over a built-in collection).

use flexpath::FleXPath;
use flexpath_engine::{build_schedule, PenaltyModel, WeightAssignment};
use flexpath_tpq::{core_of, enumerate_space, parse_query, tpq_from_predicates};

const DEFAULT_QUERY: &str =
    "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" and \"streaming\")]]]";

const DEFAULT_CORPUS: &str = r#"<collection>
  <article><section><algorithm>a</algorithm>
    <paragraph>XML streaming methods</paragraph></section></article>
  <article><section><part><paragraph>XML streaming in parts</paragraph></part>
    </section><algorithm>b</algorithm></article>
  <article><summary>XML streaming summary</summary></article>
</collection>"#;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let query_str = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| DEFAULT_QUERY.to_string());
    let corpus = match args.get(2) {
        Some(path) => std::fs::read_to_string(path).expect("corpus file readable"),
        None => DEFAULT_CORPUS.to_string(),
    };

    let q = parse_query(&query_str).expect("query parses");
    println!("query        : {}", q.to_xpath());
    println!("distinguished: {}", q.distinguished_var());

    println!("\n— logical expression (Figure 2 style) —");
    for p in q.logical().iter() {
        println!("  {p}");
    }

    println!("\n— closure under the inference rules (Figure 4 style) —");
    let closure = q.closure();
    for p in closure.iter() {
        let derived = !q.logical().contains(p);
        println!("  {p}{}", if derived { "   [derived]" } else { "" });
    }

    println!("\n— core (unique minimal equivalent, Theorem 1) —");
    let core = q.core();
    for p in core.iter() {
        println!("  {p}");
    }
    let rebuilt = tpq_from_predicates(&core_of(&closure), q.distinguished_var())
        .expect("core reconstructs to a TPQ");
    println!("  reconstructs to: {}", rebuilt.to_xpath());

    println!("\n— relaxation space (operators γ, λ, σ, κ; deduplicated) —");
    let space = enumerate_space(&q, 500);
    println!(
        "  {} distinct relaxations{}",
        space.len(),
        if space.truncated {
            " (truncated at 500)"
        } else {
            ""
        }
    );
    for e in space.entries.iter().take(12) {
        let ops: Vec<String> = e.ops.iter().map(|o| o.to_string()).collect();
        println!(
            "  [{}] {}",
            if ops.is_empty() {
                "original".to_string()
            } else {
                ops.join(" ∘ ")
            },
            e.tpq.to_xpath()
        );
    }
    if space.len() > 12 {
        println!("  … and {} more", space.len() - 12);
    }

    println!("\n— penalty-ordered schedule against the corpus —");
    let flex = FleXPath::from_xml(&corpus).expect("corpus parses");
    let model = PenaltyModel::new(&q, WeightAssignment::uniform());
    let schedule = build_schedule(flex.context(), &model, &q, 32);
    println!(
        "  base structural score: {:.3}",
        model.base_structural_score(&q)
    );
    for (i, s) in schedule.iter().enumerate() {
        println!(
            "  {:>2}. {}  penalty {:.3} → answers score {:.3}",
            i + 1,
            s.op,
            s.step_penalty,
            s.ss_after
        );
    }

    println!("\n— and the ranked answers —");
    let results = flex.query(&query_str).unwrap().top(10).execute();
    for (i, hit) in results.hits.iter().enumerate() {
        println!(
            "  #{:<2} {} ss={:.3} ks={:.3} level={}",
            i + 1,
            flex.snippet(hit.node, 48),
            hit.score.ss,
            hit.score.ks,
            hit.relaxation_level
        );
    }
}
