//! End-to-end smoke test for the persistent store, runnable from CI:
//! generate a ~1 MB XMark-style corpus, index it into a store, reload it,
//! and assert the reloaded session answers a query with byte-identical
//! nodes, scores, and trace counter fingerprints. Exits non-zero (panics)
//! on any divergence.
//!
//! Side effect: leaves `target/smoke/doc.xml` and `target/smoke/store/`
//! behind so a CI job can re-drive the same corpus through the real
//! `flexpath-cli index` / `--store` code path.

use flexpath::{Algorithm, FleXPath};
use flexpath_xmark::{generate, XmarkConfig};
use std::path::Path;

const QUERY: &str = "//item[./description/parlist and ./mailbox/mail/text]";

fn main() {
    let dir = Path::new("target/smoke");
    std::fs::create_dir_all(dir).expect("create target/smoke");

    // 1 MB corpus, fixed seed: deterministic across runs and machines.
    let doc = generate(&XmarkConfig::sized(1 << 20, 1));
    let xml = flexpath_xmldom::to_xml_string(&doc);
    std::fs::write(dir.join("doc.xml"), &xml).expect("write doc.xml");

    // In-memory reference: parse + stats + index.
    let built = FleXPath::from_xml(&xml).expect("corpus parses");

    // Store round trip.
    let store_path = dir.join("store").join("doc.fxs");
    let bytes = built.save(&store_path, "doc").expect("store saves");
    let loaded = FleXPath::open(&store_path).expect("store opens");

    let observe = |flex: &FleXPath, alg: Algorithm| {
        let r = flex
            .query(QUERY)
            .expect("query parses")
            .top(10)
            .algorithm(alg)
            .trace()
            .execute();
        let nodes: Vec<_> = r.hits.iter().map(|h| h.node).collect();
        let scores = format!("{:?}", r.hits.iter().map(|h| h.score).collect::<Vec<_>>());
        let fp = r.trace.expect("trace requested").counter_fingerprint();
        (nodes, scores, fp)
    };

    for alg in [Algorithm::Dpo, Algorithm::Sso, Algorithm::Hybrid] {
        let a = observe(&built, alg);
        let b = observe(&loaded, alg);
        assert!(!a.0.is_empty(), "{alg:?}: smoke query must have answers");
        assert_eq!(a, b, "{alg:?}: store-loaded session diverged from build");
        println!(
            "{alg:?}: {} answers, fingerprints match ({}…)",
            a.0.len(),
            &a.2[..a.2.len().min(16)]
        );
    }
    println!(
        "store smoke OK: {bytes} B store at {}, xml at {}",
        store_path.display(),
        dir.join("doc.xml").display()
    );
}
