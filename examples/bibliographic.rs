//! The paper's running example (Section 1 / Figure 1): querying a
//! bibliographic collection for articles about algorithms on streaming XML
//! data, and watching queries Q1–Q6 emerge as relaxations of Q1.
//!
//! Run with: `cargo run --example bibliographic`

use flexpath::FleXPath;
use flexpath_tpq::{contains_query, enumerate_space, parse_query};

/// Figure 1's six queries, as XPath strings.
const FIGURE_1: [(&str, &str); 6] = [
    (
        "Q1",
        "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" and \"streaming\")]]]",
    ),
    (
        "Q2",
        "//article[./section[./algorithm and ./paragraph and .contains(\"XML\" and \"streaming\")]]",
    ),
    (
        "Q3",
        "//article[.//algorithm and ./section[./paragraph[.contains(\"XML\" and \"streaming\")]]]",
    ),
    (
        "Q4",
        "//article[.//algorithm and ./section[./paragraph and .contains(\"XML\" and \"streaming\")]]",
    ),
    (
        "Q5",
        "//article[./section[./paragraph and .contains(\"XML\" and \"streaming\")]]",
    ),
    ("Q6", "//article[.contains(\"XML\" and \"streaming\")]"),
];

/// A small INEX/SIGMOD-Record-flavoured collection exercising every query.
const COLLECTION: &str = r#"<collection>
  <article id="A"><section>
      <algorithm>one-pass evaluator</algorithm>
      <paragraph>A new algorithm for XML streaming evaluation.</paragraph>
  </section></article>
  <article id="B"><section>
      <title>XML streaming</title>
      <algorithm>filter network</algorithm>
      <paragraph>Details of the automaton construction.</paragraph>
  </section></article>
  <article id="C">
      <section><paragraph>Benchmarks over XML streaming workloads.</paragraph></section>
      <appendix><algorithm>benchmark driver</algorithm></appendix>
  </article>
  <article id="D"><section>
      <paragraph>Processing XML streaming queries without algorithms.</paragraph>
  </section></article>
  <article id="E"><related>A survey of XML streaming research.</related></article>
  <article id="F"><section><paragraph>Nothing relevant here.</paragraph></section></article>
</collection>"#;

fn main() {
    println!("== FleXPath on the paper's Figure 1 ==\n");

    // 1. The containment lattice of Figure 1, verified mechanically.
    let queries: Vec<(&str, flexpath::Tpq)> = FIGURE_1
        .iter()
        .map(|(name, s)| (*name, parse_query(s).expect("figure-1 query parses")))
        .collect();
    println!("containment lattice (Qi ⊆ Qj checked by homomorphism):");
    for (ni, qi) in &queries {
        let supersets: Vec<&str> = queries
            .iter()
            .filter(|(nj, qj)| nj != ni && contains_query(qi, qj))
            .map(|(nj, _)| *nj)
            .collect();
        println!("  {ni} ⊆ {{{}}}", supersets.join(", "));
    }

    // 2. The relaxation space of Q1 contains all of Q2–Q6.
    let q1 = &queries[0].1;
    let space = enumerate_space(q1, 10_000);
    println!(
        "\nrelaxation space of Q1: {} distinct queries (operators γ, λ, σ, κ)",
        space.len()
    );
    for (name, q) in &queries[1..] {
        let found = space
            .entries
            .iter()
            .any(|e| contains_query(&e.tpq, q) && contains_query(q, &e.tpq));
        println!(
            "  {name} reachable from Q1: {}",
            if found { "yes" } else { "no" }
        );
    }

    // 3. Run Q1 flexibly: every on-topic article surfaces, ranked.
    let flex = FleXPath::from_xml(COLLECTION).unwrap();
    let results = flex.query(FIGURE_1[0].1).unwrap().top(6).execute();
    println!("\ntop answers for Q1 as a template:");
    let id = flex.document().symbols().lookup("id").unwrap();
    for hit in &results.hits {
        println!(
            "  article {}  ss={:.3} ks={:.3} (level {})",
            flex.document().attribute(hit.node, id).unwrap_or("?"),
            hit.score.ss,
            hit.score.ks,
            hit.relaxation_level
        );
    }
    println!(
        "\nnote: a strict XPath engine returns only article A; FleXPath also\n\
         surfaces B (keywords in the section title), C (algorithm outside the\n\
         section), D (no algorithm at all), and E (keywords anywhere) — in\n\
         exactly the order Figure 1's lattice predicts."
    );
}
