//! Quickstart: index a small corpus, run one flexible query, print ranked
//! answers with explanations.
//!
//! Run with: `cargo run --example quickstart`

use flexpath::{explain_answer, explain_schedule, parse_query, FleXPath};

const CORPUS: &str = r#"<library>
  <article id="icde02"><title>Structural joins for XML</title>
    <section><algorithm>stack-tree</algorithm>
      <paragraph>Evaluating XML streaming queries with structural joins.</paragraph>
    </section></article>
  <article id="vldb03"><title>Streams and trees</title>
    <section><title>XML streaming background</title>
      <algorithm>twig</algorithm>
      <paragraph>We revisit twig joins over trees.</paragraph>
    </section></article>
  <article id="tods04"><title>Query relaxation</title>
    <section><paragraph>Approximate matching over XML streaming data.</paragraph></section>
    <appendix><algorithm>relax</algorithm></appendix></article>
  <article id="misc"><abstract>A survey mentioning XML streaming systems.</abstract></article>
  <article id="off-topic"><section><paragraph>Relational query optimization.</paragraph></section></article>
</library>"#;

const QUERY: &str =
    "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" and \"streaming\")]]]";

fn main() {
    let flex = FleXPath::from_xml(CORPUS).expect("corpus is well-formed");

    println!("== FleXPath quickstart ==\n");
    println!("query: {QUERY}\n");

    // A strict XPath engine would return exactly one article. FleXPath
    // treats the structure as a template and ranks near-misses below it.
    let results = flex.query(QUERY).expect("query parses").top(4).execute();

    println!(
        "{} answers (algorithm: {}, {} relaxation steps encoded)\n",
        results.hits.len(),
        results.algorithm,
        results.stats.relaxations_used
    );
    let id = flex.document().symbols().lookup("id").unwrap();
    for (rank, hit) in results.hits.iter().enumerate() {
        let label = flex.document().attribute(hit.node, id).unwrap_or("?");
        println!(
            "#{:<2} [{}] {}",
            rank + 1,
            label,
            explain_answer(flex.context(), hit)
        );
        println!("     {}", flex.snippet(hit.node, 72));
    }

    println!("\n== why those ranks: the relaxation schedule ==\n");
    let q = parse_query(QUERY).unwrap();
    print!("{}", explain_schedule(flex.context(), &q, 12));
}
