//! Property tests for the IR engine: index/evaluation consistency against
//! naive text scans, most-specific-set invariants, and score sanity.

use flexpath_ftsearch::{stem, FtExpr, InvertedIndex};
use flexpath_xmldom::{parse, Document, NodeId};
use proptest::prelude::*;

const WORDS: [&str; 6] = ["gold", "silver", "vintage", "auction", "rare", "coin"];
const TAGS: [&str; 4] = ["a", "b", "c", "d"];

fn arb_doc() -> impl Strategy<Value = String> {
    let text = prop::collection::vec(0usize..WORDS.len(), 1..6)
        .prop_map(|ws| ws.iter().map(|&w| WORDS[w]).collect::<Vec<_>>().join(" "));
    let node = text.prop_recursive(4, 32, 4, |inner| {
        (0usize..TAGS.len(), prop::collection::vec(inner, 0..4)).prop_map(|(t, kids)| {
            format!("<{0}>{1}</{0}>", TAGS[t], kids.join(" "))
        })
    });
    node.prop_map(|body| format!("<root>{body}</root>"))
}

/// Naive oracle: does the subtree text of `n` contain every (stemmed) term?
/// Tokenizes per text node — concatenating text nodes would glue adjacent
/// words together across element boundaries.
fn naive_contains_all(doc: &Document, n: NodeId, terms: &[&str]) -> bool {
    let mut tokens: Vec<String> = Vec::new();
    for d in doc.descendants_or_self(n) {
        if let Some(text) = doc.text_content(d) {
            for t in flexpath_ftsearch::tokenize(&text.to_lowercase()) {
                tokens.push(stem(&t));
            }
        }
    }
    terms
        .iter()
        .all(|t| tokens.iter().any(|tok| tok == &stem(t)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn satisfies_matches_naive_text_scan(
        xml in arb_doc(),
        w1 in 0usize..WORDS.len(),
        w2 in 0usize..WORDS.len(),
    ) {
        let doc = parse(&xml).unwrap();
        let index = InvertedIndex::build(&doc);
        let terms = [WORDS[w1], WORDS[w2]];
        let expr = FtExpr::all_of(&terms);
        let eval = index.evaluate(&doc, &expr);
        for n in doc.elements() {
            prop_assert_eq!(
                eval.satisfies(&doc, n),
                naive_contains_all(&doc, n, &terms),
                "node {} of {}", n, xml
            );
        }
    }

    #[test]
    fn matches_are_minimal_and_sorted(xml in arb_doc(), w in 0usize..WORDS.len()) {
        let doc = parse(&xml).unwrap();
        let index = InvertedIndex::build(&doc);
        let eval = index.evaluate(&doc, &FtExpr::term(WORDS[w]));
        let nodes: Vec<NodeId> = eval.matches().iter().map(|(n, _)| *n).collect();
        // Sorted in document order.
        for pair in nodes.windows(2) {
            prop_assert!(pair[0] < pair[1]);
        }
        // Most-specific: no match is an ancestor of another match.
        for &a in &nodes {
            for &b in &nodes {
                prop_assert!(a == b || !doc.is_ancestor(a, b),
                    "match {a} contains match {b}");
            }
        }
    }

    #[test]
    fn scores_are_normalized(xml in arb_doc(), w in 0usize..WORDS.len()) {
        let doc = parse(&xml).unwrap();
        let index = InvertedIndex::build(&doc);
        let eval = index.evaluate(&doc, &FtExpr::term(WORDS[w]));
        if !eval.is_empty() {
            let max = eval
                .matches()
                .iter()
                .map(|(_, s)| *s)
                .fold(0.0f64, f64::max);
            prop_assert!((max - 1.0).abs() < 1e-9, "max score must be 1.0");
            for (_, s) in eval.matches() {
                prop_assert!((0.0..=1.0 + 1e-9).contains(s));
            }
        }
    }

    #[test]
    fn and_is_intersection_or_is_union_of_satisfaction(
        xml in arb_doc(),
        w1 in 0usize..WORDS.len(),
        w2 in 0usize..WORDS.len(),
    ) {
        let doc = parse(&xml).unwrap();
        let index = InvertedIndex::build(&doc);
        let ta = FtExpr::term(WORDS[w1]);
        let tb = FtExpr::term(WORDS[w2]);
        let and = index.evaluate(&doc, &FtExpr::And(vec![ta.clone(), tb.clone()]));
        let or = index.evaluate(&doc, &FtExpr::Or(vec![ta.clone(), tb.clone()]));
        let ea = index.evaluate(&doc, &ta);
        let eb = index.evaluate(&doc, &tb);
        for n in doc.elements() {
            prop_assert_eq!(
                and.satisfies(&doc, n),
                ea.satisfies(&doc, n) && eb.satisfies(&doc, n)
            );
            prop_assert_eq!(
                or.satisfies(&doc, n),
                ea.satisfies(&doc, n) || eb.satisfies(&doc, n)
            );
        }
    }

    #[test]
    fn contains_satisfaction_is_monotone_up_the_tree(
        xml in arb_doc(),
        w in 0usize..WORDS.len(),
    ) {
        // The closure inference rule ad(x,y) ∧ contains(y,E) ⊢ contains(x,E)
        // requires monotonicity for positive expressions.
        let doc = parse(&xml).unwrap();
        let index = InvertedIndex::build(&doc);
        let eval = index.evaluate(&doc, &FtExpr::term(WORDS[w]));
        for n in doc.elements() {
            if eval.satisfies(&doc, n) {
                for anc in doc.ancestors(n) {
                    prop_assert!(eval.satisfies(&doc, anc),
                        "ancestor {anc} of satisfying {n} must satisfy");
                }
            }
        }
    }

    #[test]
    fn count_for_tag_equals_naive_count(xml in arb_doc(), w in 0usize..WORDS.len()) {
        let doc = parse(&xml).unwrap();
        let index = InvertedIndex::build(&doc);
        let expr = FtExpr::term(WORDS[w]);
        let eval = index.evaluate(&doc, &expr);
        for (sym, _) in doc.symbols().iter() {
            let naive = doc
                .nodes_with_tag(sym)
                .iter()
                .filter(|&&n| naive_contains_all(&doc, n, &[WORDS[w]]))
                .count() as u64;
            prop_assert_eq!(eval.count_for_tag(&doc, sym), naive);
        }
    }

    #[test]
    fn stemming_is_deterministic_and_bounded(word in "[a-z]{1,16}") {
        // Porter is NOT idempotent in general (e.g. "abee" → "abe" → "ab"),
        // so we check the properties it does guarantee: determinism,
        // bounded growth (+1 char via the restore-e rules), non-emptiness,
        // and a fixed point within a few applications.
        let once = stem(&word);
        prop_assert_eq!(stem(&word), once.clone(), "stem must be deterministic");
        prop_assert!(once.len() <= word.len() + 1);
        prop_assert!(!once.is_empty());
        let mut cur = once;
        for _ in 0..6 {
            let next = stem(&cur);
            if next == cur {
                break;
            }
            prop_assert!(next.len() < cur.len(), "repeated stemming must shrink");
            cur = next;
        }
        prop_assert_eq!(stem(&cur), cur.clone(), "must reach a fixed point");
    }

    #[test]
    fn phrase_implies_conjunction(xml in arb_doc()) {
        let doc = parse(&xml).unwrap();
        let index = InvertedIndex::build(&doc);
        let phrase = FtExpr::Phrase(vec!["gold".into(), "silver".into()]);
        let conj = FtExpr::all_of(&["gold", "silver"]);
        let ep = index.evaluate(&doc, &phrase);
        let ec = index.evaluate(&doc, &conj);
        for n in doc.elements() {
            if ep.satisfies(&doc, n) {
                prop_assert!(ec.satisfies(&doc, n), "phrase ⊆ conjunction");
            }
        }
    }
}
