//! Randomized (seeded, deterministic) tests for the IR engine:
//! index/evaluation consistency against naive text scans,
//! most-specific-set invariants, and score sanity.

use flexpath_ftsearch::{stem, FtExpr, InvertedIndex};
use flexpath_xmldom::{parse, Document, NodeId};

/// Tiny deterministic PRNG (splitmix64) so cases reproduce without any
/// property-testing dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

const WORDS: [&str; 6] = ["gold", "silver", "vintage", "auction", "rare", "coin"];
const TAGS: [&str; 4] = ["a", "b", "c", "d"];
const CASES: u64 = 64;

fn random_doc(rng: &mut Rng) -> String {
    fn node(rng: &mut Rng, depth: u32, out: &mut String) {
        if depth >= 4 || rng.below(4) == 0 {
            let words = 1 + rng.below(5);
            for i in 0..words {
                if i > 0 {
                    out.push(' ');
                }
                out.push_str(WORDS[rng.below(WORDS.len())]);
            }
            return;
        }
        let tag = TAGS[rng.below(TAGS.len())];
        out.push_str(&format!("<{tag}>"));
        let kids = rng.below(4);
        for i in 0..kids {
            if i > 0 {
                out.push(' ');
            }
            node(rng, depth + 1, out);
        }
        out.push_str(&format!("</{tag}>"));
    }
    let mut body = String::new();
    node(rng, 0, &mut body);
    format!("<root>{body}</root>")
}

/// Runs `body` over `CASES` deterministic random documents (with the rng
/// still usable for per-case draws like word picks).
fn for_docs(seed: u64, mut body: impl FnMut(&mut Rng, &str)) {
    for case in 0..CASES {
        let mut rng = Rng(seed ^ case.wrapping_mul(0xDEAD_BEEF_CAFE_F00D));
        let xml = random_doc(&mut rng);
        body(&mut rng, &xml);
    }
}

/// Naive oracle: does the subtree text of `n` contain every (stemmed) term?
/// Tokenizes per text node — concatenating text nodes would glue adjacent
/// words together across element boundaries.
fn naive_contains_all(doc: &Document, n: NodeId, terms: &[&str]) -> bool {
    let mut tokens: Vec<String> = Vec::new();
    for d in doc.descendants_or_self(n) {
        if let Some(text) = doc.text_content(d) {
            for t in flexpath_ftsearch::tokenize(&text.to_lowercase()) {
                tokens.push(stem(&t));
            }
        }
    }
    terms
        .iter()
        .all(|t| tokens.iter().any(|tok| tok == &stem(t)))
}

#[test]
fn satisfies_matches_naive_text_scan() {
    for_docs(1, |rng, xml| {
        let doc = parse(xml).unwrap();
        let index = InvertedIndex::build(&doc);
        let terms = [WORDS[rng.below(WORDS.len())], WORDS[rng.below(WORDS.len())]];
        let expr = FtExpr::all_of(&terms);
        let eval = index.evaluate(&doc, &expr);
        for n in doc.elements() {
            assert_eq!(
                eval.satisfies(&doc, n),
                naive_contains_all(&doc, n, &terms),
                "node {n:?} of {xml}"
            );
        }
    });
}

#[test]
fn matches_are_minimal_and_sorted() {
    for_docs(2, |rng, xml| {
        let doc = parse(xml).unwrap();
        let index = InvertedIndex::build(&doc);
        let eval = index.evaluate(&doc, &FtExpr::term(WORDS[rng.below(WORDS.len())]));
        let nodes: Vec<NodeId> = eval.matches().iter().map(|(n, _)| *n).collect();
        // Sorted in document order.
        for pair in nodes.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        // Most-specific: no match is an ancestor of another match.
        for &a in &nodes {
            for &b in &nodes {
                assert!(
                    a == b || !doc.is_ancestor(a, b),
                    "match {a:?} contains match {b:?}"
                );
            }
        }
    });
}

#[test]
fn scores_are_normalized() {
    for_docs(3, |rng, xml| {
        let doc = parse(xml).unwrap();
        let index = InvertedIndex::build(&doc);
        let eval = index.evaluate(&doc, &FtExpr::term(WORDS[rng.below(WORDS.len())]));
        if !eval.is_empty() {
            let max = eval
                .matches()
                .iter()
                .map(|(_, s)| *s)
                .fold(0.0f64, f64::max);
            assert!((max - 1.0).abs() < 1e-9, "max score must be 1.0");
            for (_, s) in eval.matches() {
                assert!((0.0..=1.0 + 1e-9).contains(s));
            }
        }
    });
}

#[test]
fn and_is_intersection_or_is_union_of_satisfaction() {
    for_docs(4, |rng, xml| {
        let doc = parse(xml).unwrap();
        let index = InvertedIndex::build(&doc);
        let ta = FtExpr::term(WORDS[rng.below(WORDS.len())]);
        let tb = FtExpr::term(WORDS[rng.below(WORDS.len())]);
        let and = index.evaluate(&doc, &FtExpr::And(vec![ta.clone(), tb.clone()]));
        let or = index.evaluate(&doc, &FtExpr::Or(vec![ta.clone(), tb.clone()]));
        let ea = index.evaluate(&doc, &ta);
        let eb = index.evaluate(&doc, &tb);
        for n in doc.elements() {
            assert_eq!(
                and.satisfies(&doc, n),
                ea.satisfies(&doc, n) && eb.satisfies(&doc, n)
            );
            assert_eq!(
                or.satisfies(&doc, n),
                ea.satisfies(&doc, n) || eb.satisfies(&doc, n)
            );
        }
    });
}

#[test]
fn contains_satisfaction_is_monotone_up_the_tree() {
    for_docs(5, |rng, xml| {
        // The closure inference rule ad(x,y) ∧ contains(y,E) ⊢ contains(x,E)
        // requires monotonicity for positive expressions.
        let doc = parse(xml).unwrap();
        let index = InvertedIndex::build(&doc);
        let eval = index.evaluate(&doc, &FtExpr::term(WORDS[rng.below(WORDS.len())]));
        for n in doc.elements() {
            if eval.satisfies(&doc, n) {
                for anc in doc.ancestors(n) {
                    assert!(
                        eval.satisfies(&doc, anc),
                        "ancestor {anc:?} of satisfying {n:?} must satisfy"
                    );
                }
            }
        }
    });
}

#[test]
fn count_for_tag_equals_naive_count() {
    for_docs(6, |rng, xml| {
        let doc = parse(xml).unwrap();
        let index = InvertedIndex::build(&doc);
        let word = WORDS[rng.below(WORDS.len())];
        let eval = index.evaluate(&doc, &FtExpr::term(word));
        for (sym, _) in doc.symbols().iter() {
            let naive = doc
                .nodes_with_tag(sym)
                .iter()
                .filter(|&&n| naive_contains_all(&doc, n, &[word]))
                .count() as u64;
            assert_eq!(eval.count_for_tag(&doc, sym), naive);
        }
    });
}

#[test]
fn stemming_is_deterministic_and_bounded() {
    // Porter is NOT idempotent in general (e.g. "abee" → "abe" → "ab"),
    // so we check the properties it does guarantee: determinism,
    // bounded growth (+1 char via the restore-e rules), non-emptiness,
    // and a fixed point within a few applications.
    for case in 0..CASES {
        let mut rng = Rng(0x7357 + case);
        let len = 1 + rng.below(16);
        let word: String = (0..len)
            .map(|_| (b'a' + rng.below(26) as u8) as char)
            .collect();
        let once = stem(&word);
        assert_eq!(stem(&word), once, "stem must be deterministic");
        assert!(once.len() <= word.len() + 1);
        assert!(!once.is_empty());
        let mut cur = once;
        for _ in 0..6 {
            let next = stem(&cur);
            if next == cur {
                break;
            }
            assert!(next.len() < cur.len(), "repeated stemming must shrink");
            cur = next;
        }
        assert_eq!(stem(&cur), cur, "must reach a fixed point");
    }
}

#[test]
fn phrase_implies_conjunction() {
    for_docs(7, |_, xml| {
        let doc = parse(xml).unwrap();
        let index = InvertedIndex::build(&doc);
        let phrase = FtExpr::Phrase(vec!["gold".into(), "silver".into()]);
        let conj = FtExpr::all_of(&["gold", "silver"]);
        let ep = index.evaluate(&doc, &phrase);
        let ec = index.evaluate(&doc, &conj);
        for n in doc.elements() {
            if ep.satisfies(&doc, n) {
                assert!(ec.satisfies(&doc, n), "phrase ⊆ conjunction");
            }
        }
    });
}
