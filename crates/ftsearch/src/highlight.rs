//! Keyword highlighting for result presentation (supports the paper's
//! Figure 1 bibliographic scenarios; standard IR hit highlighting).
//!
//! Given an answer node and the full-text expression that matched it,
//! produce a snippet with the matching words marked — the standard "hit
//! highlighting" any IR front end provides. Matching is stem-based, so
//! a query for `"stream"` highlights `streaming` too.

use crate::ftexpr::FtExpr;
use crate::stem::stem;
use flexpath_xmldom::{Document, NodeId};
use std::collections::HashSet;

/// How matches are marked.
#[derive(Debug, Clone)]
pub struct HighlightStyle {
    /// Inserted before each matching word (default `**`).
    pub open: String,
    /// Inserted after each matching word (default `**`).
    pub close: String,
    /// Maximum snippet length in characters (`0` = unlimited). The snippet
    /// is centred on the first match.
    pub max_chars: usize,
}

impl Default for HighlightStyle {
    fn default() -> Self {
        HighlightStyle {
            open: "**".into(),
            close: "**".into(),
            max_chars: 160,
        }
    }
}

/// Renders the subtree text of `node` with every word whose stem occurs in
/// `expr`'s positive terms wrapped in the style's markers.
pub fn highlight(doc: &Document, node: NodeId, expr: &FtExpr, style: &HighlightStyle) -> String {
    let targets: HashSet<String> = expr
        .positive_terms()
        .into_iter()
        .map(|t| t.to_string())
        .collect();

    // Walk text nodes, tokenizing with char positions so markers land
    // exactly around the original (un-normalized) words.
    let mut rendered = String::new();
    let mut first_match: Option<usize> = None;
    for d in doc.descendants_or_self(node) {
        let Some(text) = doc.text_content(d) else {
            continue;
        };
        if !rendered.is_empty() && !rendered.ends_with(' ') {
            rendered.push(' ');
        }
        let mut chars = text.char_indices().peekable();
        while let Some(&(start, c)) = chars.peek() {
            if c.is_alphanumeric() {
                let mut end = start;
                let mut word = String::new();
                while let Some(&(i, c)) = chars.peek() {
                    if !c.is_alphanumeric() {
                        break;
                    }
                    end = i + c.len_utf8();
                    word.extend(c.to_lowercase());
                    chars.next();
                }
                let original = &text[start..end];
                if targets.contains(&stem(&word)) {
                    if first_match.is_none() {
                        first_match = Some(rendered.len());
                    }
                    rendered.push_str(&style.open);
                    rendered.push_str(original);
                    rendered.push_str(&style.close);
                } else {
                    rendered.push_str(original);
                }
            } else {
                rendered.push(c);
                chars.next();
            }
        }
    }

    // Window the snippet around the first match.
    if style.max_chars > 0 && rendered.chars().count() > style.max_chars {
        let centre = first_match.unwrap_or(0);
        // Convert the byte offset into a char offset.
        let centre_chars = rendered[..centre.min(rendered.len())].chars().count();
        let half = style.max_chars / 2;
        let from = centre_chars.saturating_sub(half);
        let windowed: String = rendered.chars().skip(from).take(style.max_chars).collect();
        let mut out = String::new();
        if from > 0 {
            out.push('…');
        }
        out.push_str(windowed.trim());
        out.push('…');
        out
    } else {
        rendered.trim().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexpath_xmldom::parse;

    #[test]
    fn marks_matching_words() {
        let doc = parse("<a>pure gold and silver rings</a>").unwrap();
        let expr = FtExpr::parse("\"gold\" and \"silver\"").unwrap();
        let out = highlight(&doc, doc.root_element(), &expr, &HighlightStyle::default());
        assert_eq!(out, "pure **gold** and **silver** rings");
    }

    #[test]
    fn stemmed_forms_are_highlighted() {
        let doc = parse("<a>streams and streaming workloads</a>").unwrap();
        let expr = FtExpr::term("stream");
        let out = highlight(&doc, doc.root_element(), &expr, &HighlightStyle::default());
        assert_eq!(out, "**streams** and **streaming** workloads");
    }

    #[test]
    fn original_casing_is_preserved() {
        let doc = parse("<a>XML Streaming</a>").unwrap();
        let expr = FtExpr::all_of(&["xml", "streaming"]);
        let out = highlight(&doc, doc.root_element(), &expr, &HighlightStyle::default());
        assert_eq!(out, "**XML** **Streaming**");
    }

    #[test]
    fn long_text_windows_around_first_match() {
        let filler = "lorem ipsum dolor sit amet ".repeat(20);
        let xml = format!("<a>{filler} gold here {filler}</a>");
        let doc = parse(&xml).unwrap();
        let expr = FtExpr::term("gold");
        let style = HighlightStyle {
            max_chars: 60,
            ..Default::default()
        };
        let out = highlight(&doc, doc.root_element(), &expr, &style);
        assert!(out.contains("**gold**"), "{out}");
        assert!(out.chars().count() <= 64, "window respected: {out}");
        assert!(out.starts_with('…') && out.ends_with('…'));
    }

    #[test]
    fn custom_markers_apply() {
        let doc = parse("<a>gold</a>").unwrap();
        let expr = FtExpr::term("gold");
        let style = HighlightStyle {
            open: "<em>".into(),
            close: "</em>".into(),
            max_chars: 0,
        };
        let out = highlight(&doc, doc.root_element(), &expr, &style);
        assert_eq!(out, "<em>gold</em>");
    }

    #[test]
    fn cross_element_text_gets_separators() {
        let doc = parse("<a><b>gold</b><c>coin</c></a>").unwrap();
        let expr = FtExpr::term("gold");
        let out = highlight(&doc, doc.root_element(), &expr, &HighlightStyle::default());
        assert_eq!(out, "**gold** coin");
    }

    #[test]
    fn no_match_returns_plain_text() {
        let doc = parse("<a>nothing relevant</a>").unwrap();
        let expr = FtExpr::term("gold");
        let out = highlight(&doc, doc.root_element(), &expr, &HighlightStyle::default());
        assert_eq!(out, "nothing relevant");
    }
}
