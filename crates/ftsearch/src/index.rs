//! Element-granularity positional inverted index — the IR-engine side of
//! the paper's Figure 7 architecture (Sections 2.2 and 5.1).
//!
//! Every token of every text node is attributed to the text node's *parent
//! element* (its direct container). Posting lists are keyed by stemmed term
//! and sorted by element id — i.e. by document order, which lets the
//! evaluator answer "does the subtree of `n` contain this term?" with a
//! binary search, because a subtree is a contiguous id range.
//!
//! Positions are global token offsets (document order), so phrase and
//! window predicates compare positions *within one posting entry* only —
//! tokens from different elements can never form a phrase.

use crate::stem::stem;
use crate::tokenize::for_each_token;
use flexpath_xmldom::wire::{ByteReader, ByteWriter, WireError};
use flexpath_xmldom::{CodecError, Document, NodeId};
use std::collections::HashMap;

/// One element's occurrences of a term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostingEntry {
    /// The element whose *direct* text contains the term.
    pub node: NodeId,
    /// Global token positions of each occurrence, ascending.
    pub positions: Vec<u32>,
}

impl PostingEntry {
    /// Term frequency within this element's direct text.
    pub fn tf(&self) -> u32 {
        self.positions.len() as u32
    }
}

/// The posting list of one term: entries sorted by element id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Posting {
    /// Entries in ascending [`NodeId`] order.
    pub entries: Vec<PostingEntry>,
}

impl Posting {
    /// Document frequency: number of elements directly containing the term.
    pub fn df(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Index of the first entry with `node >= id`.
    pub fn lower_bound(&self, id: NodeId) -> usize {
        self.entries.partition_point(|e| e.node < id)
    }

    /// Entries whose element falls in the (inclusive) id range
    /// `[from, to]` — i.e. inside one subtree.
    pub fn entries_in_range(&self, from: NodeId, to: NodeId) -> &[PostingEntry] {
        let lo = self.lower_bound(from);
        let hi = self.entries.partition_point(|e| e.node <= to);
        &self.entries[lo..hi]
    }

    /// Whether any entry falls in `[from, to]`.
    pub fn any_in_range(&self, from: NodeId, to: NodeId) -> bool {
        let lo = self.lower_bound(from);
        lo < self.entries.len() && self.entries[lo].node <= to
    }
}

/// The inverted index over one document.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    // lint:allow(determinism): never iterated on an output path — lookups
    // are keyed, df sums are order-free, and encode() sorts terms first.
    postings: HashMap<Box<str>, Posting>,
    /// Elements with at least one direct text token (the `N` of idf).
    scoring_elements: u64,
    /// Total token count (all elements).
    total_tokens: u64,
    /// Prefix sums of per-node direct token counts (index i = tokens of
    /// nodes `0..i`), enabling O(1) subtree-length lookups for BM25.
    token_prefix: Vec<u64>,
}

impl InvertedIndex {
    /// Builds the index in one pass over the document's text nodes.
    pub fn build(doc: &Document) -> Self {
        // lint:allow(determinism): hot build-path map; see the field note —
        // no iteration order reaches scores or serialized bytes.
        let mut postings: HashMap<Box<str>, Posting> = HashMap::new();
        let mut scoring: Vec<bool> = vec![false; doc.node_count()];
        let mut direct_tokens: Vec<u64> = vec![0; doc.node_count()];
        let mut position = 0u32;
        let mut total_tokens = 0u64;
        for n in doc.all_nodes() {
            let Some(text) = doc.text_content(n) else {
                continue;
            };
            // Text nodes always have an element parent; a root text node
            // cannot exist in a well-formed document, so skip defensively.
            let Some(parent) = doc.parent(n) else {
                continue;
            };
            scoring[parent.index()] = true;
            for_each_token(text, |tok| {
                let stemmed = stem(tok);
                let posting = postings.entry(stemmed.into_boxed_str()).or_default();
                match posting.entries.last_mut() {
                    Some(last) if last.node == parent => last.positions.push(position),
                    _ => posting.entries.push(PostingEntry {
                        node: parent,
                        positions: vec![position],
                    }),
                }
                position += 1;
                total_tokens += 1;
                direct_tokens[parent.index()] += 1;
            });
        }
        let mut token_prefix = Vec::with_capacity(doc.node_count() + 1);
        token_prefix.push(0);
        let mut acc = 0u64;
        for &c in &direct_tokens {
            acc += c;
            token_prefix.push(acc);
        }
        // Text-node scan order is document order, but a *parent* can receive
        // trailing text after a child element's subtree (mixed content), so
        // entries may arrive out of element-id order and an element may have
        // several runs. Sort stably and merge runs; within one element,
        // stable order keeps positions ascending.
        for posting in postings.values_mut() {
            posting.entries.sort_by_key(|e| e.node);
            let mut merged: Vec<PostingEntry> = Vec::with_capacity(posting.entries.len());
            for entry in posting.entries.drain(..) {
                match merged.last_mut() {
                    Some(last) if last.node == entry.node => last.positions.extend(entry.positions),
                    _ => merged.push(entry),
                }
            }
            posting.entries = merged;
        }
        InvertedIndex {
            postings,
            scoring_elements: scoring.iter().filter(|s| **s).count() as u64,
            total_tokens,
            token_prefix,
        }
    }

    /// Number of tokens directly inside element `n` (not its descendants).
    pub fn direct_token_count(&self, n: NodeId) -> u64 {
        self.token_prefix[n.index() + 1] - self.token_prefix[n.index()]
    }

    /// Number of tokens in the whole subtree of `n` (O(1) via prefix sums).
    pub fn subtree_token_count(&self, doc: &Document, n: NodeId) -> u64 {
        let last = doc.subtree_last(n);
        self.token_prefix[last.index() + 1] - self.token_prefix[n.index()]
    }

    /// Average direct token count over scoring elements (BM25's `avgdl`).
    pub fn avg_element_length(&self) -> f64 {
        if self.scoring_elements == 0 {
            0.0
        } else {
            self.total_tokens as f64 / self.scoring_elements as f64
        }
    }

    /// Posting list for an (already stemmed) term.
    pub fn posting(&self, stemmed_term: &str) -> Option<&Posting> {
        self.postings.get(stemmed_term)
    }

    /// Document frequency of an (already stemmed) term.
    pub fn df(&self, stemmed_term: &str) -> u64 {
        self.posting(stemmed_term).map_or(0, Posting::df)
    }

    /// Smoothed inverse document frequency, `ln(1 + N / df)`; 0 for absent
    /// terms.
    pub fn idf(&self, stemmed_term: &str) -> f64 {
        let df = self.df(stemmed_term);
        if df == 0 {
            0.0
        } else {
            (1.0 + self.scoring_elements as f64 / df as f64).ln()
        }
    }

    /// Number of elements with direct text (the idf denominator base).
    pub fn scoring_elements(&self) -> u64 {
        self.scoring_elements
    }

    /// Total number of indexed tokens.
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.postings.len()
    }

    /// Total number of posting entries across all terms (one per
    /// `(term, element)` pair). This is what the store charges against the
    /// governor's posting budget at load time.
    pub fn posting_entry_count(&self) -> u64 {
        self.postings.values().map(Posting::df).sum()
    }

    /// Encodes the index as two byte payloads: the term dictionary
    /// (`TERMS` store section) and the posting lists (`POSTINGS` section).
    ///
    /// Terms are emitted in lexicographic byte order and each posting's
    /// entries are already node-sorted, so the output is deterministic —
    /// a requirement of the store's golden-file drift check.
    pub fn encode(&self) -> (Vec<u8>, Vec<u8>) {
        let mut terms: Vec<&str> = self.postings.keys().map(|k| k.as_ref()).collect();
        terms.sort_unstable();
        let mut tw = ByteWriter::with_capacity(24 + terms.len() * 16);
        tw.u64(self.scoring_elements);
        tw.u64(terms.len() as u64);
        let mut pw = ByteWriter::new();
        for term in terms {
            // `term` is a key of `postings`, so the lookup cannot miss;
            // an empty default keeps this branch panic-free regardless.
            let posting = self.postings.get(term);
            let entries: &[PostingEntry] = posting.map(|p| p.entries.as_slice()).unwrap_or(&[]);
            tw.str(term);
            tw.u64(entries.len() as u64);
            for e in entries {
                pw.u32(e.node.0);
                pw.u32(e.positions.len() as u32);
                for &p in &e.positions {
                    pw.u32(p);
                }
            }
        }
        (tw.into_bytes(), pw.into_bytes())
    }

    /// Decodes an index from `TERMS` + `POSTINGS` payloads produced by
    /// [`InvertedIndex::encode`]. `node_count` is the owning document's
    /// node count and bounds every element reference.
    ///
    /// Validates the canonical form end to end — terms strictly ascending,
    /// entry nodes strictly ascending and in range, positions strictly
    /// ascending and non-empty — so lookups and binary searches on the
    /// decoded index behave identically to a freshly built one.
    pub fn decode(
        term_bytes: &[u8],
        posting_bytes: &[u8],
        node_count: usize,
    ) -> Result<Self, CodecError> {
        let mut tr = ByteReader::new(term_bytes);
        let scoring_elements = tr.u64()?;
        let term_count = tr.count(12)?;
        let mut pr = ByteReader::new(posting_bytes);
        // lint:allow(determinism): decode-path map, keyed lookups only; the
        // serialized form it came from is already sorted.
        let mut postings: HashMap<Box<str>, Posting> = HashMap::with_capacity(term_count);
        let mut direct_tokens: Vec<u64> = vec![0; node_count];
        let mut total_tokens = 0u64;
        let mut prev_term: Option<Box<str>> = None;
        for i in 0..term_count {
            let idx = i as u64;
            let term: Box<str> = tr.str()?.into();
            if let Some(prev) = &prev_term {
                if term <= *prev {
                    return Err(CodecError::Invalid {
                        what: "terms not strictly sorted",
                        index: idx,
                    });
                }
            }
            let entry_count = {
                // Each entry is ≥ 12 bytes in the postings stream.
                let at = pr.position();
                let n = tr.u64()?;
                if n > (pr.remaining() as u64) / 12 {
                    return Err(CodecError::Wire(WireError::ImplausibleLength {
                        at,
                        len: n,
                    }));
                }
                n as usize
            };
            if entry_count == 0 {
                return Err(CodecError::Invalid {
                    what: "term with empty posting list",
                    index: idx,
                });
            }
            let mut entries: Vec<PostingEntry> = Vec::with_capacity(entry_count);
            for _ in 0..entry_count {
                let node = pr.u32()?;
                if node as usize >= node_count {
                    return Err(CodecError::Invalid {
                        what: "posting node id out of range",
                        index: node as u64,
                    });
                }
                if let Some(last) = entries.last() {
                    if NodeId(node) <= last.node {
                        return Err(CodecError::Invalid {
                            what: "posting entries not node-sorted",
                            index: node as u64,
                        });
                    }
                }
                let tf = {
                    let at = pr.position();
                    let tf = pr.u32()?;
                    if tf == 0 || tf as usize > pr.remaining() / 4 {
                        return Err(CodecError::Wire(WireError::ImplausibleLength {
                            at,
                            len: tf as u64,
                        }));
                    }
                    tf as usize
                };
                let mut positions: Vec<u32> = Vec::with_capacity(tf);
                for _ in 0..tf {
                    let p = pr.u32()?;
                    if let Some(&last) = positions.last() {
                        if p <= last {
                            return Err(CodecError::Invalid {
                                what: "positions not strictly ascending",
                                index: p as u64,
                            });
                        }
                    }
                    positions.push(p);
                }
                direct_tokens[node as usize] += tf as u64;
                total_tokens += tf as u64;
                entries.push(PostingEntry {
                    node: NodeId(node),
                    positions,
                });
            }
            postings.insert(term.clone(), Posting { entries });
            prev_term = Some(term);
        }
        tr.expect_exhausted()?;
        pr.expect_exhausted()?;
        let mut token_prefix = Vec::with_capacity(node_count + 1);
        token_prefix.push(0);
        let mut acc = 0u64;
        for &c in &direct_tokens {
            acc += c;
            token_prefix.push(acc);
        }
        Ok(InvertedIndex {
            postings,
            scoring_elements,
            total_tokens,
            token_prefix,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexpath_xmldom::parse;

    fn index_of(xml: &str) -> (Document, InvertedIndex) {
        let doc = parse(xml).unwrap();
        let idx = InvertedIndex::build(&doc);
        (doc, idx)
    }

    #[test]
    fn tokens_attributed_to_direct_parent() {
        let (doc, idx) = index_of("<a>alpha <b>beta</b> gamma</a>");
        let a = doc.root_element();
        let b = doc.nodes_with_tag_name("b")[0];
        let alpha = idx.posting("alpha").unwrap();
        assert_eq!(alpha.entries.len(), 1);
        assert_eq!(alpha.entries[0].node, a);
        let beta = idx.posting("beta").unwrap();
        assert_eq!(beta.entries[0].node, b);
    }

    #[test]
    fn positions_are_global_and_increasing() {
        let (_, idx) = index_of("<a>alpha beta <b>gamma</b> delta</a>");
        let pos = |t: &str| idx.posting(t).unwrap().entries[0].positions[0];
        assert!(pos("alpha") < pos("beta"));
        assert!(pos("beta") < pos("gamma"));
        assert!(pos("gamma") < pos("delta"));
    }

    #[test]
    fn repeated_terms_accumulate_tf() {
        let (_, idx) = index_of("<a>gold gold gold</a>");
        let p = idx.posting("gold").unwrap();
        assert_eq!(p.entries.len(), 1);
        assert_eq!(p.entries[0].tf(), 3);
    }

    #[test]
    fn terms_are_stemmed_at_index_time() {
        let (_, idx) = index_of("<a>streaming algorithms</a>");
        assert!(idx.posting("stream").is_some());
        assert!(idx.posting("algorithm").is_some());
        assert!(idx.posting("streaming").is_none());
    }

    #[test]
    fn df_and_idf_behave() {
        let (_, idx) = index_of("<r><a>gold</a><a>gold</a><a>silver</a></r>");
        assert_eq!(idx.df("gold"), 2);
        assert_eq!(idx.df("silver"), 1);
        assert_eq!(idx.scoring_elements(), 3);
        assert!(idx.idf("silver") > idx.idf("gold"));
        assert_eq!(idx.idf("missing"), 0.0);
    }

    #[test]
    fn range_queries_respect_subtrees() {
        let (doc, idx) = index_of("<r><a>gold</a><b>gold</b></r>");
        let a = doc.nodes_with_tag_name("a")[0];
        let b = doc.nodes_with_tag_name("b")[0];
        let p = idx.posting("gold").unwrap();
        assert!(p.any_in_range(a, doc.subtree_last(a)));
        assert_eq!(p.entries_in_range(a, doc.subtree_last(a)).len(), 1);
        assert!(p.any_in_range(b, doc.subtree_last(b)));
        // Range covering the whole document sees both.
        let r = doc.root_element();
        assert_eq!(p.entries_in_range(r, doc.subtree_last(r)).len(), 2);
    }

    #[test]
    fn posting_entries_sorted_by_node() {
        let (_, idx) = index_of("<r><a>x1</a><b>x1</b><c>x1</c></r>");
        let p = idx.posting("x1").unwrap();
        for w in p.entries.windows(2) {
            assert!(w[0].node < w[1].node);
        }
    }

    #[test]
    fn empty_document_indexes_cleanly() {
        let (_, idx) = index_of("<a/>");
        assert_eq!(idx.term_count(), 0);
        assert_eq!(idx.scoring_elements(), 0);
        assert_eq!(idx.total_tokens(), 0);
    }

    #[test]
    fn codec_roundtrip_is_lossless() {
        let (doc, idx) = index_of(
            "<r><a>gold silver gold</a><b>gold <c>copper</c> tail</b><d>streaming</d></r>",
        );
        let (terms, postings) = idx.encode();
        let back = InvertedIndex::decode(&terms, &postings, doc.node_count()).unwrap();
        assert_eq!(back.term_count(), idx.term_count());
        assert_eq!(back.scoring_elements(), idx.scoring_elements());
        assert_eq!(back.total_tokens(), idx.total_tokens());
        for t in ["gold", "silver", "copper", "tail", "stream"] {
            assert_eq!(back.posting(t), idx.posting(t), "posting for {t}");
            assert!((back.idf(t) - idx.idf(t)).abs() < 1e-15);
        }
        for n in doc.all_nodes() {
            assert_eq!(back.direct_token_count(n), idx.direct_token_count(n));
            assert_eq!(
                back.subtree_token_count(&doc, n),
                idx.subtree_token_count(&doc, n)
            );
        }
    }

    #[test]
    fn codec_encoding_is_deterministic() {
        let (_, idx) = index_of("<r><a>one two three</a><b>two three four</b></r>");
        assert_eq!(idx.encode(), idx.encode());
    }

    #[test]
    fn codec_rejects_any_single_byte_flip_or_decodes_validly() {
        let (doc, idx) = index_of("<r><a>gold silver</a><b>gold</b></r>");
        let (terms, postings) = idx.encode();
        for i in 0..terms.len() {
            let mut bad = terms.clone();
            bad[i] ^= 0xff;
            let _ = InvertedIndex::decode(&bad, &postings, doc.node_count());
        }
        for i in 0..postings.len() {
            let mut bad = postings.clone();
            bad[i] ^= 0xff;
            let _ = InvertedIndex::decode(&terms, &bad, doc.node_count());
        }
    }

    #[test]
    fn codec_rejects_truncation() {
        let (doc, idx) = index_of("<r><a>gold silver</a></r>");
        let (terms, postings) = idx.encode();
        for cut in 0..terms.len() {
            assert!(InvertedIndex::decode(&terms[..cut], &postings, doc.node_count()).is_err());
        }
        for cut in 0..postings.len() {
            assert!(InvertedIndex::decode(&terms, &postings[..cut], doc.node_count()).is_err());
        }
    }

    #[test]
    fn codec_rejects_out_of_range_nodes() {
        let (doc, idx) = index_of("<r><a>gold</a></r>");
        let (terms, postings) = idx.encode();
        // Shrink the claimed node count below the posting's node id.
        assert!(InvertedIndex::decode(&terms, &postings, 1).is_err());
        assert!(InvertedIndex::decode(&terms, &postings, doc.node_count()).is_ok());
    }
}
