//! A classic English stopword list (query-side hygiene for the Section 2.2
//! IR-style `contains` semantics).
//!
//! The inverted index stores *all* tokens (so phrases containing stopwords
//! still match); this list is for query-side filtering by callers that want
//! bag-of-words behaviour.

/// Sorted stopword list (binary-searchable).
static STOPWORDS: &[&str] = &[
    "a", "about", "after", "all", "also", "an", "and", "any", "are", "as", "at", "be", "because",
    "been", "but", "by", "can", "could", "do", "for", "from", "had", "has", "have", "he", "her",
    "his", "how", "if", "in", "into", "is", "it", "its", "just", "like", "more", "most", "my",
    "no", "not", "of", "on", "one", "only", "or", "other", "our", "out", "over", "she", "so",
    "some", "such", "than", "that", "the", "their", "them", "then", "there", "these", "they",
    "this", "to", "under", "up", "was", "we", "were", "what", "when", "where", "which", "who",
    "will", "with", "would", "you", "your",
];

/// Whether `word` (already lowercase) is a stopword.
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_for_binary_search() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOPWORDS);
    }

    #[test]
    fn common_words_are_stopwords() {
        for w in ["the", "and", "of", "is"] {
            assert!(is_stopword(w), "{w}");
        }
    }

    #[test]
    fn content_words_are_not() {
        for w in ["xml", "streaming", "algorithm", "gold"] {
            assert!(!is_stopword(w), "{w}");
        }
    }
}
