//! Thesaurus-based keyword expansion — the third "other relaxation" of
//! paper Section 3.4: *"We could also relax the contains predicate by
//! making use of thesauri and replacing keywords with more general ones."*
//!
//! The paper notes such relaxations "can already be performed by a separate
//! IR engine before returning its results" — so this lives here, in the IR
//! engine, as a query-side rewrite: [`Thesaurus::expand`] turns each
//! `Term` into a disjunction of the term and its synonyms. Expansion is
//! monotone (it only adds alternatives), so all of FleXPath's closure
//! reasoning remains valid on the expanded expression.

use crate::ftexpr::FtExpr;
use crate::stem::stem;
use std::collections::HashMap;

/// A symmetric synonym table over stemmed terms.
#[derive(Debug, Clone, Default)]
pub struct Thesaurus {
    synonyms: HashMap<Box<str>, Vec<Box<str>>>,
}

impl Thesaurus {
    /// An empty thesaurus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a synonym ring: every word becomes a synonym of every other
    /// (terms are stemmed on entry, duplicates ignored).
    pub fn add_ring(&mut self, words: &[&str]) -> &mut Self {
        let stems: Vec<Box<str>> = words.iter().map(|w| stem(w).into_boxed_str()).collect();
        for (i, a) in stems.iter().enumerate() {
            let entry = self.synonyms.entry(a.clone()).or_default();
            for (j, b) in stems.iter().enumerate() {
                if i != j && !entry.contains(b) {
                    entry.push(b.clone());
                }
            }
        }
        self
    }

    /// Synonyms of a (stemmed) term, excluding the term itself.
    pub fn synonyms_of(&self, stemmed: &str) -> &[Box<str>] {
        self.synonyms
            .get(stemmed)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Rewrites `expr`, replacing every [`FtExpr::Term`] that has synonyms
    /// with a disjunction over the synonym ring. Phrases and windows are
    /// left alone (positional semantics do not survive substitution);
    /// negated subtrees are left alone too (expanding under a `Not` would
    /// *strengthen* the query, the opposite of a relaxation).
    pub fn expand(&self, expr: &FtExpr) -> FtExpr {
        match expr {
            FtExpr::Term(t) => {
                let syns = self.synonyms_of(t);
                if syns.is_empty() {
                    expr.clone()
                } else {
                    let mut alts = Vec::with_capacity(syns.len() + 1);
                    alts.push(FtExpr::Term(t.clone()));
                    alts.extend(syns.iter().map(|s| FtExpr::Term(s.to_string())));
                    FtExpr::Or(alts)
                }
            }
            FtExpr::And(xs) => FtExpr::And(xs.iter().map(|x| self.expand(x)).collect()),
            FtExpr::Or(xs) => FtExpr::Or(xs.iter().map(|x| self.expand(x)).collect()),
            FtExpr::Not(_) | FtExpr::Phrase(_) | FtExpr::Window { .. } => expr.clone(),
        }
    }

    /// Whether the thesaurus has any entries.
    pub fn is_empty(&self) -> bool {
        self.synonyms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::InvertedIndex;
    use flexpath_xmldom::parse;

    fn gems() -> Thesaurus {
        let mut t = Thesaurus::new();
        t.add_ring(&["gold", "golden", "gilded"]);
        t.add_ring(&["rare", "scarce"]);
        t
    }

    #[test]
    fn rings_are_symmetric_and_stemmed() {
        let t = gems();
        assert!(t.synonyms_of("gold").iter().any(|s| &**s == "golden"));
        assert!(t.synonyms_of("golden").iter().any(|s| &**s == "gold"));
        assert!(t.synonyms_of("scarc").iter().any(|s| &**s == "rare"));
        assert!(t.synonyms_of("platinum").is_empty());
    }

    #[test]
    fn expansion_turns_terms_into_disjunctions() {
        let t = gems();
        let e = FtExpr::parse("\"gold\" and \"coin\"").unwrap();
        let expanded = t.expand(&e);
        match expanded {
            FtExpr::And(parts) => {
                assert!(matches!(parts[0], FtExpr::Or(ref alts) if alts.len() == 3));
                assert!(matches!(parts[1], FtExpr::Term(_))); // no synonyms
            }
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn expansion_is_a_relaxation_under_evaluation() {
        let doc =
            parse("<r><a>gold coin</a><b>golden coin</b><c>gilded coin</c><d>silver coin</d></r>")
                .unwrap();
        let index = InvertedIndex::build(&doc);
        let strict = FtExpr::parse("\"gold\" and \"coin\"").unwrap();
        let relaxed = gems().expand(&strict);
        let es = index.evaluate(&doc, &strict);
        let er = index.evaluate(&doc, &relaxed);
        // Every strict match remains a match; new ones appear.
        for n in doc.elements() {
            if es.satisfies(&doc, n) {
                assert!(er.satisfies(&doc, n));
            }
        }
        assert_eq!(es.len(), 1);
        assert_eq!(er.len(), 3); // a, b, c — not d
    }

    #[test]
    fn negated_subtrees_are_not_expanded() {
        let t = gems();
        let e = FtExpr::parse("\"coin\" and not \"gold\"").unwrap();
        let expanded = t.expand(&e);
        // The gold inside Not must stay a bare term.
        match &expanded {
            FtExpr::And(parts) => match &parts[1] {
                FtExpr::Not(inner) => assert!(matches!(**inner, FtExpr::Term(_))),
                other => panic!("expected Not, got {other:?}"),
            },
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn phrases_are_preserved() {
        let t = gems();
        let e = FtExpr::Phrase(vec!["gold".into(), "coin".into()]);
        assert_eq!(t.expand(&e), e);
    }
}
