//! # flexpath-ftsearch
//!
//! The IR engine of the FleXPath reproduction. FleXPath (Section 5.1)
//! assumes *"the `contains` predicate is evaluated by a separate IR engine
//! that returns a ranked list of pairs (node, score)"* using *"the same
//! techniques as in [XRANK, Schmidt et al.] that return the most specific
//! elements that satisfy the full-text expression"*. This crate provides
//! exactly that contract, built from scratch:
//!
//! * [`tokenize()`](tokenize()) — word tokenizer with case folding;
//! * [`stem()`](stem()) — the full Porter stemming algorithm;
//! * [`FtExpr`] — the full-text expression language (`Term`, `Phrase`,
//!   `And`, `Or`, `Not`, `Window`) plus a parser for the paper's
//!   `"XML" and "streaming"` syntax;
//! * [`InvertedIndex`] — element-granularity positional inverted index;
//! * [`FtEval`] — evaluation returning the *most specific* satisfying
//!   elements with tf-idf scores normalized to `[0, 1]`, with O(log n)
//!   subtree-satisfaction tests (the engine's `Combine` step) and the
//!   `#contains(tag, expr)` counts needed by FleXPath's predicate penalties.
//!
//! ```
//! use flexpath_xmldom::parse;
//! use flexpath_ftsearch::{InvertedIndex, FtExpr};
//!
//! let doc = parse("<article><section><p>XML streaming algorithms</p></section></article>").unwrap();
//! let index = InvertedIndex::build(&doc);
//! let expr = FtExpr::parse("\"XML\" and \"streaming\"").unwrap();
//! let eval = index.evaluate(&doc, &expr);
//! let article = doc.root_element();
//! assert!(eval.satisfies(&doc, article));
//! assert!(eval.score(&doc, article) > 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod budget;
pub mod cache;
pub mod eval;
pub mod ftexpr;
pub mod highlight;
pub mod index;
pub mod stem;
pub mod stopwords;
pub mod thesaurus;
pub mod tokenize;

pub use budget::{Budget, CancelToken, ExhaustReason};
pub use cache::{CacheStats, ShardedCache};
pub use eval::{FtEval, ScoringModel};
pub use ftexpr::{FtExpr, FtParseError};
pub use highlight::{highlight, HighlightStyle};
pub use index::{InvertedIndex, Posting, PostingEntry};
pub use stem::stem;
pub use stopwords::is_stopword;
pub use thesaurus::Thesaurus;
pub use tokenize::{for_each_token, tokenize};
