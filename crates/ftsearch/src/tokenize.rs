//! Word tokenization with case folding.
//!
//! A token is a maximal run of alphanumeric characters; everything else
//! separates tokens. Tokens are folded to lowercase. This matches what the
//! classic IR literature (and the paper's era of engines) assumes.

/// Calls `f` once per token of `text`, in order, with the lowercase-folded
/// token in a reused buffer (no per-token allocation).
pub fn for_each_token(text: &str, mut f: impl FnMut(&str)) {
    let mut buf = String::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_alphanumeric() {
            buf.clear();
            while let Some(&c) = chars.peek() {
                if !c.is_alphanumeric() {
                    break;
                }
                for lc in c.to_lowercase() {
                    buf.push(lc);
                }
                chars.next();
            }
            f(&buf);
        } else {
            chars.next();
        }
    }
}

/// Convenience: collects the tokens of `text` into owned strings.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for_each_token(text, |t| out.push(t.to_string()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        assert_eq!(
            tokenize("Hello, world! foo-bar_baz"),
            ["hello", "world", "foo", "bar", "baz"]
        );
    }

    #[test]
    fn folds_case() {
        assert_eq!(tokenize("XML Streaming"), ["xml", "streaming"]);
    }

    #[test]
    fn keeps_digits() {
        assert_eq!(tokenize("model 42b"), ["model", "42b"]);
    }

    #[test]
    fn empty_and_symbol_only_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! --- ???").is_empty());
    }

    #[test]
    fn unicode_words_tokenize() {
        assert_eq!(tokenize("héllo wörld"), ["héllo", "wörld"]);
    }

    #[test]
    fn for_each_token_reuses_buffer_in_order() {
        let mut seen = Vec::new();
        for_each_token("a bb ccc", |t| seen.push(t.len()));
        assert_eq!(seen, [1, 2, 3]);
    }
}
