//! The full-text expression language used inside `contains($i, FTExp)`.
//!
//! The paper (Section 2.1) leaves `FTExp` open — *"FTExp can vary from a
//! simple conjunction of keywords to an expression that uses proximity
//! distance, stemming, regular expressions and negation"* — and evaluates
//! only conjunctions like `"XML" and "streaming"`. We implement the
//! combinators an engine of that era would offer: terms, phrases, Boolean
//! `and`/`or`/`not`, and a positional proximity window.
//!
//! FleXPath's closure inference rule 3 (`ad(x,y) ∧ contains(y,E) ⊢
//! contains(x,E)`) requires `contains` to be *monotone* in the context node:
//! if a subtree satisfies `E`, every enclosing subtree must too. Negation
//! breaks monotonicity, so [`FtExpr::is_monotone`] lets the query layer
//! reject non-monotone expressions in `contains` while the IR engine itself
//! still evaluates them.

use crate::stem::stem;
use crate::tokenize::tokenize;
use std::fmt;

/// A full-text search expression.
///
/// The `Ord`/`Hash` impls give expressions a canonical total order so that
/// predicate sets containing `contains` predicates (in `flexpath-tpq`) can
/// be deduplicated and compared structurally.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FtExpr {
    /// A single stemmed term.
    Term(String),
    /// A sequence of stemmed terms that must occur at consecutive positions
    /// inside one element's direct text.
    Phrase(Vec<String>),
    /// All sub-expressions must be satisfied.
    And(Vec<FtExpr>),
    /// At least one sub-expression must be satisfied.
    Or(Vec<FtExpr>),
    /// The sub-expression must *not* be satisfied (non-monotone).
    Not(Box<FtExpr>),
    /// All terms must occur within `window` token positions of each other in
    /// one element's direct text.
    Window {
        /// Stemmed terms.
        terms: Vec<String>,
        /// Maximum allowed span (`max_pos - min_pos < window`).
        window: u32,
    },
}

/// Errors from [`FtExpr::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FtParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the query string.
    pub offset: usize,
}

impl fmt::Display for FtParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "full-text parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for FtParseError {}

impl FtExpr {
    /// Builds a [`FtExpr::Term`], tokenizing and stemming `word`. Multi-word
    /// input becomes a [`FtExpr::Phrase`].
    pub fn term(word: &str) -> FtExpr {
        let mut toks: Vec<String> = tokenize(word).iter().map(|t| stem(t)).collect();
        if toks.len() > 1 {
            return FtExpr::Phrase(toks);
        }
        match toks.pop() {
            Some(only) => FtExpr::Term(only),
            None => FtExpr::Phrase(Vec::new()), // degenerate: satisfied nowhere
        }
    }

    /// Conjunction of keywords — the paper's `"XML" and "streaming"` shape.
    pub fn all_of(words: &[&str]) -> FtExpr {
        FtExpr::And(words.iter().map(|w| FtExpr::term(w)).collect())
    }

    /// Disjunction of keywords.
    pub fn any_of(words: &[&str]) -> FtExpr {
        FtExpr::Or(words.iter().map(|w| FtExpr::term(w)).collect())
    }

    /// Whether satisfaction is monotone in the context subtree (no `Not`).
    pub fn is_monotone(&self) -> bool {
        match self {
            FtExpr::Term(_) | FtExpr::Phrase(_) | FtExpr::Window { .. } => true,
            FtExpr::And(xs) | FtExpr::Or(xs) => xs.iter().all(FtExpr::is_monotone),
            FtExpr::Not(_) => false,
        }
    }

    /// Whether the expression contains at least one positive term (required
    /// for evaluation — a pure negation has no finite witness set).
    pub fn has_positive_term(&self) -> bool {
        match self {
            FtExpr::Term(_) => true,
            FtExpr::Phrase(ts) => !ts.is_empty(),
            FtExpr::Window { terms, .. } => !terms.is_empty(),
            FtExpr::And(xs) | FtExpr::Or(xs) => xs.iter().any(FtExpr::has_positive_term),
            FtExpr::Not(_) => false,
        }
    }

    /// Collects the positive stemmed terms (scoring terms) of the expression.
    pub fn positive_terms(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_positive(&mut out);
        out
    }

    fn collect_positive<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            FtExpr::Term(t) => out.push(t),
            FtExpr::Phrase(ts) | FtExpr::Window { terms: ts, .. } => {
                out.extend(ts.iter().map(String::as_str))
            }
            FtExpr::And(xs) | FtExpr::Or(xs) => {
                for x in xs {
                    x.collect_positive(out);
                }
            }
            FtExpr::Not(_) => {}
        }
    }

    /// Parses the paper's quoted-keyword syntax:
    ///
    /// ```text
    /// expr    := orExpr
    /// orExpr  := andExpr ("or" andExpr)*
    /// andExpr := unary ("and" unary)*
    /// unary   := "not" unary | primary
    /// primary := STRING | "(" expr ")"
    /// ```
    ///
    /// A quoted `STRING` with several words is a phrase. Examples:
    /// `"XML" and "streaming"`, `"gold" and not "plated"`,
    /// `("rare" or "scarce") and "vintage coin"`.
    pub fn parse(input: &str) -> Result<FtExpr, FtParseError> {
        let mut p = FtParser { input, pos: 0 };
        let expr = p.parse_or()?;
        p.skip_ws();
        if p.pos != input.len() {
            return Err(p.error("trailing input"));
        }
        Ok(expr)
    }
}

impl fmt::Display for FtExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtExpr::Term(t) => write!(f, "\"{t}\""),
            FtExpr::Phrase(ts) => write!(f, "\"{}\"", ts.join(" ")),
            FtExpr::And(xs) => {
                let parts: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
                write!(f, "({})", parts.join(" and "))
            }
            FtExpr::Or(xs) => {
                let parts: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
                write!(f, "({})", parts.join(" or "))
            }
            FtExpr::Not(x) => write!(f, "not {x}"),
            FtExpr::Window { terms, window } => {
                write!(f, "window({}, {window})", terms.join(" "))
            }
        }
    }
}

struct FtParser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> FtParser<'a> {
    fn error(&self, message: &str) -> FtParseError {
        FtParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.input[self.pos..].starts_with(|c: char| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = &self.input[self.pos..];
        if rest.len() >= kw.len() && rest[..kw.len()].eq_ignore_ascii_case(kw) {
            let after = rest[kw.len()..].chars().next();
            if after.is_none_or(|c| !c.is_alphanumeric()) {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn parse_or(&mut self) -> Result<FtExpr, FtParseError> {
        let mut parts = vec![self.parse_and()?];
        while self.eat_keyword("or") {
            parts.push(self.parse_and()?);
        }
        Ok(match parts.pop() {
            Some(only) if parts.is_empty() => only,
            Some(last) => {
                parts.push(last);
                FtExpr::Or(parts)
            }
            None => FtExpr::Phrase(Vec::new()),
        })
    }

    fn parse_and(&mut self) -> Result<FtExpr, FtParseError> {
        let mut parts = vec![self.parse_unary()?];
        while self.eat_keyword("and") {
            parts.push(self.parse_unary()?);
        }
        Ok(match parts.pop() {
            Some(only) if parts.is_empty() => only,
            Some(last) => {
                parts.push(last);
                FtExpr::And(parts)
            }
            None => FtExpr::Phrase(Vec::new()),
        })
    }

    fn parse_unary(&mut self) -> Result<FtExpr, FtParseError> {
        if self.eat_keyword("not") {
            return Ok(FtExpr::Not(Box::new(self.parse_unary()?)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<FtExpr, FtParseError> {
        self.skip_ws();
        match self.input[self.pos..].chars().next() {
            Some('"') => {
                self.pos += 1;
                let start = self.pos;
                let end = self.input[self.pos..]
                    .find('"')
                    .ok_or_else(|| self.error("unterminated string"))?;
                let content = &self.input[start..start + end];
                self.pos = start + end + 1;
                let expr = FtExpr::term(content);
                if !expr.has_positive_term() {
                    return Err(self.error("empty search string"));
                }
                Ok(expr)
            }
            Some('(') => {
                self.pos += 1;
                let inner = self.parse_or()?;
                self.skip_ws();
                if !self.input[self.pos..].starts_with(')') {
                    return Err(self.error("expected ')'"));
                }
                self.pos += 1;
                Ok(inner)
            }
            Some(c) => Err(self.error(&format!("expected '\"' or '(', found {c:?}"))),
            None => Err(self.error("unexpected end of expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_conjunction() {
        let e = FtExpr::parse("\"XML\" and \"streaming\"").unwrap();
        assert_eq!(
            e,
            FtExpr::And(vec![
                FtExpr::Term("xml".into()),
                FtExpr::Term("stream".into())
            ])
        );
    }

    #[test]
    fn multi_word_string_is_a_phrase() {
        let e = FtExpr::parse("\"vintage gold coin\"").unwrap();
        assert_eq!(
            e,
            FtExpr::Phrase(vec!["vintag".into(), "gold".into(), "coin".into()])
        );
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        let e = FtExpr::parse("\"a1\" or \"b1\" and \"c1\"").unwrap();
        match e {
            FtExpr::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[1], FtExpr::And(_)));
            }
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn parentheses_override_precedence() {
        let e = FtExpr::parse("(\"a1\" or \"b1\") and \"c1\"").unwrap();
        match e {
            FtExpr::And(parts) => assert!(matches!(parts[0], FtExpr::Or(_))),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn negation_and_monotonicity() {
        let e = FtExpr::parse("\"gold\" and not \"plated\"").unwrap();
        assert!(!e.is_monotone());
        assert!(e.has_positive_term());
        let pure_not = FtExpr::Not(Box::new(FtExpr::term("gold")));
        assert!(!pure_not.has_positive_term());
        let pos = FtExpr::parse("\"gold\" and \"coin\"").unwrap();
        assert!(pos.is_monotone());
    }

    #[test]
    fn parse_errors_carry_position() {
        assert!(FtExpr::parse("\"unterminated").is_err());
        assert!(FtExpr::parse("\"a\" garbage").is_err());
        assert!(FtExpr::parse("(\"a\"").is_err());
        assert!(FtExpr::parse("").is_err());
        assert!(FtExpr::parse("\"   \"").is_err());
    }

    #[test]
    fn keywords_are_case_insensitive_and_word_bounded() {
        let e = FtExpr::parse("\"a1\" AND \"b1\"").unwrap();
        assert!(matches!(e, FtExpr::And(_)));
        // "android" must not be parsed as AND + "roid".
        let e = FtExpr::parse("\"android\"").unwrap();
        assert!(matches!(e, FtExpr::Term(_)));
    }

    #[test]
    fn terms_are_stemmed_at_construction() {
        assert_eq!(FtExpr::term("Streaming"), FtExpr::Term("stream".into()));
        let e = FtExpr::all_of(&["algorithms", "XML"]);
        assert_eq!(
            e.positive_terms(),
            vec!["algorithm".to_string(), "xml".to_string()]
        );
    }

    #[test]
    fn display_round_trips_through_parser() {
        let e = FtExpr::parse("(\"a1\" or \"b1\") and not \"c1\"").unwrap();
        let reparsed = FtExpr::parse(&e.to_string()).unwrap();
        assert_eq!(e, reparsed);
    }
}
