//! Sharded, lock-striped concurrent cache for memoized evaluations.
//!
//! The FleXPath engine memoizes full-text evaluations so that the same
//! `contains` expression — appearing at several query nodes, across
//! relaxation rounds, or across *queries* sharing one session — is
//! evaluated once (the "optimize repeated computation" goal of the paper's
//! Section 1). With the parallel top-K execution path, many worker threads
//! hit that cache at once: a single map behind one lock would serialize
//! them on every probe.
//!
//! [`ShardedCache`] stripes the key space over `N` independently locked
//! shards (key → shard by hash). Readers on different shards never contend;
//! writers contend only within a shard. Values are handed out as
//! [`Arc`]s, so a hit never copies the (potentially large) evaluation.
//!
//! The cache is *insert-only* by design: memoized results are pure
//! functions of `(document, expression)` and a session's document is
//! immutable, so eviction and invalidation are unnecessary. A computation
//! raced by two threads may run twice, but exactly one result wins the
//! `entry` insert and both callers observe the same `Arc` thereafter.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Default shard count — enough stripes that 8–16 worker threads rarely
/// collide, small enough that an empty cache stays cheap.
pub const DEFAULT_SHARDS: usize = 16;

/// A concurrent, insert-only memoization cache striped over `N` shards.
///
/// ```
/// use flexpath_ftsearch::ShardedCache;
///
/// let cache: ShardedCache<String, usize> = ShardedCache::default();
/// let v = cache.get_or_insert_with(&"answer".to_string(), || 42);
/// assert_eq!(*v, 42);
/// assert_eq!(cache.len(), 1);
/// // Second probe hits the same shared value.
/// assert!(std::sync::Arc::ptr_eq(
///     &v,
///     &cache.get_or_insert_with(&"answer".to_string(), || 0)
/// ));
/// ```
#[derive(Debug)]
pub struct ShardedCache<K, V> {
    shards: Box<[Shard<K, V>]>,
    hasher: RandomState,
}

/// One lock stripe: an independently locked slice of the key space.
type Shard<K, V> = RwLock<HashMap<K, Arc<V>>>;

impl<K: Hash + Eq + Clone, V> Default for ShardedCache<K, V> {
    fn default() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }
}

impl<K: Hash + Eq + Clone, V> ShardedCache<K, V> {
    /// A cache striped over `shards` locks (rounded up to at least 1).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedCache {
            shards: (0..shards)
                .map(|_| RwLock::new(HashMap::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            hasher: RandomState::new(),
        }
    }

    fn shard_of(&self, key: &K) -> usize {
        (self.hasher.hash_one(key) as usize) % self.shards.len()
    }

    // Poison-tolerant lock access: shards hold only memoized pure
    // computations, so a panic mid-insert cannot leave them inconsistent.
    fn read_shard(&self, i: usize) -> RwLockReadGuard<'_, HashMap<K, Arc<V>>> {
        self.shards[i].read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_shard(&self, i: usize) -> RwLockWriteGuard<'_, HashMap<K, Arc<V>>> {
        self.shards[i].write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns the cached value for `key`, if present.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        self.read_shard(self.shard_of(key)).get(key).cloned()
    }

    /// Returns the cached value for `key`, computing and inserting it with
    /// `compute` on a miss.
    ///
    /// `compute` runs *outside* any lock, so a slow computation never
    /// blocks other shards (or even other keys of the same shard beyond
    /// the final insert). If two threads race on the same missing key, both
    /// compute but only the first insert wins; both return the winner.
    pub fn get_or_insert_with(&self, key: &K, compute: impl FnOnce() -> V) -> Arc<V> {
        let shard = self.shard_of(key);
        if let Some(hit) = self.read_shard(shard).get(key) {
            return hit.clone();
        }
        let value = Arc::new(compute());
        self.write_shard(shard)
            .entry(key.clone())
            .or_insert(value)
            .clone()
    }

    /// Inserts `value` for `key` unless an entry already exists; returns
    /// the entry that ended up in the cache.
    pub fn insert_if_absent(&self, key: &K, value: Arc<V>) -> Arc<V> {
        let shard = self.shard_of(key);
        self.write_shard(shard)
            .entry(key.clone())
            .or_insert(value)
            .clone()
    }

    /// Total number of cached entries (sums the shards; approximate while
    /// writers are active).
    pub fn len(&self) -> usize {
        (0..self.shards.len()).map(|i| self.read_shard(i).len()).sum()
    }

    /// `true` when no shard holds any entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn miss_computes_and_hit_shares() {
        let cache: ShardedCache<u32, String> = ShardedCache::default();
        let first = cache.get_or_insert_with(&7, || "seven".to_string());
        let second = cache.get_or_insert_with(&7, || unreachable!("must hit"));
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&8).is_none());
    }

    #[test]
    fn keys_spread_across_shards() {
        let cache: ShardedCache<u64, u64> = ShardedCache::with_shards(8);
        for k in 0..256u64 {
            cache.get_or_insert_with(&k, || k * 2);
        }
        assert_eq!(cache.len(), 256);
        assert_eq!(cache.shard_count(), 8);
        // With 256 keys over 8 shards, more than one shard must be in use —
        // a same-shard pileup would mean the hash routing is broken.
        let used = (0..8)
            .filter(|&i| !cache.read_shard(i).is_empty())
            .count();
        assert!(used > 1, "all keys landed in one shard");
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let cache: ShardedCache<u8, u8> = ShardedCache::with_shards(0);
        assert_eq!(cache.shard_count(), 1);
        cache.get_or_insert_with(&1, || 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_hammering_inserts_each_key_once() {
        let cache: ShardedCache<u32, u32> = ShardedCache::default();
        let computations = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for k in 0..64u32 {
                        let v = cache.get_or_insert_with(&k, || {
                            computations.fetch_add(1, Ordering::Relaxed);
                            k + 1
                        });
                        assert_eq!(*v, k + 1);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 64);
        // Racing threads may compute a key twice, but every reader of a key
        // sees one canonical Arc afterwards.
        for k in 0..64u32 {
            assert_eq!(*cache.get(&k).unwrap(), k + 1);
        }
    }

    #[test]
    fn insert_if_absent_keeps_first_entry() {
        let cache: ShardedCache<u8, u8> = ShardedCache::default();
        let a = cache.insert_if_absent(&1, Arc::new(10));
        let b = cache.insert_if_absent(&1, Arc::new(20));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*b, 10);
    }
}
