//! Sharded, lock-striped concurrent cache for memoized evaluations.
//!
//! The FleXPath engine memoizes full-text evaluations so that the same
//! `contains` expression — appearing at several query nodes, across
//! relaxation rounds, or across *queries* sharing one session — is
//! evaluated once (the "optimize repeated computation" goal of the paper's
//! Section 1). With the parallel top-K execution path, many worker threads
//! hit that cache at once: a single map behind one lock would serialize
//! them on every probe.
//!
//! [`ShardedCache`] stripes the key space over `N` independently locked
//! shards (key → shard by hash). Readers on different shards never contend;
//! writers contend only within a shard. Values are handed out as
//! [`Arc`]s, so a hit never copies the (potentially large) evaluation.
//!
//! ## Sizing and eviction
//!
//! Memoized results are pure functions of `(document, expression)` and a
//! session's document is immutable, so entries never need *invalidation* —
//! but a long-lived session serving many distinct queries would otherwise
//! grow the cache without bound (every distinct `contains` expression ever
//! seen stays resident). Each shard therefore holds at most
//! [`ShardedCache::shard_cap`] entries and evicts its oldest-inserted entry
//! (FIFO order) to make room; total residency is bounded by
//! `shards × shard_cap` *values* (an [`Arc`] still held by a running query
//! keeps its value alive until that query finishes). The default cap
//! ([`DEFAULT_SHARD_CAP`] per shard) is generous for one document's
//! plausible expression space; size it down for memory-tight deployments
//! with [`ShardedCache::with_shards_and_cap`]. A computation raced by two
//! threads may run twice, but exactly one result wins the insert and both
//! callers observe the same [`Arc`] thereafter.
//!
//! Hit/miss/insert/eviction totals are kept as relaxed atomics and read
//! via [`ShardedCache::stats`]. Note that hit/miss splits are inherently
//! scheduling-dependent under concurrency (two racing threads may both
//! miss the same key), so observability layers should treat them as
//! nondeterministic quantities.

use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Default shard count — enough stripes that 8–16 worker threads rarely
/// collide, small enough that an empty cache stays cheap.
pub const DEFAULT_SHARDS: usize = 16;

/// Default per-shard entry cap (so a default cache holds at most
/// `16 × 4096` entries before FIFO eviction kicks in).
pub const DEFAULT_SHARD_CAP: usize = 4096;

/// Point-in-time counters for a [`ShardedCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Probes that found an entry.
    pub hits: u64,
    /// Probes that found nothing (each typically followed by a compute +
    /// insert; racing threads may both miss the same key).
    pub misses: u64,
    /// Entries actually inserted (lost insert races are not counted).
    pub inserts: u64,
    /// Entries evicted to respect the per-shard cap.
    pub evictions: u64,
    /// Entries currently resident (approximate while writers are active).
    pub entries: usize,
    /// Number of lock stripes.
    pub shards: usize,
    /// Per-shard entry cap.
    pub shard_cap: usize,
}

/// A concurrent memoization cache striped over `N` shards, each bounded to
/// `shard_cap` entries with FIFO eviction.
///
/// ```
/// use flexpath_ftsearch::ShardedCache;
///
/// let cache: ShardedCache<String, usize> = ShardedCache::default();
/// let v = cache.get_or_insert_with(&"answer".to_string(), || 42);
/// assert_eq!(*v, 42);
/// assert_eq!(cache.len(), 1);
/// // Second probe hits the same shared value.
/// assert!(std::sync::Arc::ptr_eq(
///     &v,
///     &cache.get_or_insert_with(&"answer".to_string(), || 0)
/// ));
/// let stats = cache.stats();
/// assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 1, 1));
/// ```
#[derive(Debug)]
pub struct ShardedCache<K, V> {
    shards: Box<[Shard<K, V>]>,
    hasher: RandomState,
    shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

/// One lock stripe: an independently locked slice of the key space, with
/// its keys in insertion order for FIFO eviction.
#[derive(Debug)]
struct ShardState<K, V> {
    map: HashMap<K, Arc<V>>,
    order: VecDeque<K>,
}

type Shard<K, V> = RwLock<ShardState<K, V>>;

impl<K: Hash + Eq + Clone, V> Default for ShardedCache<K, V> {
    fn default() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }
}

impl<K: Hash + Eq + Clone, V> ShardedCache<K, V> {
    /// A cache striped over `shards` locks (rounded up to at least 1) with
    /// the default per-shard cap.
    pub fn with_shards(shards: usize) -> Self {
        Self::with_shards_and_cap(shards, DEFAULT_SHARD_CAP)
    }

    /// A cache striped over `shards` locks, each holding at most
    /// `shard_cap` entries (both rounded up to at least 1).
    pub fn with_shards_and_cap(shards: usize, shard_cap: usize) -> Self {
        let shards = shards.max(1);
        ShardedCache {
            shards: (0..shards)
                .map(|_| {
                    RwLock::new(ShardState {
                        map: HashMap::new(),
                        order: VecDeque::new(),
                    })
                })
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            hasher: RandomState::new(),
            shard_cap: shard_cap.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &K) -> usize {
        (self.hasher.hash_one(key) as usize) % self.shards.len()
    }

    // Poison-tolerant lock access: shards hold only memoized pure
    // computations, so a panic mid-insert cannot leave them inconsistent.
    fn read_shard(&self, i: usize) -> RwLockReadGuard<'_, ShardState<K, V>> {
        self.shards[i].read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_shard(&self, i: usize) -> RwLockWriteGuard<'_, ShardState<K, V>> {
        self.shards[i].write().unwrap_or_else(|e| e.into_inner())
    }

    /// Inserts `value` under the shard's write lock, evicting FIFO as
    /// needed. Returns the resident entry (the existing one if another
    /// thread won an insert race).
    fn insert_evicting(&self, shard: usize, key: &K, value: Arc<V>) -> Arc<V> {
        let mut state = self.write_shard(shard);
        if let Some(existing) = state.map.get(key) {
            return existing.clone();
        }
        while state.map.len() >= self.shard_cap {
            match state.order.pop_front() {
                Some(oldest) => {
                    state.map.remove(&oldest);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        state.order.push_back(key.clone());
        state.map.insert(key.clone(), value.clone());
        self.inserts.fetch_add(1, Ordering::Relaxed);
        value
    }

    /// Returns the cached value for `key`, if present.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let hit = self.read_shard(self.shard_of(key)).map.get(key).cloned();
        match hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Returns the cached value for `key`, computing and inserting it with
    /// `compute` on a miss.
    ///
    /// `compute` runs *outside* any lock, so a slow computation never
    /// blocks other shards (or even other keys of the same shard beyond
    /// the final insert). If two threads race on the same missing key, both
    /// compute but only the first insert wins; both return the winner.
    pub fn get_or_insert_with(&self, key: &K, compute: impl FnOnce() -> V) -> Arc<V> {
        let shard = self.shard_of(key);
        if let Some(hit) = self.read_shard(shard).map.get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = Arc::new(compute());
        self.insert_evicting(shard, key, value)
    }

    /// Inserts `value` for `key` unless an entry already exists; returns
    /// the entry that ended up in the cache. Does not count as a probe in
    /// [`CacheStats`] (callers already probed with [`get`](Self::get)).
    pub fn insert_if_absent(&self, key: &K, value: Arc<V>) -> Arc<V> {
        self.insert_evicting(self.shard_of(key), key, value)
    }

    /// Total number of cached entries (sums the shards; approximate while
    /// writers are active).
    pub fn len(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.read_shard(i).map.len())
            .sum()
    }

    /// `true` when no shard holds any entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard entry cap.
    pub fn shard_cap(&self) -> usize {
        self.shard_cap
    }

    /// Point-in-time hit/miss/insert/eviction counters plus residency.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
            shards: self.shards.len(),
            shard_cap: self.shard_cap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn miss_computes_and_hit_shares() {
        let cache: ShardedCache<u32, String> = ShardedCache::default();
        let first = cache.get_or_insert_with(&7, || "seven".to_string());
        let second = cache.get_or_insert_with(&7, || unreachable!("must hit"));
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&8).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2); // first get_or_insert + the get(&8)
        assert_eq!(stats.inserts, 1);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn keys_spread_across_shards() {
        let cache: ShardedCache<u64, u64> = ShardedCache::with_shards(8);
        for k in 0..256u64 {
            cache.get_or_insert_with(&k, || k * 2);
        }
        assert_eq!(cache.len(), 256);
        assert_eq!(cache.shard_count(), 8);
        // With 256 keys over 8 shards, more than one shard must be in use —
        // a same-shard pileup would mean the hash routing is broken.
        let used = (0..8)
            .filter(|&i| !cache.read_shard(i).map.is_empty())
            .count();
        assert!(used > 1, "all keys landed in one shard");
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let cache: ShardedCache<u8, u8> = ShardedCache::with_shards(0);
        assert_eq!(cache.shard_count(), 1);
        cache.get_or_insert_with(&1, || 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shard_cap_evicts_fifo() {
        let cache: ShardedCache<u32, u32> = ShardedCache::with_shards_and_cap(1, 3);
        for k in 0..5u32 {
            cache.get_or_insert_with(&k, || k);
        }
        // Cap 3 on one shard: keys 0 and 1 (oldest) were evicted.
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().evictions, 2);
        assert!(cache.get(&0).is_none());
        assert!(cache.get(&1).is_none());
        assert!(cache.get(&4).is_some());
        // An evicted key recomputes on next probe.
        let v = cache.get_or_insert_with(&0, || 100);
        assert_eq!(*v, 100);
    }

    #[test]
    fn zero_cap_clamps_to_one() {
        let cache: ShardedCache<u8, u8> = ShardedCache::with_shards_and_cap(1, 0);
        assert_eq!(cache.shard_cap(), 1);
        cache.get_or_insert_with(&1, || 1);
        cache.get_or_insert_with(&2, || 2);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn concurrent_hammering_inserts_each_key_once() {
        let cache: ShardedCache<u32, u32> = ShardedCache::default();
        let computations = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for k in 0..64u32 {
                        let v = cache.get_or_insert_with(&k, || {
                            computations.fetch_add(1, Ordering::Relaxed);
                            k + 1
                        });
                        assert_eq!(*v, k + 1);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 64);
        // Racing threads may compute a key twice, but every reader of a key
        // sees one canonical Arc afterwards.
        for k in 0..64u32 {
            assert_eq!(*cache.get(&k).unwrap(), k + 1);
        }
        let stats = cache.stats();
        assert_eq!(stats.inserts, 64, "lost insert races must not count");
        assert_eq!(stats.hits + stats.misses, 8 * 64 + 64);
    }

    #[test]
    fn insert_if_absent_keeps_first_entry() {
        let cache: ShardedCache<u8, u8> = ShardedCache::default();
        let a = cache.insert_if_absent(&1, Arc::new(10));
        let b = cache.insert_if_absent(&1, Arc::new(20));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*b, 10);
        let stats = cache.stats();
        assert_eq!(stats.inserts, 1);
        assert_eq!((stats.hits, stats.misses), (0, 0));
    }
}
