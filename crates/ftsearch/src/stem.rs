//! The Porter stemming algorithm (Porter, 1980), implemented in full.
//!
//! Queries of the paper's era ("The expression used in fn:contains can be as
//! complex as an IR engine can handle (e.g., stemming, …)") assume stemmed
//! matching, so both index terms and query terms pass through [`stem`].
//!
//! The implementation operates on ASCII lowercase bytes; tokens containing
//! non-ASCII characters are returned unchanged (stemming rules are
//! English-specific).

/// Stems a lowercase word. Words shorter than 3 characters and non-ASCII
/// words are returned unchanged.
pub fn stem(word: &str) -> String {
    if word.len() <= 2
        || !word
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit())
    {
        return word.to_string();
    }
    let mut w = word.as_bytes().to_vec();
    step_1a(&mut w);
    step_1b(&mut w);
    step_1c(&mut w);
    step_2(&mut w);
    step_3(&mut w);
    step_4(&mut w);
    step_5a(&mut w);
    step_5b(&mut w);
    // The stemmer only ever shrinks/rewrites ASCII bytes, so this cannot
    // lose data; lossy conversion keeps the path panic-free regardless.
    String::from_utf8_lossy(&w).into_owned()
}

/// Is `w[i]` a consonant (Porter's definition: `y` is a consonant when it
/// heads the word or follows a vowel-position)?
fn is_consonant(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => i == 0 || !is_consonant(w, i - 1),
        _ => true,
    }
}

/// Porter's measure *m* of `w[..len]`: the number of VC sequences in
/// `[C](VC)^m[V]`.
fn measure(w: &[u8], len: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // Skip initial consonants.
    while i < len && is_consonant(w, i) {
        i += 1;
    }
    loop {
        // Skip vowels.
        while i < len && !is_consonant(w, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
        // Skip consonants — one full VC block seen.
        while i < len && is_consonant(w, i) {
            i += 1;
        }
        m += 1;
        if i >= len {
            return m;
        }
    }
}

/// `*v*`: does the stem `w[..len]` contain a vowel?
fn has_vowel(w: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_consonant(w, i))
}

/// `*d`: does `w[..len]` end with a double consonant?
fn ends_double_consonant(w: &[u8], len: usize) -> bool {
    len >= 2 && w[len - 1] == w[len - 2] && is_consonant(w, len - 1)
}

/// `*o`: does `w[..len]` end consonant-vowel-consonant where the final
/// consonant is not `w`, `x`, or `y`?
fn ends_cvc(w: &[u8], len: usize) -> bool {
    if len < 3 {
        return false;
    }
    is_consonant(w, len - 3)
        && !is_consonant(w, len - 2)
        && is_consonant(w, len - 1)
        && !matches!(w[len - 1], b'w' | b'x' | b'y')
}

fn ends_with(w: &[u8], suffix: &str) -> bool {
    w.ends_with(suffix.as_bytes())
}

/// If `w` ends with `suffix` and the measure of the remaining stem is
/// `> min_m`, replace the suffix with `repl` and return true.
fn replace_if_m(w: &mut Vec<u8>, suffix: &str, repl: &str, min_m: usize) -> bool {
    if !ends_with(w, suffix) {
        return false;
    }
    let stem_len = w.len() - suffix.len();
    if measure(w, stem_len) > min_m {
        w.truncate(stem_len);
        w.extend_from_slice(repl.as_bytes());
        true
    } else {
        false
    }
}

fn step_1a(w: &mut Vec<u8>) {
    if ends_with(w, "sses") || ends_with(w, "ies") {
        // Both -sses → -ss and -ies → -i cut two characters.
        w.truncate(w.len() - 2);
    } else if ends_with(w, "s") && !ends_with(w, "ss") {
        w.truncate(w.len() - 1);
    }
}

fn step_1b(w: &mut Vec<u8>) {
    if ends_with(w, "eed") {
        if measure(w, w.len() - 3) > 0 {
            w.truncate(w.len() - 1);
        }
        return;
    }
    let cut = if ends_with(w, "ed") && has_vowel(w, w.len() - 2) {
        2
    } else if ends_with(w, "ing") && has_vowel(w, w.len() - 3) {
        3
    } else {
        return;
    };
    w.truncate(w.len() - cut);
    // Cleanup after removing -ed / -ing.
    if ends_with(w, "at") || ends_with(w, "bl") || ends_with(w, "iz") {
        w.push(b'e');
    } else if ends_double_consonant(w, w.len()) && !matches!(w[w.len() - 1], b'l' | b's' | b'z') {
        w.truncate(w.len() - 1);
    } else if measure(w, w.len()) == 1 && ends_cvc(w, w.len()) {
        w.push(b'e');
    }
}

fn step_1c(w: &mut [u8]) {
    if ends_with(w, "y") && has_vowel(w, w.len() - 1) {
        let n = w.len();
        w[n - 1] = b'i';
    }
}

fn step_2(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    ];
    for (suffix, repl) in RULES {
        if ends_with(w, suffix) {
            replace_if_m(w, suffix, repl, 0);
            return;
        }
    }
}

fn step_3(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    ];
    for (suffix, repl) in RULES {
        if ends_with(w, suffix) {
            replace_if_m(w, suffix, repl, 0);
            return;
        }
    }
}

fn step_4(w: &mut Vec<u8>) {
    const SUFFIXES: &[&str] = &[
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ion",
        "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    ];
    for suffix in SUFFIXES {
        if ends_with(w, suffix) {
            let stem_len = w.len() - suffix.len();
            if measure(w, stem_len) > 1 {
                // -ion additionally requires the stem to end in s or t.
                if *suffix == "ion" && !(stem_len > 0 && matches!(w[stem_len - 1], b's' | b't')) {
                    return;
                }
                w.truncate(stem_len);
            }
            return;
        }
    }
}

fn step_5a(w: &mut Vec<u8>) {
    if ends_with(w, "e") {
        let stem_len = w.len() - 1;
        let m = measure(w, stem_len);
        if m > 1 || (m == 1 && !ends_cvc(w, stem_len)) {
            w.truncate(stem_len);
        }
    }
}

fn step_5b(w: &mut Vec<u8>) {
    if ends_with(w, "ll") && measure(w, w.len()) > 1 {
        w.truncate(w.len() - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(pairs: &[(&str, &str)]) {
        for (input, expected) in pairs {
            assert_eq!(stem(input), *expected, "stem({input:?})");
        }
    }

    #[test]
    fn step1a_plurals() {
        check(&[
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
        ]);
    }

    #[test]
    fn step1b_ed_ing() {
        check(&[
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
        ]);
    }

    #[test]
    fn step1c_y_to_i() {
        check(&[("happy", "happi"), ("sky", "sky")]);
    }

    #[test]
    fn step2_derivational() {
        check(&[
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("digitizer", "digit"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("formaliti", "formal"),
        ]);
    }

    #[test]
    fn step3_step4() {
        check(&[
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("replacement", "replac"),
            ("adoption", "adopt"),
            ("adjustment", "adjust"),
        ]);
    }

    #[test]
    fn step5_final_e_and_ll() {
        check(&[
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ]);
    }

    #[test]
    fn domain_words_stem_consistently() {
        // The search keywords used throughout the reproduction must agree
        // between index-time and query-time stemming.
        assert_eq!(stem("streaming"), "stream");
        assert_eq!(stem("streams"), "stream");
        assert_eq!(stem("algorithms"), "algorithm");
        assert_eq!(stem("xml"), "xml");
    }

    #[test]
    fn short_and_non_ascii_words_pass_through() {
        check(&[("a", "a"), ("is", "is"), ("héllo", "héllo")]);
    }

    #[test]
    fn idempotent_on_common_vocabulary() {
        for w in [
            "gold",
            "vintage",
            "rare",
            "antique",
            "shipping",
            "auction",
            "payment",
            "collector",
            "condition",
            "original",
        ] {
            let once = stem(w);
            let twice = stem(&once);
            assert_eq!(once, twice, "stem not idempotent on {w}");
        }
    }
}
