//! Cooperative resource budgets and external cancellation — an
//! engineering extension beyond the paper, motivated by the Section 6
//! workloads (1–100 MB documents, relaxation spaces exponential in the
//! query).
//!
//! FleXPath's top-K algorithms enumerate a relaxation space whose size is
//! exponential in the query; on large documents a single query can run far
//! longer than an interactive caller is willing to wait. The governor's
//! contract is *graceful degradation*: a budgeted evaluation never panics
//! and never blocks forever — it stops at the next checkpoint and the
//! caller returns the best answers found so far, labelled with why the
//! search stopped.
//!
//! [`Budget`] is the shared checkpoint object: one instance per query
//! execution, threaded (by reference) through every hot loop of the
//! engine and the IR evaluator. All state is atomic, so a [`CancelToken`]
//! clone held by another thread (a UI, a signal handler) can stop an
//! evaluation mid-flight.
//!
//! Checkpoints are designed to be cheap enough for inner loops: a
//! [`Budget::checkpoint`] is one relaxed atomic load plus, every
//! [`TICK_INTERVAL`] calls, a deadline/cancellation check. At typical
//! candidate-loop throughput this bounds cancellation latency well below
//! 50 ms.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How many [`Budget::checkpoint`] calls elapse between full (deadline +
/// cancellation) checks. Power of two so the test is a mask.
pub const TICK_INTERVAL: u64 = 256;

/// Why a budgeted computation stopped before exploring everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExhaustReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The external [`CancelToken`] was triggered.
    Cancelled,
    /// The cap on enumerated relaxations was reached.
    RelaxationBudget,
    /// The cap on candidate answers produced was reached.
    AnswerBudget,
    /// The cap on full-text postings scanned was reached.
    PostingsBudget,
    /// The advisory memory cap was reached.
    MemoryBudget,
}

impl std::fmt::Display for ExhaustReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ExhaustReason::Deadline => "deadline",
            ExhaustReason::Cancelled => "cancelled",
            ExhaustReason::RelaxationBudget => "relaxation budget",
            ExhaustReason::AnswerBudget => "answer budget",
            ExhaustReason::PostingsBudget => "postings budget",
            ExhaustReason::MemoryBudget => "memory budget",
        };
        f.write_str(s)
    }
}

impl ExhaustReason {
    fn code(self) -> u8 {
        match self {
            ExhaustReason::Deadline => 1,
            ExhaustReason::Cancelled => 2,
            ExhaustReason::RelaxationBudget => 3,
            ExhaustReason::AnswerBudget => 4,
            ExhaustReason::PostingsBudget => 5,
            ExhaustReason::MemoryBudget => 6,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            1 => ExhaustReason::Deadline,
            2 => ExhaustReason::Cancelled,
            3 => ExhaustReason::RelaxationBudget,
            4 => ExhaustReason::AnswerBudget,
            5 => ExhaustReason::PostingsBudget,
            6 => ExhaustReason::MemoryBudget,
            _ => return None,
        })
    }
}

/// A cloneable handle that lets *another* thread stop a running query.
///
/// ```
/// use flexpath_ftsearch::CancelToken;
///
/// let token = CancelToken::new();
/// let handle = token.clone();
/// assert!(!token.is_cancelled());
/// handle.cancel();
/// assert!(token.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Safe to call from any thread (the store is a
    /// single atomic write, so it is also async-signal-safe).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Shared, atomic resource meter for one query execution.
///
/// `u64::MAX` for any cap means "unlimited". All charging/checkpoint
/// methods return `true` when the computation should stop; the first
/// reason to trip is latched and later charges keep reporting it.
#[derive(Debug)]
pub struct Budget {
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    max_postings: u64,
    max_answers: u64,
    max_memory: u64,
    postings: AtomicU64,
    answers: AtomicU64,
    memory: AtomicU64,
    ticks: AtomicU64,
    tripped: AtomicU8,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    /// A budget that never trips (no deadline, no caps, no token).
    pub fn unlimited() -> Self {
        Budget {
            deadline: None,
            cancel: None,
            max_postings: u64::MAX,
            max_answers: u64::MAX,
            max_memory: u64::MAX,
            postings: AtomicU64::new(0),
            answers: AtomicU64::new(0),
            memory: AtomicU64::new(0),
            ticks: AtomicU64::new(0),
            tripped: AtomicU8::new(0),
        }
    }

    /// A budget with explicit limits. Any `None` / `u64::MAX` component is
    /// unlimited.
    pub fn new(
        deadline: Option<Instant>,
        cancel: Option<CancelToken>,
        max_postings: u64,
        max_answers: u64,
        max_memory: u64,
    ) -> Self {
        Budget {
            deadline,
            cancel,
            max_postings,
            max_answers,
            max_memory,
            ..Budget::unlimited()
        }
    }

    /// Whether this budget can ever trip. Unlimited budgets let hot loops
    /// skip checkpointing entirely.
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some()
            || self.cancel.is_some()
            || self.max_postings != u64::MAX
            || self.max_answers != u64::MAX
            || self.max_memory != u64::MAX
    }

    /// The first reason this budget tripped, if any.
    pub fn tripped(&self) -> Option<ExhaustReason> {
        ExhaustReason::from_code(self.tripped.load(Ordering::Acquire))
    }

    /// Latches `reason` as the trip cause (first writer wins) and reports
    /// that the computation should stop.
    pub fn trip(&self, reason: ExhaustReason) -> bool {
        let _ =
            self.tripped
                .compare_exchange(0, reason.code(), Ordering::AcqRel, Ordering::Acquire);
        true
    }

    /// Cheap cooperative checkpoint for inner loops: returns `true` when
    /// the computation should stop. Every [`TICK_INTERVAL`] calls it also
    /// performs the (slightly costlier) deadline and cancellation checks.
    #[inline]
    pub fn checkpoint(&self) -> bool {
        if self.tripped.load(Ordering::Relaxed) != 0 {
            return true;
        }
        if self.deadline.is_none() && self.cancel.is_none() {
            return false;
        }
        let t = self.ticks.fetch_add(1, Ordering::Relaxed);
        if t.is_multiple_of(TICK_INTERVAL) {
            return self.check_now();
        }
        false
    }

    /// Unconditional deadline + cancellation check (round boundaries).
    pub fn check_now(&self) -> bool {
        if self.tripped.load(Ordering::Relaxed) != 0 {
            return true;
        }
        if let Some(tok) = &self.cancel {
            if tok.is_cancelled() {
                return self.trip(ExhaustReason::Cancelled);
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return self.trip(ExhaustReason::Deadline);
            }
        }
        false
    }

    /// Records `n` full-text postings scanned; `true` means stop.
    ///
    /// The count always accumulates — even on unlimited budgets — so the
    /// observability layer can report postings totals; only the cap check
    /// is skipped when unlimited.
    pub fn charge_postings(&self, n: u64) -> bool {
        let before = self.postings.fetch_add(n, Ordering::Relaxed);
        if self.tripped.load(Ordering::Relaxed) != 0 {
            return true;
        }
        if self.max_postings == u64::MAX {
            return false;
        }
        if before.saturating_add(n) > self.max_postings {
            return self.trip(ExhaustReason::PostingsBudget);
        }
        false
    }

    /// Records one candidate answer produced; `true` means stop. Counts
    /// even when unlimited (see [`charge_postings`](Self::charge_postings)).
    pub fn charge_answer(&self) -> bool {
        let before = self.answers.fetch_add(1, Ordering::Relaxed);
        if self.tripped.load(Ordering::Relaxed) != 0 {
            return true;
        }
        if self.max_answers == u64::MAX {
            return false;
        }
        if before + 1 > self.max_answers {
            return self.trip(ExhaustReason::AnswerBudget);
        }
        false
    }

    /// Records `bytes` of working memory retained; `true` means stop. The
    /// cap is advisory (checked at allocation-heavy sites, not a hard
    /// allocator limit). Counts even when unlimited.
    pub fn charge_memory(&self, bytes: u64) -> bool {
        let before = self.memory.fetch_add(bytes, Ordering::Relaxed);
        if self.tripped.load(Ordering::Relaxed) != 0 {
            return true;
        }
        if self.max_memory == u64::MAX {
            return false;
        }
        if before.saturating_add(bytes) > self.max_memory {
            return self.trip(ExhaustReason::MemoryBudget);
        }
        false
    }

    /// Postings scanned so far (for stats reporting).
    pub fn postings_scanned(&self) -> u64 {
        self.postings.load(Ordering::Relaxed)
    }

    /// Candidate answers charged so far (for stats reporting).
    pub fn answers_produced(&self) -> u64 {
        self.answers.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::unlimited();
        assert!(!b.is_limited());
        for _ in 0..10_000 {
            assert!(!b.checkpoint());
        }
        assert!(!b.charge_postings(1 << 40));
        assert!(!b.charge_answer());
        assert!(!b.charge_memory(1 << 40));
        assert_eq!(b.tripped(), None);
    }

    #[test]
    fn cancel_token_trips_within_tick_interval() {
        let tok = CancelToken::new();
        let b = Budget::new(None, Some(tok.clone()), u64::MAX, u64::MAX, u64::MAX);
        assert!(!b.check_now());
        tok.cancel();
        let mut stopped = false;
        for _ in 0..=TICK_INTERVAL {
            if b.checkpoint() {
                stopped = true;
                break;
            }
        }
        assert!(
            stopped,
            "cancellation must surface within one tick interval"
        );
        assert_eq!(b.tripped(), Some(ExhaustReason::Cancelled));
    }

    #[test]
    fn past_deadline_trips_immediately_on_check_now() {
        let b = Budget::new(
            Some(Instant::now() - Duration::from_millis(1)),
            None,
            u64::MAX,
            u64::MAX,
            u64::MAX,
        );
        assert!(b.check_now());
        assert_eq!(b.tripped(), Some(ExhaustReason::Deadline));
    }

    #[test]
    fn first_trip_reason_is_latched() {
        let b = Budget::new(None, None, 10, 0, u64::MAX);
        assert!(b.charge_answer());
        assert_eq!(b.tripped(), Some(ExhaustReason::AnswerBudget));
        assert!(b.charge_postings(100));
        assert_eq!(b.tripped(), Some(ExhaustReason::AnswerBudget));
    }

    #[test]
    fn postings_cap_allows_exactly_the_budget() {
        let b = Budget::new(None, None, 10, u64::MAX, u64::MAX);
        assert!(!b.charge_postings(10));
        assert!(b.charge_postings(1));
        assert_eq!(b.tripped(), Some(ExhaustReason::PostingsBudget));
    }
}
