//! Full-text evaluation with most-specific-element semantics.
//!
//! Following the paper's implementation note (Section 5.1: *"we use the same
//! techniques as in [20, 29] that return the most specific elements that
//! satisfy the full-text expression"*), evaluation returns the *minimal*
//! elements whose subtree satisfies the expression — no returned element
//! has a descendant that also satisfies it. Scores are tf-idf with an
//! XRANK-style per-level decay (tokens found deeper below the scored element
//! contribute less), normalized so the best match scores `1.0`.
//!
//! ## Negation safety
//!
//! Evaluation requires at least one positive term
//! ([`FtExpr::has_positive_term`]); `Not` is *safe* only inside a
//! conjunction that has a positive conjunct ([`FtExpr::is_safe`]) — a
//! disjunctive negation has no finite witness set at element granularity.

use crate::budget::Budget;
use crate::ftexpr::FtExpr;
use crate::index::InvertedIndex;
use flexpath_xmldom::{Document, NodeId, Sym};
use std::collections::BTreeSet;

/// Score decay per level of depth between the direct holder of a token and
/// the element being scored (XRANK's hyperlink-style dampening).
const LEVEL_DECAY: f64 = 0.8;

/// How match scores are computed before normalization.
///
/// The paper treats the IR engine's scoring as a black box returning
/// normalized `(node, score)` pairs, so any model respecting that contract
/// plugs in. Two classics are provided.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScoringModel {
    /// `Σ idf · (1 + ln tf) · decay^depth` — the XRANK-flavoured default
    /// (deeper witnesses contribute less to an ancestor's score).
    TfIdfDecay {
        /// Per-level dampening factor in `(0, 1]`.
        decay: f64,
    },
    /// Okapi BM25 over element subtrees: term frequency saturates with `k1`
    /// and is normalized by subtree length against the average element
    /// length with `b`.
    Bm25 {
        /// Saturation parameter (classic default 1.2).
        k1: f64,
        /// Length-normalization strength in `[0, 1]` (classic default 0.75).
        b: f64,
    },
}

impl Default for ScoringModel {
    fn default() -> Self {
        ScoringModel::TfIdfDecay { decay: LEVEL_DECAY }
    }
}

impl ScoringModel {
    /// The classic BM25 parameterization.
    pub fn bm25() -> Self {
        ScoringModel::Bm25 { k1: 1.2, b: 0.75 }
    }
}

impl FtExpr {
    /// Whether negation only occurs beneath a conjunction that also has a
    /// positive conjunct (the fragment [`InvertedIndex::evaluate`] computes
    /// exactly).
    pub fn is_safe(&self) -> bool {
        fn check(e: &FtExpr, guarded: bool) -> bool {
            match e {
                FtExpr::Term(_) | FtExpr::Phrase(_) | FtExpr::Window { .. } => true,
                FtExpr::And(xs) => {
                    let has_positive = xs.iter().any(FtExpr::has_positive_term);
                    xs.iter().all(|x| check(x, has_positive))
                }
                FtExpr::Or(xs) => xs.iter().all(|x| x.has_positive_term() && check(x, false)),
                FtExpr::Not(inner) => guarded && check(inner, false),
            }
        }
        self.has_positive_term() && check(self, false)
    }
}

/// The result of evaluating one [`FtExpr`] against one document: the ranked
/// `(node, score)` contract FleXPath expects from its IR engine.
#[derive(Debug, Clone)]
pub struct FtEval {
    /// Most-specific satisfying elements in ascending id (document) order,
    /// with scores normalized to `(0, 1]`.
    matches: Vec<(NodeId, f64)>,
}

impl FtEval {
    /// An evaluation with no matches.
    pub fn empty() -> Self {
        FtEval {
            matches: Vec::new(),
        }
    }

    /// Most-specific matches in document order.
    pub fn matches(&self) -> &[(NodeId, f64)] {
        &self.matches
    }

    /// Matches sorted by descending score (the IR engine's ranked list).
    pub fn ranked(&self) -> Vec<(NodeId, f64)> {
        let mut out = self.matches.clone();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Number of most-specific matches.
    pub fn len(&self) -> usize {
        self.matches.len()
    }

    /// Whether nothing matched.
    pub fn is_empty(&self) -> bool {
        self.matches.is_empty()
    }

    /// Does the subtree rooted at `n` satisfy the expression?
    ///
    /// O(log m): a subtree is a contiguous id range and matches are sorted.
    pub fn satisfies(&self, doc: &Document, n: NodeId) -> bool {
        let last = doc.subtree_last(n);
        let lo = self.matches.partition_point(|(m, _)| *m < n);
        lo < self.matches.len() && self.matches[lo].0 <= last
    }

    /// Keyword score of context node `n`: the best match score within its
    /// subtree (`0.0` when the subtree does not satisfy the expression).
    pub fn score(&self, doc: &Document, n: NodeId) -> f64 {
        let last = doc.subtree_last(n);
        let lo = self.matches.partition_point(|(m, _)| *m < n);
        let hi = self.matches.partition_point(|(m, _)| *m <= last);
        self.matches[lo..hi]
            .iter()
            .map(|(_, s)| *s)
            .fold(0.0, f64::max)
    }

    /// `#contains(tag, expr)`: how many elements with `tag` satisfy the
    /// expression (the count FleXPath's contains-promotion penalty uses).
    pub fn count_for_tag(&self, doc: &Document, tag: Sym) -> u64 {
        doc.nodes_with_tag(tag)
            .iter()
            .filter(|&&n| self.satisfies(doc, n))
            .count() as u64
    }
}

/// A positive atom (term / phrase / window) compiled against the index.
struct Atom {
    /// Elements whose direct text satisfies the atom, ascending id, with
    /// the atom's term frequency there.
    holders: Vec<(NodeId, u32)>,
    /// idf weight of the atom.
    idf: f64,
    /// Whether the atom occurs under a `Not` (satisfaction only, no score).
    scoring: bool,
}

impl Atom {
    fn any_in_range(&self, from: NodeId, to: NodeId) -> bool {
        let lo = self.holders.partition_point(|(n, _)| *n < from);
        lo < self.holders.len() && self.holders[lo].0 <= to
    }
}

enum Compiled {
    Atom(usize),
    And(Vec<Compiled>),
    Or(Vec<Compiled>),
    Not(Box<Compiled>),
}

impl InvertedIndex {
    /// Evaluates `expr`, returning the most-specific satisfying elements
    /// with normalized scores under the default scoring model. Returns
    /// [`FtEval::empty`] for expressions without positive terms.
    pub fn evaluate(&self, doc: &Document, expr: &FtExpr) -> FtEval {
        self.evaluate_with(doc, expr, ScoringModel::default())
    }

    /// [`evaluate`](Self::evaluate) with an explicit [`ScoringModel`].
    /// Satisfaction (which elements match) is model-independent; only the
    /// scores differ.
    pub fn evaluate_with(&self, doc: &Document, expr: &FtExpr, model: ScoringModel) -> FtEval {
        self.evaluate_budgeted(doc, expr, model, &Budget::unlimited())
    }

    /// [`evaluate_with`](Self::evaluate_with) under a resource [`Budget`].
    ///
    /// Charges the postings each compiled atom scans and checkpoints the
    /// candidate and scoring loops. When the budget trips mid-evaluation
    /// the result is a *best-effort partial* evaluation — a document-order
    /// subset of the most-specific matches (possibly empty), normalized
    /// over what was scored. Callers must not cache a tripped evaluation:
    /// check [`Budget::tripped`] afterwards.
    pub fn evaluate_budgeted(
        &self,
        doc: &Document,
        expr: &FtExpr,
        model: ScoringModel,
        budget: &Budget,
    ) -> FtEval {
        if !expr.has_positive_term() {
            return FtEval::empty();
        }
        let mut atoms = Vec::new();
        let compiled = self.compile(expr, true, &mut atoms);
        for atom in &atoms {
            if budget.charge_postings(atom.holders.len() as u64) {
                return FtEval::empty();
            }
        }

        // Candidate universe: ancestors-or-self of every holder of every
        // atom — for safe expressions any satisfying element must contain a
        // positive witness.
        let mut universe: BTreeSet<NodeId> = BTreeSet::new();
        for atom in &atoms {
            for &(holder, _) in &atom.holders {
                if budget.checkpoint() {
                    return FtEval::empty();
                }
                if universe.insert(holder) {
                    for anc in doc.ancestors(holder) {
                        if !universe.insert(anc) {
                            break; // ancestors already recorded
                        }
                    }
                }
            }
        }

        let mut satisfying: Vec<NodeId> = Vec::new();
        for e in universe {
            if budget.checkpoint() {
                return FtEval::empty();
            }
            if sat(&compiled, &atoms, e, doc.subtree_last(e)) {
                satisfying.push(e);
            }
        }
        satisfying.sort_unstable();

        // Most-specific filter: ids in a subtree are contiguous, so a
        // candidate has a satisfying descendant iff the *next* candidate
        // falls inside its range.
        let mut specific: Vec<NodeId> = Vec::new();
        // lint:allow(governor): linear pass over candidates that were each
        // already checkpoint-charged when `satisfying` was built above.
        for (i, &e) in satisfying.iter().enumerate() {
            let has_inner = satisfying
                .get(i + 1)
                .map(|&next| next <= doc.subtree_last(e))
                .unwrap_or(false);
            if !has_inner {
                specific.push(e);
            }
        }

        // Model-dependent scoring, then normalization to (0, 1].
        let avgdl = self.avg_element_length().max(1.0);
        let mut matches: Vec<(NodeId, f64)> = Vec::with_capacity(specific.len());
        for e in specific {
            if budget.checkpoint() {
                // Keep the scored document-order prefix as the partial
                // result; the caller sees the trip via the budget.
                break;
            }
            let last = doc.subtree_last(e);
            let elevel = doc.level(e) as i64;
            let mut score = 0.0;
            // lint:allow(governor): per-query atom count; the enclosing
            // per-candidate loop checkpoints the budget.
            for atom in &atoms {
                if !atom.scoring {
                    continue;
                }
                let lo = atom.holders.partition_point(|(n, _)| *n < e);
                let hi = atom.holders.partition_point(|(n, _)| *n <= last);
                match model {
                    ScoringModel::TfIdfDecay { decay } => {
                        // lint:allow(governor): holders were charged to the
                        // postings meter at the compile boundary.
                        for &(holder, tf) in &atom.holders[lo..hi] {
                            let depth = (doc.level(holder) as i64 - elevel).max(0) as i32;
                            score += atom.idf * (1.0 + f64::from(tf).ln()) * decay.powi(depth);
                        }
                    }
                    ScoringModel::Bm25 { k1, b } => {
                        let tf: f64 = atom.holders[lo..hi]
                            .iter()
                            .map(|&(_, tf)| f64::from(tf))
                            .sum();
                        if tf > 0.0 {
                            let dl = self.subtree_token_count(doc, e) as f64;
                            let norm = k1 * (1.0 - b + b * dl / avgdl);
                            score += atom.idf * (tf * (k1 + 1.0)) / (tf + norm);
                        }
                    }
                }
            }
            matches.push((e, score));
        }
        let max = matches.iter().map(|(_, s)| *s).fold(0.0, f64::max);
        if max > 0.0 {
            for (_, s) in &mut matches {
                *s /= max;
            }
        } else {
            // Degenerate (e.g. satisfaction through Not only): uniform score.
            for (_, s) in &mut matches {
                *s = 1.0;
            }
        }
        FtEval { matches }
    }

    fn compile(&self, expr: &FtExpr, scoring: bool, atoms: &mut Vec<Atom>) -> Compiled {
        match expr {
            FtExpr::Term(t) => {
                let holders = self
                    .posting(t)
                    .map(|p| p.entries.iter().map(|e| (e.node, e.tf())).collect())
                    .unwrap_or_default();
                atoms.push(Atom {
                    holders,
                    idf: self.idf(t),
                    scoring,
                });
                Compiled::Atom(atoms.len() - 1)
            }
            FtExpr::Phrase(terms) => {
                let holders = self.phrase_holders(terms);
                let idf = terms.iter().map(|t| self.idf(t)).sum();
                atoms.push(Atom {
                    holders,
                    idf,
                    scoring,
                });
                Compiled::Atom(atoms.len() - 1)
            }
            FtExpr::Window { terms, window } => {
                let holders = self.window_holders(terms, *window);
                let idf = terms.iter().map(|t| self.idf(t)).sum();
                atoms.push(Atom {
                    holders,
                    idf,
                    scoring,
                });
                Compiled::Atom(atoms.len() - 1)
            }
            FtExpr::And(xs) => {
                Compiled::And(xs.iter().map(|x| self.compile(x, scoring, atoms)).collect())
            }
            FtExpr::Or(xs) => {
                Compiled::Or(xs.iter().map(|x| self.compile(x, scoring, atoms)).collect())
            }
            FtExpr::Not(inner) => Compiled::Not(Box::new(self.compile(inner, false, atoms))),
        }
    }

    /// Elements whose direct text contains the terms at consecutive
    /// positions, with the number of phrase occurrences.
    fn phrase_holders(&self, terms: &[String]) -> Vec<(NodeId, u32)> {
        if terms.is_empty() {
            return Vec::new();
        }
        if terms.len() == 1 {
            return self
                .posting(&terms[0])
                .map(|p| p.entries.iter().map(|e| (e.node, e.tf())).collect())
                .unwrap_or_default();
        }
        let Some(first) = self.posting(&terms[0]) else {
            return Vec::new();
        };
        let rest: Option<Vec<_>> = terms[1..].iter().map(|t| self.posting(t)).collect();
        let Some(rest) = rest else {
            return Vec::new();
        };
        let mut out = Vec::new();
        // lint:allow(governor): the holders produced here are charged to the
        // postings meter by `evaluate` right after compile returns.
        for entry in &first.entries {
            // Locate the same element in every other posting list.
            let followers: Option<Vec<&[u32]>> = rest
                .iter()
                .map(|p| {
                    let i = p.lower_bound(entry.node);
                    p.entries
                        .get(i)
                        .filter(|e| e.node == entry.node)
                        .map(|e| e.positions.as_slice())
                })
                .collect();
            let Some(followers) = followers else { continue };
            let mut occurrences = 0u32;
            // lint:allow(governor): position-list walk inside one postings
            // entry; the entry itself is charged via the postings meter.
            for &start in &entry.positions {
                let chained = followers
                    .iter()
                    .enumerate()
                    .all(|(k, pos)| pos.binary_search(&(start + 1 + k as u32)).is_ok());
                if chained {
                    occurrences += 1;
                }
            }
            if occurrences > 0 {
                out.push((entry.node, occurrences));
            }
        }
        out
    }

    /// Elements whose direct text contains every term within a positional
    /// window of `window` tokens.
    fn window_holders(&self, terms: &[String], window: u32) -> Vec<(NodeId, u32)> {
        if terms.is_empty() {
            return Vec::new();
        }
        let postings: Option<Vec<_>> = terms.iter().map(|t| self.posting(t)).collect();
        let Some(postings) = postings else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for entry in &postings[0].entries {
            let per_term: Option<Vec<&[u32]>> = postings
                .iter()
                .map(|p| {
                    let i = p.lower_bound(entry.node);
                    p.entries
                        .get(i)
                        .filter(|e| e.node == entry.node)
                        .map(|e| e.positions.as_slice())
                })
                .collect();
            let Some(per_term) = per_term else { continue };
            // Sliding window over the merged position stream: does any span
            // of width < window cover all terms?
            let mut merged: Vec<(u32, usize)> = Vec::new();
            for (k, positions) in per_term.iter().enumerate() {
                merged.extend(positions.iter().map(|&p| (p, k)));
            }
            merged.sort_unstable();
            let mut counts = vec![0u32; terms.len()];
            let mut covered = 0usize;
            let mut left = 0usize;
            let mut hit = false;
            // lint:allow(governor): sliding window over one element's merged
            // position stream; holders are charged at the compile boundary.
            for right in 0..merged.len() {
                let (rp, rk) = merged[right];
                counts[rk] += 1;
                if counts[rk] == 1 {
                    covered += 1;
                }
                while rp - merged[left].0 >= window {
                    let (_, lk) = merged[left];
                    counts[lk] -= 1;
                    if counts[lk] == 0 {
                        covered -= 1;
                    }
                    left += 1;
                }
                if covered == terms.len() {
                    hit = true;
                    break;
                }
            }
            if hit {
                out.push((entry.node, 1));
            }
        }
        out
    }
}

fn sat(c: &Compiled, atoms: &[Atom], from: NodeId, to: NodeId) -> bool {
    match c {
        Compiled::Atom(i) => atoms[*i].any_in_range(from, to),
        Compiled::And(xs) => xs.iter().all(|x| sat(x, atoms, from, to)),
        Compiled::Or(xs) => xs.iter().any(|x| sat(x, atoms, from, to)),
        Compiled::Not(inner) => !sat(inner, atoms, from, to),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexpath_xmldom::parse;

    fn eval(xml: &str, query: &str) -> (Document, FtEval) {
        let doc = parse(xml).unwrap();
        let idx = InvertedIndex::build(&doc);
        let expr = FtExpr::parse(query).unwrap();
        let ev = idx.evaluate(&doc, &expr);
        (doc, ev)
    }

    #[test]
    fn single_term_matches_direct_holder() {
        let (doc, ev) = eval("<a><b>gold coin</b><c>silver</c></a>", "\"gold\"");
        let b = doc.nodes_with_tag_name("b")[0];
        assert_eq!(ev.len(), 1);
        assert_eq!(ev.matches()[0].0, b);
        assert_eq!(ev.matches()[0].1, 1.0);
    }

    #[test]
    fn conjunction_returns_most_specific_common_container() {
        // "xml" in one paragraph, "streaming" in a sibling — the most
        // specific element whose subtree has both is the section.
        let (doc, ev) = eval(
            "<article><section><p>XML data</p><p>streaming queries</p></section></article>",
            "\"XML\" and \"streaming\"",
        );
        let section = doc.nodes_with_tag_name("section")[0];
        assert_eq!(ev.len(), 1);
        assert_eq!(ev.matches()[0].0, section);
    }

    #[test]
    fn most_specific_filter_prefers_descendants() {
        // Both words inside one paragraph: the paragraph wins, not the
        // section or article.
        let (doc, ev) = eval(
            "<article><section><p>XML streaming</p></section></article>",
            "\"XML\" and \"streaming\"",
        );
        let p = doc.nodes_with_tag_name("p")[0];
        assert_eq!(ev.matches(), &[(p, 1.0)]);
    }

    #[test]
    fn satisfies_propagates_to_ancestors_only() {
        let (doc, ev) = eval(
            "<article><section><p>XML streaming</p></section><other>nothing</other></article>",
            "\"XML\" and \"streaming\"",
        );
        let article = doc.root_element();
        let section = doc.nodes_with_tag_name("section")[0];
        let p = doc.nodes_with_tag_name("p")[0];
        let other = doc.nodes_with_tag_name("other")[0];
        for n in [article, section, p] {
            assert!(ev.satisfies(&doc, n), "{n} should satisfy");
        }
        assert!(!ev.satisfies(&doc, other));
        // The closure inference rule: ancestors score at least... scores are
        // the max within subtree, so ancestors inherit the best descendant.
        assert!(ev.score(&doc, article) >= ev.score(&doc, p) - 1e-12);
        assert_eq!(ev.score(&doc, other), 0.0);
    }

    #[test]
    fn or_matches_either_side() {
        let (doc, ev) = eval(
            "<r><a>gold</a><b>silver</b><c>copper</c></r>",
            "\"gold\" or \"silver\"",
        );
        let ids: Vec<NodeId> = ev.matches().iter().map(|(n, _)| *n).collect();
        let a = doc.nodes_with_tag_name("a")[0];
        let b = doc.nodes_with_tag_name("b")[0];
        assert_eq!(ids, vec![a, b]);
    }

    #[test]
    fn negation_filters_in_conjunctions() {
        let (doc, ev) = eval(
            "<r><a>gold ring</a><b>gold plated ring</b></r>",
            "\"gold\" and not \"plated\"",
        );
        let a = doc.nodes_with_tag_name("a")[0];
        assert_eq!(ev.matches().len(), 1);
        assert_eq!(ev.matches()[0].0, a);
        // <r> is not a match: its subtree contains "plated".
        assert!(!ev.satisfies(&doc, doc.root_element()) || ev.matches()[0].0 != doc.root_element());
    }

    #[test]
    fn phrase_requires_adjacency_in_one_element() {
        let (doc, ev) = eval(
            "<r><a>vintage gold coin</a><b>gold vintage coin</b><c>vintage <i>gap</i> gold</c></r>",
            "\"vintage gold\"",
        );
        let a = doc.nodes_with_tag_name("a")[0];
        assert_eq!(ev.matches().len(), 1);
        assert_eq!(ev.matches()[0].0, a);
    }

    #[test]
    fn window_allows_bounded_gap() {
        let doc =
            parse("<r><a>gold one two silver</a><b>gold one two three four five silver</b></r>")
                .unwrap();
        let idx = InvertedIndex::build(&doc);
        let near = FtExpr::Window {
            terms: vec!["gold".into(), "silver".into()],
            window: 4,
        };
        let ev = idx.evaluate(&doc, &near);
        let a = doc.nodes_with_tag_name("a")[0];
        assert_eq!(ev.matches().len(), 1);
        assert_eq!(ev.matches()[0].0, a);
    }

    #[test]
    fn scores_are_normalized_and_tf_sensitive() {
        let (doc, ev) = eval("<r><a>gold gold gold</a><b>gold</b></r>", "\"gold\"");
        let a = doc.nodes_with_tag_name("a")[0];
        let b = doc.nodes_with_tag_name("b")[0];
        let score = |n: NodeId| {
            ev.matches()
                .iter()
                .find(|(m, _)| *m == n)
                .map(|(_, s)| *s)
                .unwrap()
        };
        assert_eq!(score(a), 1.0);
        assert!(score(b) < 1.0 && score(b) > 0.0);
        for (_, s) in ev.matches() {
            assert!((0.0..=1.0).contains(s));
        }
        let _ = doc;
    }

    #[test]
    fn ranked_is_descending() {
        let (_, ev) = eval(
            "<r><a>gold gold</a><b>gold</b><c>gold gold gold</c></r>",
            "\"gold\"",
        );
        let ranked = ev.ranked();
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert_eq!(ranked[0].1, 1.0);
    }

    #[test]
    fn count_for_tag_counts_satisfying_subtrees() {
        let (doc, ev) = eval(
            "<r><s><p>xml streaming</p></s><s><p>xml only</p></s><s><p>streaming only</p></s></r>",
            "\"xml\" and \"streaming\"",
        );
        let s = doc.symbols().lookup("s").unwrap();
        let p = doc.symbols().lookup("p").unwrap();
        let r = doc.symbols().lookup("r").unwrap();
        assert_eq!(ev.count_for_tag(&doc, s), 1);
        assert_eq!(ev.count_for_tag(&doc, p), 1);
        assert_eq!(ev.count_for_tag(&doc, r), 1);
    }

    #[test]
    fn no_match_yields_empty_eval() {
        let (doc, ev) = eval("<r><a>gold</a></r>", "\"platinum\"");
        assert!(ev.is_empty());
        assert!(!ev.satisfies(&doc, doc.root_element()));
        assert_eq!(ev.score(&doc, doc.root_element()), 0.0);
    }

    #[test]
    fn stemming_unifies_query_and_document_forms() {
        let (doc, ev) = eval(
            "<r><a>streaming algorithms</a></r>",
            "\"streams\" and \"algorithm\"",
        );
        assert_eq!(ev.len(), 1);
        assert_eq!(ev.matches()[0].0, doc.nodes_with_tag_name("a")[0]);
    }

    #[test]
    fn safety_classification() {
        assert!(FtExpr::parse("\"a1\" and not \"b1\"").unwrap().is_safe());
        assert!(FtExpr::parse("\"a1\" or \"b1\"").unwrap().is_safe());
        let not_only = FtExpr::Not(Box::new(FtExpr::term("a1")));
        assert!(!not_only.is_safe());
        let or_with_not = FtExpr::Or(vec![FtExpr::term("a1"), not_only.clone()]);
        assert!(!or_with_not.is_safe());
    }

    #[test]
    fn bm25_and_tfidf_agree_on_satisfaction() {
        let doc =
            parse("<r><a>gold gold gold</a><b>gold</b><c><d>gold coin</d>filler filler</c></r>")
                .unwrap();
        let idx = InvertedIndex::build(&doc);
        let expr = FtExpr::term("gold");
        let tfidf = idx.evaluate_with(&doc, &expr, ScoringModel::default());
        let bm25 = idx.evaluate_with(&doc, &expr, ScoringModel::bm25());
        let nodes = |e: &FtEval| e.matches().iter().map(|(n, _)| *n).collect::<Vec<_>>();
        assert_eq!(nodes(&tfidf), nodes(&bm25));
        for n in doc.elements() {
            assert_eq!(tfidf.satisfies(&doc, n), bm25.satisfies(&doc, n));
        }
    }

    #[test]
    fn bm25_saturates_term_frequency() {
        // Under BM25, tf 100 vs tf 1 differs far less than 100×.
        let many = "gold ".repeat(100);
        let xml = format!("<r><a>{many}</a><b>gold</b></r>");
        let doc = parse(&xml).unwrap();
        let idx = InvertedIndex::build(&doc);
        let ev = idx.evaluate_with(&doc, &FtExpr::term("gold"), ScoringModel::bm25());
        let a = doc.nodes_with_tag_name("a")[0];
        let b = doc.nodes_with_tag_name("b")[0];
        let score = |n| ev.matches().iter().find(|(m, _)| *m == n).unwrap().1;
        assert_eq!(score(a), 1.0);
        assert!(
            score(b) > 0.3,
            "BM25 saturation keeps tf=1 competitive: {}",
            score(b)
        );
    }

    #[test]
    fn bm25_penalizes_long_elements() {
        // Same tf, different lengths: the shorter element scores higher.
        let filler = "filler ".repeat(60);
        let xml = format!("<r><short>gold coin</short><long>gold {filler}</long></r>");
        let doc = parse(&xml).unwrap();
        let idx = InvertedIndex::build(&doc);
        let ev = idx.evaluate_with(&doc, &FtExpr::term("gold"), ScoringModel::bm25());
        let short = doc.nodes_with_tag_name("short")[0];
        let long = doc.nodes_with_tag_name("long")[0];
        let score = |n| ev.matches().iter().find(|(m, _)| *m == n).unwrap().1;
        assert!(
            score(short) > score(long),
            "length normalization must favour the short element"
        );
    }

    #[test]
    fn token_counts_back_bm25_lengths() {
        let doc = parse("<r><a>one two <b>three</b></a>four</r>").unwrap();
        let idx = InvertedIndex::build(&doc);
        let r = doc.root_element();
        let a = doc.nodes_with_tag_name("a")[0];
        let b = doc.nodes_with_tag_name("b")[0];
        assert_eq!(idx.direct_token_count(r), 1); // "four"
        assert_eq!(idx.direct_token_count(a), 2);
        assert_eq!(idx.direct_token_count(b), 1);
        assert_eq!(idx.subtree_token_count(&doc, r), 4);
        assert_eq!(idx.subtree_token_count(&doc, a), 3);
        assert!(idx.avg_element_length() > 0.0);
    }

    #[test]
    fn deep_nesting_scores_decay() {
        let (doc, ev) = eval(
            "<r><shallow>gold</shallow><deep><l1><l2><l3>gold</l3></l2></l1></deep></r>",
            "\"gold\"",
        );
        // Both leaves are most-specific matches with the same tf; direct
        // holders score equally (decay applies relative to the match, which
        // *is* the holder here) — so both are 1.0.
        assert_eq!(ev.len(), 2);
        assert!(ev.matches().iter().all(|(_, s)| *s == 1.0));
        // But the *root*'s score sees the shallow one at less decay; the
        // max-based context score is still positive.
        assert!(ev.score(&doc, doc.root_element()) > 0.0);
    }
}
