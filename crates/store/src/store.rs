//! Writing ([`StoreBuilder`]) and reading ([`CorpusStore`]) one document's
//! persistent image.
//!
//! A store file bundles everything [`flexpath_engine::EngineContext`]
//! needs, so opening one skips XML parsing, statistics collection, and
//! index construction entirely — the cold-start elimination this
//! subsystem exists for. Loading charges the governor [`Budget`]
//! (memory for the file bytes, postings for the index entries) *before*
//! decoding the expensive sections, and emits `engine.store.*` metrics
//! plus a `store.open` trace span retrievable from the loaded store.

use crate::error::StoreError;
use crate::format::{self, SectionId};
use flexpath_engine::metrics::{self, TraceSpan};
use flexpath_engine::Budget;
use flexpath_ftsearch::InvertedIndex;
use flexpath_xmldom::codec::{
    decode_document, decode_stats, encode_nodes, encode_stats, encode_symbols,
};
use flexpath_xmldom::wire::{ByteReader, ByteWriter};
use flexpath_xmldom::{CodecError, DocStats, Document};
use std::path::Path;
use std::time::Instant;

/// Summary fields stored in the `meta` section — readable without
/// decoding any payload (this is what [`crate::Catalog::list`] shows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreMeta {
    /// Logical document name (catalog key).
    pub name: String,
    /// Node count of the stored document.
    pub nodes: u64,
    /// Distinct indexed terms.
    pub terms: u64,
    /// Total posting entries (what the budget charges at load).
    pub posting_entries: u64,
}

impl StoreMeta {
    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(32 + self.name.len());
        w.str(&self.name);
        w.u64(self.nodes);
        w.u64(self.terms);
        w.u64(self.posting_entries);
        w.into_bytes()
    }

    pub(crate) fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        let mut r = ByteReader::new(bytes);
        let name = r.str()?.to_string();
        let nodes = r.u64()?;
        let terms = r.u64()?;
        let posting_entries = r.u64()?;
        r.expect_exhausted()?;
        Ok(StoreMeta {
            name,
            nodes,
            terms,
            posting_entries,
        })
    }
}

/// Serializes one document (plus statistics and inverted index) into the
/// store format.
///
/// Output bytes are deterministic: the same inputs always produce the
/// same file, which the golden-file drift check under `tests/golden/`
/// relies on.
#[derive(Debug)]
pub struct StoreBuilder {
    meta: StoreMeta,
    sections: Vec<(SectionId, Vec<u8>)>,
    version: u32,
}

impl StoreBuilder {
    /// Encodes `doc`, `stats`, and `index` under the logical name `name`.
    /// Writes the current [`format::FORMAT_VERSION`] (v2, aligned) unless
    /// [`StoreBuilder::with_version`] overrides it.
    pub fn from_parts(name: &str, doc: &Document, stats: &DocStats, index: &InvertedIndex) -> Self {
        let (terms, postings) = index.encode();
        let meta = StoreMeta {
            name: name.to_string(),
            nodes: doc.node_count() as u64,
            terms: index.term_count() as u64,
            posting_entries: index.posting_entry_count(),
        };
        let sections = vec![
            (SectionId::Meta, meta.encode()),
            (SectionId::Tags, encode_symbols(doc.symbols())),
            (SectionId::Elems, encode_nodes(doc)),
            (SectionId::Stats, encode_stats(stats)),
            (SectionId::Terms, terms),
            (SectionId::Postings, postings),
        ];
        StoreBuilder {
            meta,
            sections,
            version: format::FORMAT_VERSION,
        }
    }

    /// Selects the container version to write — v1 (dense, eager-only) or
    /// v2 (aligned, lazily openable). Compatibility tests and the v1
    /// golden file use this; normal callers keep the default.
    pub fn with_version(mut self, version: u32) -> Result<Self, StoreError> {
        if !(format::FORMAT_V1..=format::FORMAT_VERSION).contains(&version) {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: format::FORMAT_VERSION,
            });
        }
        self.version = version;
        Ok(self)
    }

    /// The meta fields this builder will write.
    pub fn meta(&self) -> &StoreMeta {
        &self.meta
    }

    /// The container version this builder will write.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Serializes the full store file to a byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        format::assemble(&self.sections, self.version)
    }

    /// Writes the store to `path` atomically (temp file + rename), creating
    /// parent directories as needed. Returns the number of bytes written.
    pub fn write_to(&self, path: &Path) -> Result<u64, StoreError> {
        let start = Instant::now();
        let bytes = self.to_bytes();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        // Write to a sibling temp file first so readers never observe a
        // half-written store; rename is atomic on POSIX filesystems.
        let tmp = path.with_extension("fxs.tmp");
        std::fs::write(&tmp, &bytes)?;
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(StoreError::Io(e));
        }
        let m = metrics::global();
        m.add("engine.store.saves", 1);
        m.add("engine.store.bytes_written", bytes.len() as u64);
        m.observe_duration("engine.store.save", start.elapsed());
        Ok(bytes.len() as u64)
    }
}

/// A fully loaded store: the document, its statistics, and its inverted
/// index, ready to back an engine context without any parsing.
#[derive(Debug)]
pub struct CorpusStore {
    meta: StoreMeta,
    doc: Document,
    stats: DocStats,
    index: InvertedIndex,
    load_span: TraceSpan,
}

impl CorpusStore {
    /// Opens and fully validates the store at `path` with no budget.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        Self::open_budgeted(path, &Budget::unlimited())
    }

    /// Opens the store at `path`, charging `budget` for the load: the
    /// file's size against the memory cap (before decode) and the posting
    /// entry count against the postings cap. A tripped budget aborts the
    /// load with [`StoreError::Budget`].
    pub fn open_budgeted(path: &Path, budget: &Budget) -> Result<Self, StoreError> {
        let start = Instant::now();
        let m = metrics::global();
        let bytes = std::fs::read(path)?;
        let result = Self::from_bytes(&bytes, budget);
        match result {
            Ok(mut store) => {
                let elapsed = start.elapsed();
                store.load_span.duration = elapsed;
                m.add("engine.store.opens", 1);
                m.add("engine.store.bytes_read", bytes.len() as u64);
                m.observe_duration("engine.store.open", elapsed);
                Ok(store)
            }
            Err(e) => {
                m.add("engine.store.open_errors", 1);
                Err(e)
            }
        }
    }

    /// Decodes a store image from memory (the open path minus the I/O).
    /// Reads both container versions; always eager — every section is
    /// CRC-verified and decoded here. The lazy alternative is
    /// [`crate::LazyStore`].
    pub fn from_bytes(bytes: &[u8], budget: &Budget) -> Result<Self, StoreError> {
        let header = format::parse_header(bytes)?;
        let entries = header.entries;
        let meta = StoreMeta::decode(format::section(bytes, &entries, SectionId::Meta)?)?;
        // Charge the budget up front, before any expensive decoding: the
        // resident cost of the load is roughly the file size, and the
        // postings cap bounds how large an index a query session accepts.
        if budget.charge_memory(bytes.len() as u64) || budget.charge_postings(meta.posting_entries)
        {
            let reason = budget
                .tripped()
                .unwrap_or(flexpath_engine::ExhaustReason::MemoryBudget);
            return Err(StoreError::Budget(reason));
        }
        let tags = format::section(bytes, &entries, SectionId::Tags)?;
        let elems = format::section(bytes, &entries, SectionId::Elems)?;
        let doc = decode_document(tags, elems)?;
        if doc.node_count() as u64 != meta.nodes {
            return Err(StoreError::Corrupt(CodecError::Invalid {
                what: "meta node count disagrees with element table",
                index: meta.nodes,
            }));
        }
        let stats = decode_stats(
            format::section(bytes, &entries, SectionId::Stats)?,
            doc.symbols().len(),
        )?;
        let index = InvertedIndex::decode(
            format::section(bytes, &entries, SectionId::Terms)?,
            format::section(bytes, &entries, SectionId::Postings)?,
            doc.node_count(),
        )?;
        if index.posting_entry_count() != meta.posting_entries
            || index.term_count() as u64 != meta.terms
        {
            return Err(StoreError::Corrupt(CodecError::Invalid {
                what: "meta index counts disagree with postings",
                index: meta.posting_entries,
            }));
        }
        let mut load_span = TraceSpan::new("store.open");
        load_span.add("store.bytes", bytes.len() as u64);
        load_span.add("store.version", u64::from(header.version));
        load_span.add("store.nodes", meta.nodes);
        load_span.add("store.terms", meta.terms);
        load_span.add("store.posting_entries", meta.posting_entries);
        Ok(CorpusStore {
            meta,
            doc,
            stats,
            index,
            load_span,
        })
    }

    /// The stored meta fields.
    pub fn meta(&self) -> &StoreMeta {
        &self.meta
    }

    /// Logical document name.
    pub fn name(&self) -> &str {
        &self.meta.name
    }

    /// The decoded document.
    pub fn document(&self) -> &Document {
        &self.doc
    }

    /// The decoded statistics.
    pub fn stats(&self) -> &DocStats {
        &self.stats
    }

    /// The decoded inverted index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The `store.open` trace span (bytes/nodes/terms counters and, for
    /// [`CorpusStore::open`], the wall-clock load time). Kept *separate*
    /// from query traces on purpose: query `counter_fingerprint()`s must
    /// be identical whether a session was parsed or loaded.
    pub fn load_trace(&self) -> &TraceSpan {
        &self.load_span
    }

    /// Consumes the store, yielding `(document, stats, index)` for
    /// engine-context construction.
    pub fn into_parts(self) -> (Document, DocStats, InvertedIndex) {
        (self.doc, self.stats, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexpath_xmldom::parse;

    fn build(xml: &str) -> StoreBuilder {
        let doc = parse(xml).unwrap();
        let stats = DocStats::compute(&doc);
        let index = InvertedIndex::build(&doc);
        StoreBuilder::from_parts("t", &doc, &stats, &index)
    }

    #[test]
    fn memory_roundtrip_preserves_counts() {
        let b = build("<a><b>gold silver</b><c>gold</c></a>");
        let bytes = b.to_bytes();
        let store = CorpusStore::from_bytes(&bytes, &Budget::unlimited()).unwrap();
        assert_eq!(store.name(), "t");
        assert_eq!(store.meta().nodes, store.document().node_count() as u64);
        assert_eq!(store.index().df("gold"), 2);
        assert_eq!(store.stats().element_total(), 3);
        assert_eq!(store.load_trace().name, "store.open");
    }

    #[test]
    fn serialization_is_deterministic() {
        let xml = "<a><b>one two</b><c x=\"1\">three</c></a>";
        assert_eq!(build(xml).to_bytes(), build(xml).to_bytes());
    }

    #[test]
    fn postings_budget_blocks_load() {
        let b = build("<a><b>gold silver</b></a>");
        let bytes = b.to_bytes();
        let budget = Budget::new(None, None, 0, u64::MAX, u64::MAX);
        match CorpusStore::from_bytes(&bytes, &budget) {
            Err(StoreError::Budget(reason)) => {
                assert_eq!(reason, flexpath_engine::ExhaustReason::PostingsBudget)
            }
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn memory_budget_blocks_load() {
        let b = build("<a><b>gold</b></a>");
        let bytes = b.to_bytes();
        let budget = Budget::new(None, None, u64::MAX, u64::MAX, 16);
        assert!(matches!(
            CorpusStore::from_bytes(&bytes, &budget),
            Err(StoreError::Budget(_))
        ));
    }

    #[test]
    fn meta_disagreement_is_corrupt() {
        // Hand-assemble a file whose meta claims the wrong node count but
        // whose CRCs are all valid.
        let doc = parse("<a><b>x1</b></a>").unwrap();
        let stats = DocStats::compute(&doc);
        let index = InvertedIndex::build(&doc);
        let b = StoreBuilder::from_parts("t", &doc, &stats, &index);
        let mut sections = b.sections.clone();
        let meta = StoreMeta {
            nodes: 999,
            ..b.meta.clone()
        };
        sections[0].1 = meta.encode();
        let bytes = format::assemble(&sections, format::FORMAT_VERSION);
        assert!(matches!(
            CorpusStore::from_bytes(&bytes, &Budget::unlimited()),
            Err(StoreError::Corrupt(_))
        ));
    }
}
