//! The container layout: magic, version, and the checksummed section table.
//!
//! ```text
//! offset 0   magic          b"FXPSTORE"                      (8 bytes)
//! offset 8   format version u32 LE                           (4 bytes)
//! offset 12  section count  u32 LE                           (4 bytes)
//! offset 16  section table  count x { id u32, offset u64,
//!                                     len u64, crc32 u32 }   (24 bytes each)
//! ...        header CRC     u32 LE over bytes [0, 16 + 24*count)
//! ...        section payloads, byte-addressed by the table
//! ```
//!
//! Every section carries its own CRC-32, and the header (including the
//! table itself) carries one too, so corruption anywhere in the file maps
//! to a *typed* [`StoreError`] — never an out-of-bounds slice. The version
//! check runs before the header CRC check so that files written by a
//! future format (whose header may be laid out differently) report
//! [`StoreError::UnsupportedVersion`] rather than a checksum failure.

use crate::crc::crc32;
use crate::error::StoreError;
use flexpath_xmldom::wire::{ByteReader, ByteWriter};

/// First eight bytes of every store file.
pub const MAGIC: [u8; 8] = *b"FXPSTORE";

/// The (single) format version this build reads and writes. Bump it on
/// any byte-level change to the container or section payloads — the
/// committed golden file under `tests/golden/` enforces this.
pub const FORMAT_VERSION: u32 = 1;

/// Extension used by [`crate::Catalog`] files.
pub const FILE_EXTENSION: &str = "fxs";

/// Section identifiers (the `id` field of a table entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum SectionId {
    /// Document name and summary counts.
    Meta = 1,
    /// Interned tag/attribute name dictionary.
    Tags = 2,
    /// Node arena with structural labels, text arena, attributes.
    Elems = 3,
    /// `#(t)`, `#pc`, `#ad` occurrence statistics.
    Stats = 4,
    /// Full-text term dictionary and collection stats.
    Terms = 5,
    /// Full-text posting lists.
    Postings = 6,
}

impl SectionId {
    /// Human-readable section name (used in error variants).
    pub fn name(self) -> &'static str {
        match self {
            SectionId::Meta => "meta",
            SectionId::Tags => "tags",
            SectionId::Elems => "elems",
            SectionId::Stats => "stats",
            SectionId::Terms => "terms",
            SectionId::Postings => "postings",
        }
    }
}

/// One parsed entry of the section table.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SectionEntry {
    pub(crate) id: u32,
    pub(crate) offset: u64,
    pub(crate) len: u64,
    pub(crate) crc: u32,
}

const ENTRY_BYTES: usize = 24;
const FIXED_HEADER_BYTES: usize = 16;

/// Serializes a whole store file from `(id, payload)` pairs.
pub(crate) fn assemble(sections: &[(SectionId, Vec<u8>)]) -> Vec<u8> {
    let table_end = FIXED_HEADER_BYTES + sections.len() * ENTRY_BYTES;
    let mut offset = (table_end + 4) as u64; // + header CRC
    let total: usize = sections.iter().map(|(_, p)| p.len()).sum();
    let mut w = ByteWriter::with_capacity(offset as usize + total);
    w.bytes(&MAGIC);
    w.u32(FORMAT_VERSION);
    w.u32(sections.len() as u32);
    for (id, payload) in sections {
        w.u32(*id as u32);
        w.u64(offset);
        w.u64(payload.len() as u64);
        w.u32(crc32(payload));
        offset += payload.len() as u64;
    }
    let mut bytes = w.into_bytes();
    // lint:allow(panic): encode path — table_end is the writer's own length.
    let header_crc = crc32(&bytes[..table_end]);
    bytes.extend_from_slice(&header_crc.to_le_bytes());
    for (_, payload) in sections {
        bytes.extend_from_slice(payload);
    }
    bytes
}

/// Parses and verifies the header, returning the section table.
pub(crate) fn parse_header(bytes: &[u8]) -> Result<Vec<SectionEntry>, StoreError> {
    if bytes.len() < MAGIC.len() {
        return Err(StoreError::Truncated { what: "magic" });
    }
    // lint:allow(panic): both slices guarded by the length check above.
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    // lint:allow(panic): guarded by the same magic-length check.
    let mut r = ByteReader::new(&bytes[MAGIC.len()..]);
    let version = r
        .u32()
        .map_err(|_| StoreError::Truncated { what: "version" })?;
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let count = r.u32().map_err(|_| StoreError::Truncated {
        what: "section count",
    })? as usize;
    let table_end = FIXED_HEADER_BYTES + count * ENTRY_BYTES;
    if bytes.len() < table_end + 4 {
        return Err(StoreError::Truncated {
            what: "section table",
        });
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let id = r.u32().map_err(|_| StoreError::Truncated {
            what: "section table",
        })?;
        let offset = r.u64().map_err(|_| StoreError::Truncated {
            what: "section table",
        })?;
        let len = r.u64().map_err(|_| StoreError::Truncated {
            what: "section table",
        })?;
        let crc = r.u32().map_err(|_| StoreError::Truncated {
            what: "section table",
        })?;
        entries.push(SectionEntry {
            id,
            offset,
            len,
            crc,
        });
    }
    let stored_crc = r.u32().map_err(|_| StoreError::Truncated {
        what: "header checksum",
    })?;
    // lint:allow(panic): `bytes.len() < table_end + 4` was rejected above.
    if crc32(&bytes[..table_end]) != stored_crc {
        return Err(StoreError::ChecksumMismatch { section: "header" });
    }
    Ok(entries)
}

/// Borrows a section's payload after verifying bounds and its CRC.
pub(crate) fn section<'a>(
    bytes: &'a [u8],
    entries: &[SectionEntry],
    id: SectionId,
) -> Result<&'a [u8], StoreError> {
    let entry = entries
        .iter()
        .find(|e| e.id == id as u32)
        .ok_or(StoreError::MissingSection { section: id.name() })?;
    let start = usize::try_from(entry.offset)
        .ok()
        .filter(|&s| s <= bytes.len())
        .ok_or(StoreError::Truncated { what: id.name() })?;
    let len = usize::try_from(entry.len)
        .ok()
        .filter(|&l| l <= bytes.len() - start)
        .ok_or(StoreError::Truncated { what: id.name() })?;
    // lint:allow(panic): start ≤ len(bytes) and len ≤ len(bytes) − start are
    // both enforced by the try_from filters directly above.
    let payload = &bytes[start..start + len];
    if crc32(payload) != entry.crc {
        return Err(StoreError::ChecksumMismatch { section: id.name() });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_then_parse_roundtrips() {
        let file = assemble(&[
            (SectionId::Meta, vec![1, 2, 3]),
            (SectionId::Tags, vec![4, 5]),
        ]);
        let entries = parse_header(&file).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(
            section(&file, &entries, SectionId::Meta).unwrap(),
            &[1, 2, 3]
        );
        assert_eq!(section(&file, &entries, SectionId::Tags).unwrap(), &[4, 5]);
        assert!(matches!(
            section(&file, &entries, SectionId::Stats),
            Err(StoreError::MissingSection { section: "stats" })
        ));
    }

    #[test]
    fn bad_magic_and_future_version_are_typed() {
        let mut file = assemble(&[(SectionId::Meta, vec![])]);
        file[0] ^= 0xff;
        assert!(matches!(parse_header(&file), Err(StoreError::BadMagic)));
        let mut file = assemble(&[(SectionId::Meta, vec![])]);
        file[8] = 0x7f; // version low byte
        assert!(matches!(
            parse_header(&file),
            Err(StoreError::UnsupportedVersion { found: 0x7f, .. })
        ));
    }

    #[test]
    fn header_and_section_corruption_hit_their_crcs() {
        let file = assemble(&[(SectionId::Meta, vec![9; 16])]);
        // Corrupt a table byte: header CRC must catch it.
        let mut bad = file.clone();
        bad[20] ^= 0xff;
        assert!(matches!(
            parse_header(&bad),
            Err(StoreError::ChecksumMismatch { section: "header" })
        ));
        // Corrupt a payload byte: the section CRC must catch it.
        let mut bad = file.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        let entries = parse_header(&bad).unwrap();
        assert!(matches!(
            section(&bad, &entries, SectionId::Meta),
            Err(StoreError::ChecksumMismatch { section: "meta" })
        ));
    }

    #[test]
    fn every_truncation_point_is_typed() {
        let file = assemble(&[(SectionId::Meta, vec![7; 8])]);
        for cut in 0..file.len() {
            let head = &file[..cut];
            match parse_header(head) {
                Err(_) => {}
                Ok(entries) => {
                    // Header happens to fit; the payload must then fail.
                    assert!(section(head, &entries, SectionId::Meta).is_err());
                }
            }
        }
    }
}
