//! The container layout: magic, version, and the checksummed section table.
//!
//! ```text
//! offset 0   magic          b"FXPSTORE"                      (8 bytes)
//! offset 8   format version u32 LE                           (4 bytes)
//! offset 12  section count  u32 LE                           (4 bytes)
//! offset 16  section table  count x { id u32, offset u64,
//!                                     len u64, crc32 u32 }   (24 bytes each)
//! ...        header CRC     u32 LE over bytes [0, 16 + 24*count)
//! ...        section payloads, byte-addressed by the table
//! ```
//!
//! Two versions share this container shape:
//!
//! * **v1** packs payloads back to back immediately after the header CRC.
//!   It is read via the *eager* path only: every section is CRC-verified
//!   and decoded at open.
//! * **v2** places each payload at an 8-byte-aligned offset (gap bytes are
//!   zero). Alignment makes every section directly addressable inside a
//!   memory-mapped file, which is what the lazy open path
//!   ([`crate::LazyStore`]) relies on: the header CRC is verified at open,
//!   but each *section* CRC is deferred until that section is first
//!   touched.
//!
//! Every section carries its own CRC-32, and the header (including the
//! table itself) carries one too, so corruption anywhere in the file maps
//! to a *typed* [`StoreError`] — never an out-of-bounds slice. The version
//! check runs before the header CRC check so that files written by a
//! future format (whose header may be laid out differently) report
//! [`StoreError::UnsupportedVersion`] rather than a checksum failure.

use crate::crc::crc32;
use crate::error::StoreError;
use flexpath_xmldom::wire::{ByteReader, ByteWriter};

/// First eight bytes of every store file.
pub const MAGIC: [u8; 8] = *b"FXPSTORE";

/// The original, unaligned format: payloads packed back to back, decoded
/// eagerly at open. Still fully readable.
pub const FORMAT_V1: u32 = 1;

/// The aligned, mmap-friendly format: payloads at 8-byte-aligned offsets,
/// section CRCs validated lazily on first touch.
pub const FORMAT_V2: u32 = 2;

/// The format version this build *writes* (it reads `1..=FORMAT_VERSION`).
/// Bump it on any byte-level change to the container or section payloads —
/// the committed golden files under `tests/golden/` enforce this.
pub const FORMAT_VERSION: u32 = FORMAT_V2;

/// Extension used by [`crate::Catalog`] files.
pub const FILE_EXTENSION: &str = "fxs";

/// Section payload alignment in v2 files.
pub(crate) const SECTION_ALIGN: u64 = 8;

/// Section identifiers (the `id` field of a table entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum SectionId {
    /// Document name and summary counts.
    Meta = 1,
    /// Interned tag/attribute name dictionary.
    Tags = 2,
    /// Node arena with structural labels, text arena, attributes.
    Elems = 3,
    /// `#(t)`, `#pc`, `#ad` occurrence statistics.
    Stats = 4,
    /// Full-text term dictionary and collection stats.
    Terms = 5,
    /// Full-text posting lists.
    Postings = 6,
}

impl SectionId {
    /// Human-readable section name (used in error variants).
    pub fn name(self) -> &'static str {
        match self {
            SectionId::Meta => "meta",
            SectionId::Tags => "tags",
            SectionId::Elems => "elems",
            SectionId::Stats => "stats",
            SectionId::Terms => "terms",
            SectionId::Postings => "postings",
        }
    }

    /// Maps a raw table id back to a known section, if any.
    pub fn from_raw(id: u32) -> Option<SectionId> {
        match id {
            1 => Some(SectionId::Meta),
            2 => Some(SectionId::Tags),
            3 => Some(SectionId::Elems),
            4 => Some(SectionId::Stats),
            5 => Some(SectionId::Terms),
            6 => Some(SectionId::Postings),
            _ => None,
        }
    }
}

/// One parsed entry of the section table.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SectionEntry {
    pub(crate) id: u32,
    pub(crate) offset: u64,
    pub(crate) len: u64,
    pub(crate) crc: u32,
}

/// A parsed-and-verified header: the file's version plus its section table.
#[derive(Debug, Clone)]
pub(crate) struct ParsedHeader {
    pub(crate) version: u32,
    pub(crate) entries: Vec<SectionEntry>,
}

const ENTRY_BYTES: usize = 24;
const FIXED_HEADER_BYTES: usize = 16;

fn align_up(offset: u64, align: u64) -> u64 {
    offset.div_ceil(align) * align
}

/// Serializes a whole store file from `(id, payload)` pairs in the given
/// format version. v1 packs payloads densely; v2 aligns every payload
/// offset to [`SECTION_ALIGN`] with zero padding in the gaps.
pub(crate) fn assemble(sections: &[(SectionId, Vec<u8>)], version: u32) -> Vec<u8> {
    let table_end = FIXED_HEADER_BYTES + sections.len() * ENTRY_BYTES;
    let payload_base = (table_end + 4) as u64; // + header CRC
    let mut offset = payload_base;
    let mut offsets = Vec::with_capacity(sections.len());
    for (_, payload) in sections {
        if version >= FORMAT_V2 {
            offset = align_up(offset, SECTION_ALIGN);
        }
        offsets.push(offset);
        offset += payload.len() as u64;
    }
    let mut w = ByteWriter::with_capacity(offset as usize);
    w.bytes(&MAGIC);
    w.u32(version);
    w.u32(sections.len() as u32);
    for ((id, payload), &off) in sections.iter().zip(&offsets) {
        w.u32(*id as u32);
        w.u64(off);
        w.u64(payload.len() as u64);
        w.u32(crc32(payload));
    }
    let mut bytes = w.into_bytes();
    // lint:allow(panic): encode path — table_end is the writer's own length.
    let header_crc = crc32(&bytes[..table_end]);
    bytes.extend_from_slice(&header_crc.to_le_bytes());
    for ((_, payload), &off) in sections.iter().zip(&offsets) {
        // Zero padding up to the (possibly aligned) payload offset.
        bytes.resize(off as usize, 0);
        bytes.extend_from_slice(payload);
    }
    bytes
}

/// Parses and verifies the header, returning the version and section table.
pub(crate) fn parse_header(bytes: &[u8]) -> Result<ParsedHeader, StoreError> {
    if bytes.len() < MAGIC.len() {
        return Err(StoreError::Truncated { what: "magic" });
    }
    // lint:allow(panic): both slices guarded by the length check above.
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    // lint:allow(panic): guarded by the same magic-length check.
    let mut r = ByteReader::new(&bytes[MAGIC.len()..]);
    let version = r
        .u32()
        .map_err(|_| StoreError::Truncated { what: "version" })?;
    if !(FORMAT_V1..=FORMAT_VERSION).contains(&version) {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let count = r.u32().map_err(|_| StoreError::Truncated {
        what: "section count",
    })? as usize;
    let table_end = FIXED_HEADER_BYTES + count * ENTRY_BYTES;
    if bytes.len() < table_end + 4 {
        return Err(StoreError::Truncated {
            what: "section table",
        });
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let id = r.u32().map_err(|_| StoreError::Truncated {
            what: "section table",
        })?;
        let offset = r.u64().map_err(|_| StoreError::Truncated {
            what: "section table",
        })?;
        let len = r.u64().map_err(|_| StoreError::Truncated {
            what: "section table",
        })?;
        let crc = r.u32().map_err(|_| StoreError::Truncated {
            what: "section table",
        })?;
        entries.push(SectionEntry {
            id,
            offset,
            len,
            crc,
        });
    }
    let stored_crc = r.u32().map_err(|_| StoreError::Truncated {
        what: "header checksum",
    })?;
    // lint:allow(panic): `bytes.len() < table_end + 4` was rejected above.
    if crc32(&bytes[..table_end]) != stored_crc {
        return Err(StoreError::ChecksumMismatch { section: "header" });
    }
    Ok(ParsedHeader { version, entries })
}

/// Looks up a section's table entry.
pub(crate) fn entry_for(entries: &[SectionEntry], id: SectionId) -> Option<&SectionEntry> {
    entries.iter().find(|e| e.id == id as u32)
}

/// Borrows a section's payload after verifying *bounds only* — the CRC is
/// deliberately NOT checked. This is the lazy path's raw view; callers
/// must run [`verify_section`] before decoding.
pub(crate) fn section_unverified<'a>(
    bytes: &'a [u8],
    entries: &[SectionEntry],
    id: SectionId,
) -> Result<(&'a [u8], u32), StoreError> {
    let entry = entry_for(entries, id).ok_or(StoreError::MissingSection { section: id.name() })?;
    let start = usize::try_from(entry.offset)
        .ok()
        .filter(|&s| s <= bytes.len())
        .ok_or(StoreError::Truncated { what: id.name() })?;
    let len = usize::try_from(entry.len)
        .ok()
        .filter(|&l| l <= bytes.len() - start)
        .ok_or(StoreError::Truncated { what: id.name() })?;
    // lint:allow(panic): start ≤ len(bytes) and len ≤ len(bytes) − start are
    // both enforced by the try_from filters directly above.
    Ok((&bytes[start..start + len], entry.crc))
}

/// Verifies a section payload against its table CRC.
pub(crate) fn verify_section(payload: &[u8], crc: u32, id: SectionId) -> Result<(), StoreError> {
    if crc32(payload) != crc {
        return Err(StoreError::ChecksumMismatch { section: id.name() });
    }
    Ok(())
}

/// Borrows a section's payload after verifying bounds and its CRC.
pub(crate) fn section<'a>(
    bytes: &'a [u8],
    entries: &[SectionEntry],
    id: SectionId,
) -> Result<&'a [u8], StoreError> {
    let (payload, crc) = section_unverified(bytes, entries, id)?;
    verify_section(payload, crc, id)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_then_parse_roundtrips_both_versions() {
        for version in [FORMAT_V1, FORMAT_V2] {
            let file = assemble(
                &[
                    (SectionId::Meta, vec![1, 2, 3]),
                    (SectionId::Tags, vec![4, 5]),
                ],
                version,
            );
            let hdr = parse_header(&file).unwrap();
            assert_eq!(hdr.version, version);
            assert_eq!(hdr.entries.len(), 2);
            assert_eq!(
                section(&file, &hdr.entries, SectionId::Meta).unwrap(),
                &[1, 2, 3]
            );
            assert_eq!(
                section(&file, &hdr.entries, SectionId::Tags).unwrap(),
                &[4, 5]
            );
            assert!(matches!(
                section(&file, &hdr.entries, SectionId::Stats),
                Err(StoreError::MissingSection { section: "stats" })
            ));
        }
    }

    #[test]
    fn v2_sections_are_aligned_and_padded_with_zeros() {
        let file = assemble(
            &[
                (SectionId::Meta, vec![1, 2, 3]),
                (SectionId::Tags, vec![4, 5, 6, 7, 8]),
                (SectionId::Stats, vec![9]),
            ],
            FORMAT_V2,
        );
        let hdr = parse_header(&file).unwrap();
        let mut covered = vec![false; file.len()];
        let table_end = FIXED_HEADER_BYTES + hdr.entries.len() * ENTRY_BYTES + 4;
        for c in covered.iter_mut().take(table_end) {
            *c = true;
        }
        for e in &hdr.entries {
            assert_eq!(e.offset % SECTION_ALIGN, 0, "unaligned section {}", e.id);
            for i in e.offset..e.offset + e.len {
                covered[i as usize] = true;
            }
        }
        // Every uncovered byte is alignment padding and must be zero.
        for (i, c) in covered.iter().enumerate() {
            if !c {
                assert_eq!(file[i], 0, "nonzero padding at {i}");
            }
        }
    }

    #[test]
    fn v1_layout_is_dense() {
        let file = assemble(&[(SectionId::Meta, vec![1, 2, 3])], FORMAT_V1);
        let hdr = parse_header(&file).unwrap();
        assert_eq!(hdr.version, FORMAT_V1);
        let e = &hdr.entries[0];
        assert_eq!(e.offset as usize, FIXED_HEADER_BYTES + ENTRY_BYTES + 4);
        assert_eq!(file.len() as u64, e.offset + e.len);
    }

    #[test]
    fn bad_magic_and_future_version_are_typed() {
        let mut file = assemble(&[(SectionId::Meta, vec![])], FORMAT_V2);
        file[0] ^= 0xff;
        assert!(matches!(parse_header(&file), Err(StoreError::BadMagic)));
        let mut file = assemble(&[(SectionId::Meta, vec![])], FORMAT_V2);
        file[8] = 0x7f; // version low byte
        assert!(matches!(
            parse_header(&file),
            Err(StoreError::UnsupportedVersion { found: 0x7f, .. })
        ));
        let mut file = assemble(&[(SectionId::Meta, vec![])], FORMAT_V2);
        file[8] = 0; // version zero is below the supported floor
        assert!(matches!(
            parse_header(&file),
            Err(StoreError::UnsupportedVersion { found: 0, .. })
        ));
    }

    #[test]
    fn header_and_section_corruption_hit_their_crcs() {
        for version in [FORMAT_V1, FORMAT_V2] {
            let file = assemble(&[(SectionId::Meta, vec![9; 16])], version);
            // Corrupt a table byte: header CRC must catch it.
            let mut bad = file.clone();
            bad[20] ^= 0xff;
            assert!(matches!(
                parse_header(&bad),
                Err(StoreError::ChecksumMismatch { section: "header" })
            ));
            // Corrupt a payload byte: the section CRC must catch it.
            let mut bad = file.clone();
            let last = bad.len() - 1;
            bad[last] ^= 0xff;
            let hdr = parse_header(&bad).unwrap();
            assert!(matches!(
                section(&bad, &hdr.entries, SectionId::Meta),
                Err(StoreError::ChecksumMismatch { section: "meta" })
            ));
            // The unverified borrow sees the same bytes without failing —
            // verification is the caller's explicit second step.
            let (payload, crc) = section_unverified(&bad, &hdr.entries, SectionId::Meta).unwrap();
            assert!(verify_section(payload, crc, SectionId::Meta).is_err());
        }
    }

    #[test]
    fn every_truncation_point_is_typed() {
        for version in [FORMAT_V1, FORMAT_V2] {
            let file = assemble(&[(SectionId::Meta, vec![7; 8])], version);
            for cut in 0..file.len() {
                let head = &file[..cut];
                match parse_header(head) {
                    Err(_) => {}
                    Ok(hdr) => {
                        // Header happens to fit; the payload must then fail.
                        assert!(section(head, &hdr.entries, SectionId::Meta).is_err());
                    }
                }
            }
        }
    }
}
