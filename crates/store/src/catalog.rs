//! A directory of named store files — the multi-document layer.
//!
//! One [`Catalog`] owns one directory; each document lives in its own
//! `<name>.fxs` file, so documents can be added, replaced, and removed
//! independently and a crashed writer never damages its neighbours (the
//! per-file temp-and-rename in [`StoreBuilder::write_to`] keeps each file
//! individually consistent).

use crate::error::StoreError;
use crate::format::FILE_EXTENSION;
use crate::lazy::LazyStore;
use crate::store::{CorpusStore, StoreBuilder, StoreMeta};
use crate::{format, SectionId};
use flexpath_engine::Budget;
use std::path::{Path, PathBuf};

/// A named document visible in a catalog directory.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// The meta fields read from the file (name, node/term counts).
    pub meta: StoreMeta,
    /// The backing file.
    pub path: PathBuf,
    /// File size in bytes.
    pub file_bytes: u64,
}

/// A `.fxs` file in the catalog directory that could not be listed: it is
/// quarantined from the healthy listing with the *typed* reason, instead
/// of silently disappearing or failing the whole listing.
#[derive(Debug)]
pub struct QuarantinedEntry {
    /// The offending file.
    pub path: PathBuf,
    /// Why its header/meta could not be read (bad magic, truncation,
    /// checksum mismatch, I/O, …).
    pub error: StoreError,
}

/// The result of [`Catalog::list_report`]: healthy entries plus the files
/// that were quarantined.
#[derive(Debug, Default)]
pub struct CatalogListing {
    /// Documents whose header and meta section verified, sorted by name.
    pub entries: Vec<CatalogEntry>,
    /// `.fxs` files that failed verification, sorted by path.
    pub quarantined: Vec<QuarantinedEntry>,
}

/// Manages multiple named documents in one store directory.
#[derive(Debug, Clone)]
pub struct Catalog {
    dir: PathBuf,
}

impl Catalog {
    /// Opens (creating if needed) the catalog directory at `dir`.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir)?;
        Ok(Catalog {
            dir: dir.to_path_buf(),
        })
    }

    /// The catalog's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file path a document named `name` is stored at. Names are
    /// restricted to `[A-Za-z0-9._-]`, must not start with `.`, and must
    /// be non-empty — exactly the set that is safe to splice into a file
    /// name on every platform.
    pub fn path_for(&self, name: &str) -> Result<PathBuf, StoreError> {
        let valid = !name.is_empty()
            && !name.starts_with('.')
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
        if !valid {
            return Err(StoreError::InvalidName {
                name: name.to_string(),
            });
        }
        Ok(self.dir.join(format!("{name}.{FILE_EXTENSION}")))
    }

    /// Writes `builder`'s document into the catalog under its meta name,
    /// replacing any previous version. Returns the file path.
    pub fn save(&self, builder: &StoreBuilder) -> Result<PathBuf, StoreError> {
        let path = self.path_for(&builder.meta().name)?;
        builder.write_to(&path)?;
        Ok(path)
    }

    /// Whether a document named `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.path_for(name).map(|p| p.is_file()).unwrap_or(false)
    }

    /// Loads the document named `name` with no budget.
    pub fn load(&self, name: &str) -> Result<CorpusStore, StoreError> {
        self.load_budgeted(name, &Budget::unlimited())
    }

    /// Loads the document named `name`, charging `budget` as
    /// [`CorpusStore::open_budgeted`] does.
    pub fn load_budgeted(&self, name: &str, budget: &Budget) -> Result<CorpusStore, StoreError> {
        let path = self.path_for(name)?;
        if !path.is_file() {
            return Err(StoreError::DocumentNotFound {
                name: name.to_string(),
            });
        }
        CorpusStore::open_budgeted(&path, budget)
    }

    /// Opens the document named `name` lazily (memory-mapped when
    /// possible, sections decoded on first touch) with no budget.
    pub fn open_lazy(&self, name: &str) -> Result<LazyStore, StoreError> {
        self.open_lazy_budgeted(name, &Budget::unlimited())
    }

    /// [`Catalog::open_lazy`] charging `budget` as
    /// [`LazyStore::open_budgeted`] does.
    pub fn open_lazy_budgeted(&self, name: &str, budget: &Budget) -> Result<LazyStore, StoreError> {
        let path = self.path_for(name)?;
        if !path.is_file() {
            return Err(StoreError::DocumentNotFound {
                name: name.to_string(),
            });
        }
        LazyStore::open_budgeted(&path, budget)
    }

    /// Removes the document named `name`.
    pub fn remove(&self, name: &str) -> Result<(), StoreError> {
        let path = self.path_for(name)?;
        if !path.is_file() {
            return Err(StoreError::DocumentNotFound {
                name: name.to_string(),
            });
        }
        std::fs::remove_file(path)?;
        Ok(())
    }

    /// Lists the catalog's documents, sorted by name. Only each file's
    /// header and meta section are read (and CRC-verified) — payloads are
    /// not decoded, so listing stays cheap for large catalogs. Files that
    /// are not valid stores are quarantined out of the listing; use
    /// [`Catalog::list_report`] to see them with their typed errors.
    pub fn list(&self) -> Result<Vec<CatalogEntry>, StoreError> {
        Ok(self.list_report()?.entries)
    }

    /// [`Catalog::list`], but corrupt or unreadable `.fxs` files are
    /// *reported*, not dropped: each lands in
    /// [`CatalogListing::quarantined`] with the [`StoreError`] that
    /// disqualified it. One damaged file (a truncated write, a flipped
    /// bit, a foreign file with the right extension) never fails the
    /// listing — and never hides, either, so an operator sees the damage
    /// instead of a silently shorter catalog.
    pub fn list_report(&self) -> Result<CatalogListing, StoreError> {
        let mut listing = CatalogListing::default();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(FILE_EXTENSION) {
                continue;
            }
            let verified = std::fs::read(&path)
                .map_err(StoreError::from)
                .and_then(|bytes| Ok((peek_meta(&bytes)?, bytes.len() as u64)));
            match verified {
                Ok((meta, file_bytes)) => listing.entries.push(CatalogEntry {
                    meta,
                    file_bytes,
                    path,
                }),
                Err(error) => listing.quarantined.push(QuarantinedEntry { path, error }),
            }
        }
        listing
            .entries
            .sort_by(|a, b| a.meta.name.cmp(&b.meta.name));
        listing.quarantined.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(listing)
    }
}

/// Reads and verifies just the header + meta section of a store image.
fn peek_meta(bytes: &[u8]) -> Result<StoreMeta, StoreError> {
    let header = format::parse_header(bytes)?;
    StoreMeta::decode(format::section(bytes, &header.entries, SectionId::Meta)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexpath_ftsearch::InvertedIndex;
    use flexpath_xmldom::{parse, DocStats};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("flexpath-catalog-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn builder(name: &str, xml: &str) -> StoreBuilder {
        let doc = parse(xml).unwrap();
        let stats = DocStats::compute(&doc);
        let index = InvertedIndex::build(&doc);
        StoreBuilder::from_parts(name, &doc, &stats, &index)
    }

    #[test]
    fn save_load_list_remove() {
        let dir = tmp_dir("basic");
        let cat = Catalog::open(&dir).unwrap();
        cat.save(&builder("alpha", "<a>gold</a>")).unwrap();
        cat.save(&builder("beta", "<b><c>silver</c></b>")).unwrap();
        assert!(cat.contains("alpha"));
        assert!(!cat.contains("gamma"));

        let listing = cat.list().unwrap();
        assert_eq!(listing.len(), 2);
        assert_eq!(listing[0].meta.name, "alpha");
        assert_eq!(listing[1].meta.name, "beta");

        let store = cat.load("beta").unwrap();
        assert_eq!(store.index().df("silver"), 1);

        cat.remove("alpha").unwrap();
        assert!(!cat.contains("alpha"));
        assert!(matches!(
            cat.load("alpha"),
            Err(StoreError::DocumentNotFound { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn names_are_sanitized() {
        let dir = tmp_dir("names");
        let cat = Catalog::open(&dir).unwrap();
        for bad in ["", ".", "..", "a/b", "a\\b", "x y", ".hidden", "a\0b"] {
            assert!(
                matches!(cat.path_for(bad), Err(StoreError::InvalidName { .. })),
                "name {bad:?} must be rejected"
            );
        }
        for good in ["doc", "Doc-1", "a.b_c", "XMARK-10mb"] {
            assert!(cat.path_for(good).is_ok(), "name {good:?} must be accepted");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn listing_skips_non_store_files() {
        let dir = tmp_dir("skip");
        let cat = Catalog::open(&dir).unwrap();
        cat.save(&builder("real", "<a>x1</a>")).unwrap();
        std::fs::write(dir.join("junk.fxs"), b"not a store").unwrap();
        std::fs::write(dir.join("other.txt"), b"ignored").unwrap();
        let listing = cat.list().unwrap();
        assert_eq!(listing.len(), 1);
        assert_eq!(listing[0].meta.name, "real");
        // The full report surfaces the junk file with its typed error
        // (non-.fxs files stay invisible: they were never claimed).
        let report = cat.list_report().unwrap();
        assert_eq!(report.entries.len(), 1);
        assert_eq!(report.quarantined.len(), 1);
        assert!(report.quarantined[0].path.ends_with("junk.fxs"));
        assert!(matches!(
            report.quarantined[0].error,
            StoreError::BadMagic | StoreError::Truncated { .. }
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_replaces_existing_document() {
        let dir = tmp_dir("replace");
        let cat = Catalog::open(&dir).unwrap();
        cat.save(&builder("doc", "<a>old</a>")).unwrap();
        cat.save(&builder("doc", "<a>new shiny</a>")).unwrap();
        let store = cat.load("doc").unwrap();
        assert_eq!(store.index().df("old"), 0);
        assert_eq!(store.index().df("shini"), 1); // Porter-stemmed "shiny"
        assert_eq!(cat.list().unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
