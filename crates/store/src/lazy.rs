//! The lazy open path: a memory-mapped store whose sections are validated
//! and decoded on first touch.
//!
//! [`LazyStore::open`] does O(header) work — map the file, verify the
//! header CRC, decode the tiny `meta` section, charge the governor budget
//! — and returns in milliseconds regardless of corpus size. The three
//! expensive parts (document arena, statistics, inverted index) stay as
//! raw mapped bytes until a query actually needs them:
//!
//! * first structural touch → `tags` + `elems` sections are CRC-verified
//!   and decoded into the [`Document`], then `stats`;
//! * first full-text touch → `terms` + `postings` are CRC-verified and
//!   decoded into the [`InvertedIndex`].
//!
//! Decoding happens at most once per part (double-checked `OnceLock`
//! cells; a per-part mutex serializes racing first touches). Failures are
//! **not** cached: a corrupt section reports the same typed
//! [`StoreError`] on every touch, and an operator replacing the file can
//! simply reopen.
//!
//! **v1 compatibility.** v1 files (dense layout, written by older builds)
//! are decoded eagerly *inside* open — identical behavior, answers, and
//! fingerprints to the historical [`CorpusStore`] path, including open-time
//! corruption errors. Only v2 files get lazy semantics.
//!
//! [`LazyStore`] implements [`ContextSource`], so an
//! [`EngineContext`](flexpath_engine::EngineContext) can sit directly on
//! top of it; the engine's `ensure_ready` / `try_*` accessors are the
//! fallible surface through which first-touch errors reach callers.

use crate::error::StoreError;
use crate::format::{self, SectionId, FORMAT_V1};
use crate::mmap::StoreBytes;
use crate::store::StoreMeta;
use flexpath_engine::metrics::{self, TraceSpan};
use flexpath_engine::{Budget, ContextSource, SourceError, SourceErrorKind, SourceResidency};
use flexpath_ftsearch::InvertedIndex;
use flexpath_xmldom::codec::{decode_document, decode_stats};
use flexpath_xmldom::{CodecError, DocStats, Document};
use std::path::Path;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// A store whose sections decode on demand. See the module docs.
#[derive(Debug)]
pub struct LazyStore {
    bytes: StoreBytes,
    version: u32,
    entries: Vec<format::SectionEntry>,
    meta: StoreMeta,
    open_span: TraceSpan,
    doc: OnceLock<Document>,
    stats: OnceLock<DocStats>,
    index: OnceLock<InvertedIndex>,
    doc_init: Mutex<()>,
    stats_init: Mutex<()>,
    index_init: Mutex<()>,
}

// The cells hold immutable decoded values; a poisoned init mutex only
// means another thread's decode panicked mid-flight (which the no-panic
// policy already forbids) — the cell is still either empty or fully set.
fn lock(m: &Mutex<()>) -> MutexGuard<'_, ()> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl LazyStore {
    /// Opens the store at `path` lazily with no budget.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        Self::open_budgeted(path, &Budget::unlimited())
    }

    /// Opens the store at `path` lazily, charging `budget` exactly like
    /// the eager path: the file's size against the memory cap and the
    /// meta-declared posting entry count against the postings cap, both
    /// *before* anything expensive happens. The caps bound what the
    /// session may eventually materialize, so charging at open keeps
    /// admission decisions identical whether a store is opened eagerly or
    /// lazily.
    pub fn open_budgeted(path: &Path, budget: &Budget) -> Result<Self, StoreError> {
        let start = Instant::now();
        let m = metrics::global();
        let result = StoreBytes::open(path)
            .map_err(StoreError::Io)
            .and_then(|bytes| Self::from_store_bytes(bytes, budget));
        match result {
            Ok(mut store) => {
                let elapsed = start.elapsed();
                store.open_span.duration = elapsed;
                m.add("engine.store.opens", 1);
                m.add("engine.store.lazy_opens", 1);
                m.observe_duration("engine.store.open", elapsed);
                Ok(store)
            }
            Err(e) => {
                m.add("engine.store.open_errors", 1);
                Err(e)
            }
        }
    }

    /// The in-memory open path: wraps already-obtained bytes (mapped or
    /// owned). v1 images are decoded eagerly here; v2 images defer.
    pub fn from_store_bytes(bytes: StoreBytes, budget: &Budget) -> Result<Self, StoreError> {
        let header = format::parse_header(&bytes)?;
        let meta = StoreMeta::decode(format::section(&bytes, &header.entries, SectionId::Meta)?)?;
        if budget.charge_memory(bytes.len() as u64) || budget.charge_postings(meta.posting_entries)
        {
            let reason = budget
                .tripped()
                .unwrap_or(flexpath_engine::ExhaustReason::MemoryBudget);
            return Err(StoreError::Budget(reason));
        }
        let mut open_span = TraceSpan::new("store.open");
        open_span.add("store.bytes", bytes.len() as u64);
        open_span.add("store.version", u64::from(header.version));
        open_span.add("store.lazy", u64::from(header.version > FORMAT_V1));
        open_span.add("store.mapped", u64::from(bytes.is_mapped()));
        open_span.add("store.nodes", meta.nodes);
        open_span.add("store.terms", meta.terms);
        open_span.add("store.posting_entries", meta.posting_entries);
        let store = LazyStore {
            bytes,
            version: header.version,
            entries: header.entries,
            meta,
            open_span,
            doc: OnceLock::new(),
            stats: OnceLock::new(),
            index: OnceLock::new(),
            doc_init: Mutex::new(()),
            stats_init: Mutex::new(()),
            index_init: Mutex::new(()),
        };
        if store.version == FORMAT_V1 {
            // v1 predates lazy validation: decode everything now so that
            // corruption anywhere still fails the *open*, exactly like the
            // historical eager path.
            store.document()?;
            store.stats()?;
            store.index()?;
        }
        Ok(store)
    }

    /// The stored meta fields (decoded and verified at open).
    pub fn meta(&self) -> &StoreMeta {
        &self.meta
    }

    /// Logical document name.
    pub fn name(&self) -> &str {
        &self.meta.name
    }

    /// The container format version of the underlying file.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Whether the file is memory-mapped (false ⇒ owned buffer fallback).
    pub fn is_mapped(&self) -> bool {
        self.bytes.is_mapped()
    }

    /// Total size of the underlying file image in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// The `store.open` trace span (bytes/version/lazy/mapped counters and
    /// the wall-clock open time for [`LazyStore::open`]). Kept *separate*
    /// from query traces on purpose: query `counter_fingerprint()`s must
    /// be identical whether a session was parsed, loaded, or mapped.
    pub fn load_trace(&self) -> &TraceSpan {
        &self.open_span
    }

    /// Which parts are currently decoded.
    pub fn parts_resident(&self) -> SourceResidency {
        SourceResidency {
            document: self.doc.get().is_some(),
            stats: self.stats.get().is_some(),
            index: self.index.get().is_some(),
        }
    }

    /// CRC-verified borrow of one section's payload (the first-touch
    /// validation step).
    fn section(&self, id: SectionId) -> Result<&[u8], StoreError> {
        format::section(&self.bytes, &self.entries, id)
    }

    /// The document arena, decoding `tags` + `elems` on first call.
    pub fn document(&self) -> Result<&Document, StoreError> {
        if let Some(doc) = self.doc.get() {
            return Ok(doc);
        }
        let _init = lock(&self.doc_init);
        if let Some(doc) = self.doc.get() {
            return Ok(doc);
        }
        let start = Instant::now();
        let tags = self.section(SectionId::Tags)?;
        let elems = self.section(SectionId::Elems)?;
        let doc = decode_document(tags, elems)?;
        if doc.node_count() as u64 != self.meta.nodes {
            return Err(StoreError::Corrupt(CodecError::Invalid {
                what: "meta node count disagrees with element table",
                index: self.meta.nodes,
            }));
        }
        let m = metrics::global();
        m.add("engine.store.lazy_decodes", 1);
        m.add("engine.store.bytes_read", (tags.len() + elems.len()) as u64);
        m.observe_duration("engine.store.lazy_decode", start.elapsed());
        Ok(self.doc.get_or_init(move || doc))
    }

    /// The structural statistics, decoding `stats` on first call (forces
    /// the document first — the decoder needs the symbol count).
    pub fn stats(&self) -> Result<&DocStats, StoreError> {
        if let Some(stats) = self.stats.get() {
            return Ok(stats);
        }
        let symbol_count = self.document()?.symbols().len();
        let _init = lock(&self.stats_init);
        if let Some(stats) = self.stats.get() {
            return Ok(stats);
        }
        let start = Instant::now();
        let payload = self.section(SectionId::Stats)?;
        let stats = decode_stats(payload, symbol_count)?;
        let m = metrics::global();
        m.add("engine.store.lazy_decodes", 1);
        m.add("engine.store.bytes_read", payload.len() as u64);
        m.observe_duration("engine.store.lazy_decode", start.elapsed());
        Ok(self.stats.get_or_init(move || stats))
    }

    /// The inverted index, decoding `terms` + `postings` on first call
    /// (forces the document first — postings are validated against the
    /// node count).
    pub fn index(&self) -> Result<&InvertedIndex, StoreError> {
        if let Some(index) = self.index.get() {
            return Ok(index);
        }
        let node_count = self.document()?.node_count();
        let _init = lock(&self.index_init);
        if let Some(index) = self.index.get() {
            return Ok(index);
        }
        let start = Instant::now();
        let terms = self.section(SectionId::Terms)?;
        let postings = self.section(SectionId::Postings)?;
        let index = InvertedIndex::decode(terms, postings, node_count)?;
        if index.posting_entry_count() != self.meta.posting_entries
            || index.term_count() as u64 != self.meta.terms
        {
            return Err(StoreError::Corrupt(CodecError::Invalid {
                what: "meta index counts disagree with postings",
                index: self.meta.posting_entries,
            }));
        }
        let m = metrics::global();
        m.add("engine.store.lazy_decodes", 1);
        m.add(
            "engine.store.bytes_read",
            (terms.len() + postings.len()) as u64,
        );
        m.observe_duration("engine.store.lazy_decode", start.elapsed());
        Ok(self.index.get_or_init(move || index))
    }
}

/// Maps a first-touch store failure into the engine's source-fault
/// vocabulary (the engine cannot name [`StoreError`] — the crate
/// dependency points store → engine).
fn source_error(part: &'static str, e: &StoreError) -> SourceError {
    let kind = match e {
        StoreError::ChecksumMismatch { .. } => SourceErrorKind::Checksum,
        StoreError::Io(_) => SourceErrorKind::Io,
        StoreError::Budget(reason) => SourceErrorKind::Budget(*reason),
        _ => SourceErrorKind::Corrupt,
    };
    SourceError {
        part,
        kind,
        detail: e.to_string(),
    }
}

impl ContextSource for LazyStore {
    fn load_document(&self) -> Result<&Document, SourceError> {
        self.document().map_err(|e| source_error("document", &e))
    }

    fn load_stats(&self) -> Result<&DocStats, SourceError> {
        self.stats().map_err(|e| source_error("stats", &e))
    }

    fn load_index(&self) -> Result<&InvertedIndex, SourceError> {
        self.index().map_err(|e| source_error("index", &e))
    }

    fn residency(&self) -> SourceResidency {
        self.parts_resident()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreBuilder;
    use flexpath_xmldom::parse;

    fn image(xml: &str, version: u32) -> Vec<u8> {
        let doc = parse(xml).unwrap();
        let stats = DocStats::compute(&doc);
        let index = InvertedIndex::build(&doc);
        StoreBuilder::from_parts("t", &doc, &stats, &index)
            .with_version(version)
            .unwrap()
            .to_bytes()
    }

    fn lazy(bytes: Vec<u8>) -> Result<LazyStore, StoreError> {
        LazyStore::from_store_bytes(StoreBytes::from_vec(bytes), &Budget::unlimited())
    }

    #[test]
    fn v2_open_decodes_nothing_until_touched() {
        let store = lazy(image("<a><b>gold coin</b></a>", format::FORMAT_V2)).unwrap();
        let r = store.parts_resident();
        assert!(!r.document && !r.stats && !r.index, "open stayed lazy");
        assert_eq!(store.meta().name, "t");
        let doc = store.document().unwrap();
        assert_eq!(doc.node_count() as u64, store.meta().nodes);
        assert!(store.parts_resident().document);
        assert!(!store.parts_resident().index, "index still cold");
        assert_eq!(store.index().unwrap().df("gold"), 1);
        assert!(store.parts_resident().index);
    }

    #[test]
    fn v1_open_is_eager() {
        let store = lazy(image("<a><b>gold</b></a>", FORMAT_V1)).unwrap();
        let r = store.parts_resident();
        assert!(r.document && r.stats && r.index, "v1 decodes at open");
        assert_eq!(store.version(), FORMAT_V1);
    }

    #[test]
    fn flipped_untouched_section_fails_only_on_touch() {
        let mut bytes = image("<a><b>gold silver coins</b></a>", format::FORMAT_V2);
        // Flip the last byte: inside the postings payload.
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        let store = lazy(bytes).expect("open must not touch postings");
        store.document().expect("document section is intact");
        store.stats().expect("stats section is intact");
        let err = store.index().expect_err("postings flip surfaces on touch");
        assert!(matches!(err, StoreError::ChecksumMismatch { .. }));
        // Errors are not cached: same typed error on every touch.
        assert!(matches!(
            store.index(),
            Err(StoreError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn budget_is_charged_at_open() {
        let bytes = image("<a><b>gold</b></a>", format::FORMAT_V2);
        let budget = Budget::new(None, None, u64::MAX, u64::MAX, 16);
        assert!(matches!(
            LazyStore::from_store_bytes(StoreBytes::from_vec(bytes), &budget),
            Err(StoreError::Budget(_))
        ));
    }

    #[test]
    fn context_source_maps_errors() {
        let mut bytes = image("<a><b>gold</b></a>", format::FORMAT_V2);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        let store = lazy(bytes).unwrap();
        let err = store.load_index().unwrap_err();
        assert_eq!(err.part, "index");
        assert_eq!(err.kind, SourceErrorKind::Checksum);
    }
}
