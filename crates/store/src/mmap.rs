//! The byte source behind a lazily-decoded store: a read-only memory map
//! when the platform and build allow it, a plain read-into-buffer
//! otherwise.
//!
//! [`StoreBytes`] is the only place in the workspace that touches `unsafe`
//! (the two raw `mmap`/`munmap` calls and the slice view over the mapping),
//! and it is double-gated:
//!
//! * the `mmap` cargo feature (on by default) — CI builds and tests the
//!   whole workspace with it disabled so the portable fallback can't rot;
//! * `cfg(unix)` — non-Unix targets always use the fallback.
//!
//! Safety model for the mapping itself: store files are written atomically
//! (temp file + rename, see [`crate::StoreBuilder::write_to`]), so a
//! blessed writer never truncates or rewrites a file in place — the inode a
//! reader has mapped stays intact for as long as the mapping lives, even
//! across a concurrent replace of the same *path*. An out-of-band truncate
//! by a hostile process can still fault a mapped read (the classic mmap
//! caveat); the fallback path is immune, which is exactly why it must keep
//! working.

use std::io;
use std::ops::Deref;
use std::path::Path;

/// An immutable byte image of a store file: memory-mapped when possible,
/// owned otherwise. Dereferences to `&[u8]` either way.
#[derive(Debug)]
pub struct StoreBytes {
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    Owned(Vec<u8>),
    #[cfg(all(unix, feature = "mmap"))]
    Mapped(sys::Mapping),
}

impl StoreBytes {
    /// Opens `path`, preferring a read-only memory map. Falls back to a
    /// buffered read when mapping is unavailable (feature off, non-Unix,
    /// empty file, or the map call itself failing).
    pub fn open(path: &Path) -> io::Result<StoreBytes> {
        #[cfg(all(unix, feature = "mmap"))]
        {
            let file = std::fs::File::open(path)?;
            let len = file.metadata()?.len();
            if let Ok(len) = usize::try_from(len) {
                if len > 0 {
                    if let Some(mapping) = sys::Mapping::map(&file, len) {
                        return Ok(StoreBytes {
                            inner: Inner::Mapped(mapping),
                        });
                    }
                }
            }
            // Zero-length or unmappable: fall through to the plain read.
        }
        Self::read(path)
    }

    /// Opens `path` by reading it fully into an owned buffer — never maps.
    pub fn read(path: &Path) -> io::Result<StoreBytes> {
        Ok(StoreBytes {
            inner: Inner::Owned(std::fs::read(path)?),
        })
    }

    /// Wraps an in-memory image (tests, `from_bytes` decode paths).
    pub fn from_vec(bytes: Vec<u8>) -> StoreBytes {
        StoreBytes {
            inner: Inner::Owned(bytes),
        }
    }

    /// Whether this image is a live memory map (false ⇒ owned buffer).
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            Inner::Owned(_) => false,
            #[cfg(all(unix, feature = "mmap"))]
            Inner::Mapped(_) => true,
        }
    }

    /// The raw file image.
    pub fn as_slice(&self) -> &[u8] {
        match &self.inner {
            Inner::Owned(v) => v,
            #[cfg(all(unix, feature = "mmap"))]
            Inner::Mapped(m) => m.as_slice(),
        }
    }
}

impl Deref for StoreBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

#[cfg(all(unix, feature = "mmap"))]
mod sys {
    //! Raw `mmap(2)`/`munmap(2)` via the libc the Rust runtime already
    //! links — no new dependency. Read-only, `MAP_PRIVATE`, whole file.

    use std::ffi::{c_int, c_void};
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// A live read-only mapping. Unmapped on drop.
    #[derive(Debug)]
    pub(super) struct Mapping {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is read-only and never remapped after
    // construction; sharing the base pointer across threads is no
    // different from sharing a `&[u8]`.
    #[allow(unsafe_code)]
    unsafe impl Send for Mapping {}
    // SAFETY: all access goes through `&self` to immutable bytes (the
    // region is mapped PROT_READ and never remapped), so concurrent
    // readers can never observe a write.
    #[allow(unsafe_code)]
    unsafe impl Sync for Mapping {}

    impl Mapping {
        /// Maps `len` bytes of `file` read-only. `len` must be non-zero
        /// (a zero-length mmap is EINVAL). Returns `None` on failure so
        /// the caller can fall back to a plain read.
        #[allow(unsafe_code)]
        pub(super) fn map(file: &File, len: usize) -> Option<Mapping> {
            // SAFETY: fd is a valid open file for the duration of the
            // call; addr=null lets the kernel choose placement; the
            // result is checked against MAP_FAILED before use.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr.is_null() || ptr as isize == -1 {
                return None;
            }
            Some(Mapping { ptr, len })
        }

        #[allow(unsafe_code)]
        pub(super) fn as_slice(&self) -> &[u8] {
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes, valid until `Drop` runs; the returned borrow cannot
            // outlive `self`.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mapping {
        #[allow(unsafe_code)]
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` are the exact values the successful
            // mmap returned; the mapping is unmapped exactly once.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_file(tag: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("flexpath-mmap-{tag}-{}.bin", std::process::id()));
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn open_sees_the_file_bytes() {
        let path = tmp_file("basic", b"hello store");
        let bytes = StoreBytes::open(&path).unwrap();
        assert_eq!(&*bytes, b"hello store");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn read_never_maps() {
        let path = tmp_file("read", b"plain");
        let bytes = StoreBytes::read(&path).unwrap();
        assert!(!bytes.is_mapped());
        assert_eq!(&*bytes, b"plain");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_files_open_via_fallback() {
        let path = tmp_file("empty", b"");
        let bytes = StoreBytes::open(&path).unwrap();
        assert!(!bytes.is_mapped());
        assert!(bytes.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(all(unix, feature = "mmap"))]
    #[test]
    fn nonempty_files_map_on_unix() {
        let path = tmp_file("mapped", &[7u8; 4096]);
        let bytes = StoreBytes::open(&path).unwrap();
        assert!(bytes.is_mapped());
        assert_eq!(bytes.len(), 4096);
        // The mapping pins the inode: removing the path must not disturb
        // the live view (this is the property the concurrent
        // open-vs-replace test at the workspace root depends on).
        std::fs::remove_file(&path).unwrap();
        assert!(bytes.iter().all(|&b| b == 7));
    }
}
