//! CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant), hand-rolled so
//! the store stays dependency-free. Table-driven, one byte per step —
//! plenty fast for per-section validation at load time.

/// Reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        // lint:allow(panic): const-eval table fill, i < 256 by the loop bound.
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `data` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        // lint:allow(panic): idx is masked with 0xFF, TABLE has 256 entries.
        crc = (crc >> 8) ^ TABLE[idx];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let base = crc32(data);
        let mut flipped = data.to_vec();
        for i in 0..flipped.len() {
            for bit in 0..8 {
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {i} bit {bit}");
                flipped[i] ^= 1 << bit;
            }
        }
    }
}
