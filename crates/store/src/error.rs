//! Typed errors for every way a store open or save can fail.
//!
//! The contract (mirrored by `tests/store_corruption.rs` at the workspace
//! root): no input file — truncated, bit-flipped, wrong-format, or from a
//! future version — may cause a panic. Every failure surfaces as one of
//! these variants.

use flexpath_engine::ExhaustReason;
use flexpath_xmldom::{CodecError, WireError};
use std::fmt;

/// Why a store could not be opened, read, or written.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure (open, read, write, rename).
    Io(std::io::Error),
    /// The file does not start with the store magic — not a store file.
    BadMagic,
    /// The file's format version is not the one this build reads.
    UnsupportedVersion {
        /// Version number found in the file.
        found: u32,
        /// Version number this build supports.
        supported: u32,
    },
    /// The file ends before a structure it declares.
    Truncated {
        /// Which structure was cut off.
        what: &'static str,
    },
    /// A section's stored CRC does not match its bytes.
    ChecksumMismatch {
        /// Which section (or `"header"`) failed verification.
        section: &'static str,
    },
    /// A required section is absent from the section table.
    MissingSection {
        /// The missing section's name.
        section: &'static str,
    },
    /// Section bytes passed CRC but decode to an inconsistent structure
    /// (only possible for hand-crafted files, since CRC catches flips).
    Corrupt(CodecError),
    /// The governor budget tripped while charging the load.
    Budget(ExhaustReason),
    /// The catalog has no document with the requested name.
    DocumentNotFound {
        /// The name that was looked up.
        name: String,
    },
    /// A document name unusable as a store file name.
    InvalidName {
        /// The offending name.
        name: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
            StoreError::BadMagic => write!(f, "not a FleXPath store file (bad magic)"),
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported store format version {found} (this build reads version {supported})"
            ),
            StoreError::Truncated { what } => write!(f, "store file truncated at {what}"),
            StoreError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in {section} section")
            }
            StoreError::MissingSection { section } => {
                write!(f, "required section {section} missing")
            }
            StoreError::Corrupt(e) => write!(f, "corrupt store payload: {e}"),
            StoreError::Budget(reason) => {
                write!(f, "budget exhausted while loading store: {reason}")
            }
            StoreError::DocumentNotFound { name } => {
                write!(f, "no document named {name:?} in catalog")
            }
            StoreError::InvalidName { name } => {
                write!(
                    f,
                    "invalid document name {name:?} (use letters, digits, '.', '_', '-')"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Corrupt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Corrupt(e)
    }
}

impl From<WireError> for StoreError {
    fn from(e: WireError) -> Self {
        StoreError::Corrupt(CodecError::Wire(e))
    }
}
