//! Operator-facing store inspection: the section table, CRC state, and
//! meta summary of a store file, without decoding any payload.
//!
//! Backs `flexpath-cli store inspect <file>`. Works on both container
//! versions; payload corruption is *reported* (`crc_ok = false`) rather
//! than failing the inspection — the point is debuggability of damaged
//! files. Only an unreadable or unparseable *header* is an error, since
//! without a valid table there is nothing to report.

use crate::crc::crc32;
use crate::error::StoreError;
use crate::format::{self, SectionId};
use crate::mmap::StoreBytes;
use crate::store::StoreMeta;
use std::path::Path;

/// One row of the section table, with its verification state.
#[derive(Debug, Clone)]
pub struct SectionReport {
    /// Raw section id from the table.
    pub id: u32,
    /// Human-readable name (`"unknown"` for ids this build doesn't know).
    pub name: &'static str,
    /// Byte offset of the payload within the file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// CRC-32 stored in the table.
    pub crc_stored: u32,
    /// Whether the payload bytes are in bounds and match `crc_stored`.
    pub crc_ok: bool,
}

/// Everything `store inspect` shows about one file.
#[derive(Debug, Clone)]
pub struct StoreInspection {
    /// Container format version (1 = dense/eager, 2 = aligned/lazy).
    pub version: u32,
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Decoded meta summary, if the meta section is intact.
    pub meta: Option<StoreMeta>,
    /// One row per section-table entry, in table order.
    pub sections: Vec<SectionReport>,
}

impl StoreInspection {
    /// Whether every section's payload verified.
    pub fn all_crc_ok(&self) -> bool {
        self.sections.iter().all(|s| s.crc_ok)
    }
}

/// Inspects the store image in `bytes`.
pub fn inspect_bytes(bytes: &[u8]) -> Result<StoreInspection, StoreError> {
    let header = format::parse_header(bytes)?;
    let mut sections = Vec::with_capacity(header.entries.len());
    for e in &header.entries {
        let payload = usize::try_from(e.offset).ok().and_then(|start| {
            let len = usize::try_from(e.len).ok()?;
            bytes.get(start..start.checked_add(len)?)
        });
        let crc_ok = payload.is_some_and(|p| crc32(p) == e.crc);
        sections.push(SectionReport {
            id: e.id,
            name: SectionId::from_raw(e.id).map_or("unknown", SectionId::name),
            offset: e.offset,
            len: e.len,
            crc_stored: e.crc,
            crc_ok,
        });
    }
    let meta = format::section(bytes, &header.entries, SectionId::Meta)
        .ok()
        .and_then(|p| StoreMeta::decode(p).ok());
    Ok(StoreInspection {
        version: header.version,
        file_bytes: bytes.len() as u64,
        meta,
        sections,
    })
}

/// Inspects the store file at `path`.
pub fn inspect_file(path: &Path) -> Result<StoreInspection, StoreError> {
    let bytes = StoreBytes::open(path)?;
    inspect_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{FORMAT_V1, FORMAT_V2};
    use crate::store::StoreBuilder;
    use flexpath_ftsearch::InvertedIndex;
    use flexpath_xmldom::{parse, DocStats};

    fn image(version: u32) -> Vec<u8> {
        let doc = parse("<a><b>gold coin</b></a>").unwrap();
        let stats = DocStats::compute(&doc);
        let index = InvertedIndex::build(&doc);
        StoreBuilder::from_parts("doc", &doc, &stats, &index)
            .with_version(version)
            .unwrap()
            .to_bytes()
    }

    #[test]
    fn inspects_both_versions() {
        for version in [FORMAT_V1, FORMAT_V2] {
            let report = inspect_bytes(&image(version)).unwrap();
            assert_eq!(report.version, version);
            assert_eq!(report.sections.len(), 6);
            assert!(report.all_crc_ok());
            assert_eq!(report.meta.as_ref().unwrap().name, "doc");
            let names: Vec<_> = report.sections.iter().map(|s| s.name).collect();
            assert_eq!(
                names,
                ["meta", "tags", "elems", "stats", "terms", "postings"]
            );
        }
    }

    #[test]
    fn payload_corruption_is_reported_not_fatal() {
        let mut bytes = image(FORMAT_V2);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        let report = inspect_bytes(&bytes).unwrap();
        assert!(!report.all_crc_ok());
        assert!(!report.sections.last().unwrap().crc_ok);
        // Every other section still verifies.
        assert!(report.sections[..5].iter().all(|s| s.crc_ok));
    }

    #[test]
    fn header_corruption_is_fatal() {
        let mut bytes = image(FORMAT_V2);
        bytes[20] ^= 0xff;
        assert!(matches!(
            inspect_bytes(&bytes),
            Err(StoreError::ChecksumMismatch { section: "header" })
        ));
    }
}
