//! # flexpath-store
//!
//! Persistent corpus store for the FleXPath reproduction: a versioned,
//! checksummed binary format holding everything a query session needs —
//! the arena document with its structural `(start, end, level)` labels,
//! the tag dictionary, the `#(t)`/`#pc`/`#ad` statistics behind predicate
//! penalties, and the positional inverted index with its collection
//! stats. Opening a store ([`CorpusStore::open`]) replaces the parse +
//! stats + index cold-start with a single validated read; the XML IR
//! survey literature treats exactly this labeled-tree + postings store as
//! table stakes for serving tree-pattern/full-text queries at scale.
//!
//! Design rules:
//!
//! * **Typed failure, never panic.** Truncation, bad magic, a future
//!   format version, a flipped bit anywhere — each maps to a
//!   [`StoreError`] variant. Per-section CRC-32s (plus one over the
//!   header) catch corruption before decoding; the decoders underneath
//!   validate every cross-reference anyway.
//! * **Deterministic bytes.** Identical inputs produce identical files
//!   (dictionaries sorted, no timestamps), so a committed golden file
//!   can detect format drift that lacks a version bump.
//! * **Governed loads.** [`CorpusStore::open_budgeted`] charges the
//!   session's [`Budget`](flexpath_engine::Budget) for file bytes and
//!   posting entries before decoding, and emits `engine.store.*` metrics.
//! * **Byte-identical answers.** A loaded session must reproduce the
//!   exact top-K results and `counter_fingerprint()`s of an in-memory
//!   build; the load trace span is therefore kept out of query traces.
//!
//! ```no_run
//! use flexpath_store::{Catalog, StoreBuilder};
//! use flexpath_ftsearch::InvertedIndex;
//! use flexpath_xmldom::{parse, DocStats};
//! use std::path::Path;
//!
//! let doc = parse("<site><item>gold watch</item></site>").unwrap();
//! let stats = DocStats::compute(&doc);
//! let index = InvertedIndex::build(&doc);
//! let catalog = Catalog::open(Path::new("store-dir")).unwrap();
//! catalog
//!     .save(&StoreBuilder::from_parts("auctions", &doc, &stats, &index))
//!     .unwrap();
//! let loaded = catalog.load("auctions").unwrap();
//! assert_eq!(loaded.index().df("gold"), 1);
//! ```

// Library targets must stay panic-free on input-reachable paths; the
// workspace `no_panics` test enforces the same rule by source scan.
// `unsafe` is denied crate-wide with exactly one sanctioned escape: the
// raw mmap/munmap calls in `mmap::sys`, each carrying a SAFETY comment
// and a scoped `#[allow(unsafe_code)]`.
#![deny(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod catalog;
pub mod crc;
pub mod error;
pub mod format;
pub mod inspect;
pub mod lazy;
pub mod mmap;
pub mod store;

pub use catalog::{Catalog, CatalogEntry, CatalogListing, QuarantinedEntry};
pub use crc::crc32;
pub use error::StoreError;
pub use format::{SectionId, FILE_EXTENSION, FORMAT_V1, FORMAT_V2, FORMAT_VERSION, MAGIC};
pub use inspect::{inspect_bytes, inspect_file, SectionReport, StoreInspection};
pub use lazy::LazyStore;
pub use mmap::StoreBytes;
pub use store::{CorpusStore, StoreBuilder, StoreMeta};
