//! # FleXPath
//!
//! A complete implementation of **FleXPath: Flexible Structure and
//! Full-Text Querying for XML** (Amer-Yahia, Lakshmanan, Pandit — SIGMOD
//! 2004).
//!
//! FleXPath integrates XPath-style structural querying with IR-style
//! full-text search by treating the structural query as a *template*:
//! documents that match it exactly rank first, and documents that match a
//! principled *relaxation* of it are returned with lower scores instead of
//! being silently discarded.
//!
//! ## Quickstart
//!
//! ```
//! use flexpath::FleXPath;
//!
//! let corpus = r#"<site>
//!   <article><section><algorithm>A1</algorithm>
//!     <paragraph>XML streaming evaluation</paragraph></section></article>
//!   <article><section><title>XML streaming</title>
//!     <algorithm>A2</algorithm><paragraph>other topic</paragraph></section></article>
//!   <article><note>a note about XML streaming</note></article>
//! </site>"#;
//!
//! let flex = FleXPath::from_xml(corpus).unwrap();
//! let results = flex
//!     .query("//article[./section[./algorithm and ./paragraph[.contains(\"XML\" and \"streaming\")]]]")
//!     .unwrap()
//!     .top(3)
//!     .execute();
//!
//! // All three articles are returned, ranked by how faithfully they match
//! // the structural template — the exact match first.
//! assert_eq!(results.hits.len(), 3);
//! assert!(results.hits[0].score.ss > results.hits[1].score.ss);
//! ```
//!
//! ## Crate map
//!
//! | Layer | Crate |
//! |---|---|
//! | XML document model, parser, statistics | `flexpath-xmldom` |
//! | IR engine (tokenizer, stemmer, index, FT eval) | `flexpath-ftsearch` |
//! | Tree pattern queries, closure/core, relaxation operators | `flexpath-tpq` |
//! | Penalties, selectivity, DPO / SSO / Hybrid | `flexpath-engine` |
//! | Persistent corpus store (on-disk format, catalog) | `flexpath-store` |
//! | XMark-style data generator (evaluation workload) | `flexpath-xmark` |
//!
//! This crate re-exports the pieces a downstream user needs and adds the
//! session/query-builder API plus human-readable explanations.

// The facade is the public surface downstream users read first — every
// exported item must carry a doc comment.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod explain;
pub mod session;

pub use explain::{
    explain_answer, explain_plan, explain_profile, explain_profile_with, explain_schedule,
};
pub use session::{FleXPath, QueryResults, TopKQuery};

// Re-exports for downstream users.
pub use flexpath_engine::{
    hardware_threads, prometheus_name, skew_millibits, Algorithm, Answer, AnswerScore,
    AttrRelaxation, Budget, CancelToken, Completeness, EngineError, ExecStats, ExhaustReason,
    MetricsRegistry, MetricsSnapshot, Offer, ParallelConfig, PruneFloor, QueryLimits, QueryTrace,
    RankingScheme, ScoreKey, SourceError, SourceErrorKind, SourceResidency, TagHierarchy,
    TopKBuckets, TraceSpan, WeightAssignment,
};
pub use flexpath_store::{
    Catalog, CatalogEntry, CatalogListing, CorpusStore, LazyStore, QuarantinedEntry, StoreBuilder,
    StoreError, StoreInspection, StoreMeta,
};

/// The process-wide engine metrics registry (see
/// [`flexpath_engine::metrics`]): cumulative counters and duration
/// histograms across every query run in this process.
pub fn engine_metrics() -> MetricsSnapshot {
    flexpath_engine::metrics::global().snapshot()
}
pub use flexpath_ftsearch::{FtExpr, Thesaurus};
pub use flexpath_tpq::{
    parse_query, parse_query_weighted, QueryParseError, RelaxOp, Tpq, TpqBuilder,
};
pub use flexpath_xmldom::{parse as parse_xml, Document, NodeId, ParseError};
