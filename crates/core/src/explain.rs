//! Human-readable explanations of relaxation schedules and answers.
//!
//! FleXPath's value proposition is that *lower-ranked answers are
//! explainable*: each one corresponds to a specific set of dropped closure
//! predicates with data-derived penalties. These helpers render that story.

use flexpath_engine::{
    build_schedule, Answer, EncodedQuery, EngineContext, PenaltyModel, WeightAssignment,
};
use flexpath_tpq::Tpq;
use std::fmt::Write as _;

/// Renders the penalty-ordered relaxation schedule of `query` against the
/// session's document: one line per operator with the predicates it drops,
/// its penalty, and the structural score of answers it admits.
pub fn explain_schedule(ctx: &EngineContext, query: &Tpq, max_steps: usize) -> String {
    let model = PenaltyModel::new(query, WeightAssignment::uniform());
    let schedule = build_schedule(ctx, &model, query, max_steps);
    let mut out = String::new();
    let _ = writeln!(out, "query: {}", query.to_xpath());
    let _ = writeln!(
        out,
        "exact-match structural score: {:.3}",
        model.base_structural_score(query)
    );
    for (i, step) in schedule.iter().enumerate() {
        let _ = writeln!(
            out,
            "step {:>2}: {}  (penalty {:.3}, answers score {:.3})",
            i + 1,
            step.op,
            step.step_penalty,
            step.ss_after
        );
        for (pred, pi) in &step.new_dropped {
            let _ = writeln!(out, "          drops {pred}  [π = {pi:.3}]");
        }
    }
    if schedule.is_empty() {
        let _ = writeln!(out, "(no relaxation applicable)");
    }
    out
}

/// Renders the fully relaxation-encoded plan for `query` (Figure 8 style):
/// per-node match conditions, ghost operands, and the relaxable-predicate
/// bits with their penalties.
pub fn explain_plan(ctx: &EngineContext, query: &Tpq, max_steps: usize) -> String {
    let model = PenaltyModel::new(query, WeightAssignment::uniform());
    let schedule = build_schedule(ctx, &model, query, max_steps);
    let enc = EncodedQuery::build(ctx, &model, query, &schedule);
    enc.describe(ctx)
}

/// Renders one answer: its node, scores, and relaxation level.
pub fn explain_answer(ctx: &EngineContext, answer: &Answer) -> String {
    let doc = ctx.doc();
    let tag = doc.tag_name(answer.node).unwrap_or("?");
    let mut out = String::new();
    let _ = write!(
        out,
        "<{tag}> {}  ss={:.3} ks={:.3}",
        answer.node, answer.score.ss, answer.score.ks
    );
    if answer.relaxation_level == 0 {
        let _ = write!(out, "  (exact match)");
    } else {
        let _ = write!(
            out,
            "  (admitted after {} relaxation step{})",
            answer.relaxation_level,
            if answer.relaxation_level == 1 { "" } else { "s" }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FleXPath;

    const CORPUS: &str = "<site>\
        <article><section><algorithm>x</algorithm>\
          <paragraph>XML streaming</paragraph></section></article>\
        <article><note>XML streaming</note></article>\
        </site>";

    const Q1: &str = "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" and \"streaming\")]]]";

    #[test]
    fn schedule_explanation_mentions_operators_and_penalties() {
        let flex = FleXPath::from_xml(CORPUS).unwrap();
        let q = flexpath_tpq::parse_query(Q1).unwrap();
        let text = explain_schedule(flex.context(), &q, 64);
        assert!(text.contains("exact-match structural score"), "{text}");
        assert!(text.contains("step  1"), "{text}");
        assert!(text.contains("π ="), "{text}");
        // All four operator glyphs can appear; at least one must.
        assert!(
            ["γ", "λ", "σ", "κ"].iter().any(|g| text.contains(g)),
            "{text}"
        );
    }

    #[test]
    fn answer_explanation_distinguishes_exact_and_relaxed() {
        let flex = FleXPath::from_xml(CORPUS).unwrap();
        let r = flex.query(Q1).unwrap().top(2).execute();
        let exact = explain_answer(flex.context(), &r.hits[0]);
        assert!(exact.contains("exact match"), "{exact}");
        let relaxed = explain_answer(flex.context(), &r.hits[1]);
        assert!(relaxed.contains("relaxation step"), "{relaxed}");
    }

    #[test]
    fn plan_explanation_shows_bits_and_ghosts() {
        let flex = FleXPath::from_xml(CORPUS).unwrap();
        let q = flexpath_tpq::parse_query(Q1).unwrap();
        let text = explain_plan(flex.context(), &q, 64);
        assert!(text.contains("encoded plan"), "{text}");
        assert!(text.contains("[root]"), "{text}");
        assert!(text.contains("ghost"), "fully relaxed plan has ghosts: {text}");
        assert!(text.contains("π="), "{text}");
        assert!(text.contains("requires contains#0"), "{text}");
    }

    #[test]
    fn unrelaxable_query_explains_gracefully() {
        let flex = FleXPath::from_xml(CORPUS).unwrap();
        let q = flexpath_tpq::TpqBuilder::new("article").build();
        let text = explain_schedule(flex.context(), &q, 64);
        assert!(text.contains("no relaxation applicable"), "{text}");
    }
}
