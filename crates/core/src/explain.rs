//! Human-readable explanations of relaxation schedules and answers.
//!
//! FleXPath's value proposition is that *lower-ranked answers are
//! explainable*: each one corresponds to a specific set of dropped closure
//! predicates with data-derived penalties. These helpers render that story.

use crate::session::FleXPath;
use flexpath_engine::{
    build_schedule, skew_millibits, Algorithm, Answer, CancelToken, EncodedQuery, EngineContext,
    PenaltyModel, QueryLimits, TraceSpan, WeightAssignment,
};
use flexpath_tpq::{QueryParseError, Tpq};
use std::fmt::Write as _;

/// Renders the penalty-ordered relaxation schedule of `query` against the
/// session's document: one line per operator with the predicates it drops,
/// its penalty, and the structural score of answers it admits.
pub fn explain_schedule(ctx: &EngineContext, query: &Tpq, max_steps: usize) -> String {
    let model = PenaltyModel::new(query, WeightAssignment::uniform());
    let schedule = build_schedule(ctx, &model, query, max_steps);
    let mut out = String::new();
    let _ = writeln!(out, "query: {}", query.to_xpath());
    let _ = writeln!(
        out,
        "exact-match structural score: {:.3}",
        model.base_structural_score(query)
    );
    for (i, step) in schedule.iter().enumerate() {
        let _ = writeln!(
            out,
            "step {:>2}: {}  (penalty {:.3}, answers score {:.3})",
            i + 1,
            step.op,
            step.step_penalty,
            step.ss_after
        );
        for (pred, pi) in &step.new_dropped {
            let _ = writeln!(out, "          drops {pred}  [π = {pi:.3}]");
        }
    }
    if schedule.is_empty() {
        let _ = writeln!(out, "(no relaxation applicable)");
    }
    out
}

/// Renders the fully relaxation-encoded plan for `query` (Figure 8 style):
/// per-node match conditions, ghost operands, and the relaxable-predicate
/// bits with their penalties.
pub fn explain_plan(ctx: &EngineContext, query: &Tpq, max_steps: usize) -> String {
    let model = PenaltyModel::new(query, WeightAssignment::uniform());
    let schedule = build_schedule(ctx, &model, query, max_steps);
    let enc = EncodedQuery::build(ctx, &model, query, &schedule);
    enc.describe(ctx)
}

/// EXPLAIN ANALYZE: *runs* `xpath` with tracing enabled and renders what
/// actually happened — the span tree (parse, schedule, every relaxation
/// round / evaluation pass, with candidate / prune / cache / governor
/// counters and wall-clock durations), a per-operation estimate-vs-actual
/// table (the static selectivity estimate next to the observed answer
/// count, with the log₂-ratio skew in bits), and the deterministic
/// counter fingerprint (the digest that is byte-identical across
/// `--threads` values; see `flexpath_engine::metrics`).
pub fn explain_profile(
    flex: &FleXPath,
    xpath: &str,
    k: usize,
    algorithm: Algorithm,
) -> Result<String, QueryParseError> {
    explain_profile_with(
        flex,
        xpath,
        k,
        algorithm,
        QueryLimits::default(),
        CancelToken::new(),
    )
}

/// [`explain_profile`] under governor control: the profiled run executes
/// with `limits` and stops at `cancel` like any other query, so callers
/// that must bound work (e.g. a server clamping per-request budgets) can
/// profile without granting an unlimited, uncancellable execution.
pub fn explain_profile_with(
    flex: &FleXPath,
    xpath: &str,
    k: usize,
    algorithm: Algorithm,
    limits: QueryLimits,
    cancel: CancelToken,
) -> Result<String, QueryParseError> {
    let results = flex
        .query(xpath)?
        .top(k)
        .algorithm(algorithm)
        .limits(limits)
        .cancel(cancel)
        .trace()
        .execute();
    let mut out = String::new();
    let _ = writeln!(out, "EXPLAIN ANALYZE  algorithm={algorithm} k={k}");
    let _ = writeln!(out, "query: {xpath}");
    let _ = writeln!(out, "completeness: {}", results.completeness);
    let _ = writeln!(out, "answers returned: {}", results.hits.len());
    if let Some(trace) = &results.trace {
        let _ = writeln!(out, "--- span tree ---");
        out.push_str(&trace.render_text());
        let rows = collect_skew_rows(&trace.root);
        if !rows.is_empty() {
            let _ = writeln!(out, "--- estimate vs actual ---");
            let _ = writeln!(
                out,
                "{:<32} {:>10} {:>10} {:>11}",
                "span", "estimated", "observed", "skew(bits)"
            );
            for (name, est, obs) in rows {
                let bits = skew_millibits(est as f64, obs) as f64 / 1000.0;
                let _ = writeln!(out, "{name:<32} {est:>10} {obs:>10} {bits:>+11.2}");
            }
        }
        let _ = writeln!(out, "--- deterministic counter fingerprint ---");
        out.push_str(&trace.counter_fingerprint());
    }
    Ok(out)
}

/// Walks the span tree collecting per-operation estimate-vs-observed pairs:
/// DPO rounds carry `round.estimated` / `round.observed`, SSO and Hybrid
/// passes carry `pass.estimated` / `pass.intermediates` (the answers the
/// encoded prefix actually streamed). Returns `(span name, estimated,
/// observed)` rows in execution order.
fn collect_skew_rows(span: &TraceSpan) -> Vec<(String, u64, u64)> {
    fn walk(span: &TraceSpan, out: &mut Vec<(String, u64, u64)>) {
        const PAIRS: [(&str, &str); 2] = [
            ("round.estimated", "round.observed"),
            ("pass.estimated", "pass.intermediates"),
        ];
        for (est_key, obs_key) in PAIRS {
            if let Some(est) = span.counters.get(est_key) {
                let obs = span.counters.get(obs_key).copied().unwrap_or(0);
                out.push((span.name.clone(), *est, obs));
            }
        }
        for c in &span.children {
            walk(c, out);
        }
    }
    let mut rows = Vec::new();
    walk(span, &mut rows);
    rows
}

/// Renders one answer: its node, scores, and relaxation level.
pub fn explain_answer(ctx: &EngineContext, answer: &Answer) -> String {
    let doc = ctx.doc();
    let tag = doc.tag_name(answer.node).unwrap_or("?");
    let mut out = String::new();
    let _ = write!(
        out,
        "<{tag}> {}  ss={:.3} ks={:.3}",
        answer.node, answer.score.ss, answer.score.ks
    );
    if answer.relaxation_level == 0 {
        let _ = write!(out, "  (exact match)");
    } else {
        let _ = write!(
            out,
            "  (admitted after {} relaxation step{})",
            answer.relaxation_level,
            if answer.relaxation_level == 1 {
                ""
            } else {
                "s"
            }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FleXPath;

    const CORPUS: &str = "<site>\
        <article><section><algorithm>x</algorithm>\
          <paragraph>XML streaming</paragraph></section></article>\
        <article><note>XML streaming</note></article>\
        </site>";

    const Q1: &str =
        "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" and \"streaming\")]]]";

    #[test]
    fn schedule_explanation_mentions_operators_and_penalties() {
        let flex = FleXPath::from_xml(CORPUS).unwrap();
        let q = flexpath_tpq::parse_query(Q1).unwrap();
        let text = explain_schedule(flex.context(), &q, 64);
        assert!(text.contains("exact-match structural score"), "{text}");
        assert!(text.contains("step  1"), "{text}");
        assert!(text.contains("π ="), "{text}");
        // All four operator glyphs can appear; at least one must.
        assert!(
            ["γ", "λ", "σ", "κ"].iter().any(|g| text.contains(g)),
            "{text}"
        );
    }

    #[test]
    fn answer_explanation_distinguishes_exact_and_relaxed() {
        let flex = FleXPath::from_xml(CORPUS).unwrap();
        let r = flex.query(Q1).unwrap().top(2).execute();
        let exact = explain_answer(flex.context(), &r.hits[0]);
        assert!(exact.contains("exact match"), "{exact}");
        let relaxed = explain_answer(flex.context(), &r.hits[1]);
        assert!(relaxed.contains("relaxation step"), "{relaxed}");
    }

    #[test]
    fn plan_explanation_shows_bits_and_ghosts() {
        let flex = FleXPath::from_xml(CORPUS).unwrap();
        let q = flexpath_tpq::parse_query(Q1).unwrap();
        let text = explain_plan(flex.context(), &q, 64);
        assert!(text.contains("encoded plan"), "{text}");
        assert!(text.contains("[root]"), "{text}");
        assert!(
            text.contains("ghost"),
            "fully relaxed plan has ghosts: {text}"
        );
        assert!(text.contains("π="), "{text}");
        assert!(text.contains("requires contains#0"), "{text}");
    }

    #[test]
    fn profile_renders_spans_and_fingerprint() {
        let flex = FleXPath::from_xml(CORPUS).unwrap();
        let text = explain_profile(&flex, Q1, 2, crate::Algorithm::Dpo).unwrap();
        assert!(text.contains("EXPLAIN ANALYZE"), "{text}");
        assert!(text.contains("span tree"), "{text}");
        assert!(text.contains("round[0] op=exact"), "{text}");
        assert!(text.contains("round.candidates="), "{text}");
        assert!(text.contains("governor.checkpoint."), "{text}");
        assert!(text.contains("counter fingerprint"), "{text}");
        assert!(text.contains("dpo>schedule"), "{text}");
    }

    #[test]
    fn profile_renders_estimate_vs_actual_table() {
        let flex = FleXPath::from_xml(CORPUS).unwrap();
        for algo in [
            crate::Algorithm::Dpo,
            crate::Algorithm::Sso,
            crate::Algorithm::Hybrid,
        ] {
            let text = explain_profile(&flex, Q1, 2, algo).unwrap();
            assert!(
                text.contains("--- estimate vs actual ---"),
                "{algo:?}: {text}"
            );
            assert!(text.contains("skew(bits)"), "{algo:?}: {text}");
            // Every skew row is a round or pass span with a signed skew.
            let has_row = text
                .lines()
                .skip_while(|l| !l.contains("estimate vs actual"))
                .any(|l| {
                    (l.contains("round[") || l.contains("pass["))
                        && (l.contains('+') || l.contains('-'))
                });
            assert!(has_row, "{algo:?}: {text}");
        }
    }

    #[test]
    fn profile_with_honors_limits_and_cancel() {
        let flex = FleXPath::from_xml(CORPUS).unwrap();
        // A zero answer budget trips before completion — the profile must
        // report a partial run, not ignore the limits.
        let limited = explain_profile_with(
            &flex,
            Q1,
            2,
            crate::Algorithm::Dpo,
            QueryLimits::default().with_max_candidate_answers(0),
            CancelToken::new(),
        )
        .unwrap();
        assert!(limited.contains("completeness: exhausted"), "{limited}");
        // A pre-cancelled token stops the run at its first checkpoint.
        let cancel = CancelToken::new();
        cancel.cancel();
        let cancelled = explain_profile_with(
            &flex,
            Q1,
            2,
            crate::Algorithm::Dpo,
            QueryLimits::default(),
            cancel,
        )
        .unwrap();
        assert!(cancelled.contains("completeness: exhausted"), "{cancelled}");
    }

    #[test]
    fn unrelaxable_query_explains_gracefully() {
        let flex = FleXPath::from_xml(CORPUS).unwrap();
        let q = flexpath_tpq::TpqBuilder::new("article").build();
        let text = explain_schedule(flex.context(), &q, 64);
        assert!(text.contains("no relaxation applicable"), "{text}");
    }
}
