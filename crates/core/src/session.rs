//! The FleXPath session and query-builder API.

use flexpath_engine::Budget;
use flexpath_engine::{
    dpo_topk, hybrid_topk, sso_topk, Algorithm, Answer, AttrRelaxation, CancelToken, Completeness,
    ContextSource, EngineContext, EngineError, ExecStats, ParallelConfig, QueryLimits, QueryTrace,
    RankingScheme, SourceError, SourceResidency, TagHierarchy, TopKRequest, TopKResult, TraceSpan,
    WeightAssignment,
};
use flexpath_ftsearch::{highlight, HighlightStyle, Thesaurus};
use flexpath_store::{CorpusStore, LazyStore, StoreBuilder, StoreError};
use flexpath_tpq::{parse_query_weighted, QueryParseError, Tpq};
use flexpath_xmldom::{
    parse as parse_xml, to_xml_string, DocStats, Document, NodeId, ParseError, ParseErrorKind,
};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// A FleXPath session over one document (collection).
///
/// Construction preprocesses the document once: structural statistics for
/// penalties and selectivity estimation, plus the full-text inverted index.
/// Alternatively, [`FleXPath::open`] restores a session from a persistent
/// store file *lazily*: the file is memory-mapped, the open does O(header)
/// work, and each part (document arena, statistics, inverted index) is
/// CRC-verified and decoded on first touch.
pub struct FleXPath {
    ctx: EngineContext,
    /// The `store.open` span when this session was loaded from a store.
    /// Deliberately *not* spliced into query traces: answers and
    /// `counter_fingerprint()`s must be identical across the parse and
    /// load paths.
    store_trace: Option<TraceSpan>,
    /// The backing lazy store when opened via [`FleXPath::open`] /
    /// [`FleXPath::from_lazy_store`] — shared with the engine context's
    /// source. Lets the session layer reach store-typed state (version,
    /// residency, typed errors for `save`) that the engine cannot name.
    lazy: Option<Arc<LazyStore>>,
}

/// Adapter sharing one [`LazyStore`] between the engine context (as its
/// [`ContextSource`]) and the session (for store-typed accessors).
struct SharedSource(Arc<LazyStore>);

impl ContextSource for SharedSource {
    fn load_document(&self) -> Result<&Document, SourceError> {
        self.0.load_document()
    }

    fn load_stats(&self) -> Result<&DocStats, SourceError> {
        self.0.load_stats()
    }

    fn load_index(&self) -> Result<&flexpath_ftsearch::InvertedIndex, SourceError> {
        self.0.load_index()
    }

    fn residency(&self) -> SourceResidency {
        self.0.residency()
    }
}

impl FleXPath {
    /// Opens a session over an already-built document.
    pub fn new(doc: Document) -> Self {
        FleXPath {
            ctx: EngineContext::new(doc),
            store_trace: None,
            lazy: None,
        }
    }

    /// Parses `xml` and opens a session over it.
    pub fn from_xml(xml: &str) -> Result<Self, ParseError> {
        Ok(Self::new(parse_xml(xml)?))
    }

    /// Opens a session over a *collection* of XML documents (the paper's
    /// `D` is "an XML document collection"): each part becomes a child of a
    /// synthetic `<collection>` root.
    ///
    /// Every part is validated *before* gluing: a part carrying a document
    /// type declaration is rejected ([`EngineError::DoctypeForbidden`]),
    /// as is a part that is not a single well-formed element
    /// ([`EngineError::NotSingleElement`]) — otherwise a part like
    /// `"<a/><b/>"` or `"</collection><evil/>"` could silently reshape the
    /// merged document.
    pub fn from_xml_parts<'a>(
        parts: impl IntoIterator<Item = &'a str>,
    ) -> Result<Self, EngineError> {
        let mut glued = String::from("<collection>");
        for (i, p) in parts.into_iter().enumerate() {
            if contains_doctype(p) {
                return Err(EngineError::DoctypeForbidden { part: i });
            }
            // Each part must parse on its own as exactly one element; the
            // parser already rejects text or a second root outside the
            // first (`ContentOutsideRoot`) and empty input (`Empty`).
            if let Err(e) = parse_xml(p) {
                return Err(match e.kind {
                    ParseErrorKind::ContentOutsideRoot | ParseErrorKind::Empty => {
                        EngineError::NotSingleElement { part: i }
                    }
                    _ => EngineError::Parse(e),
                });
            }
            glued.push_str(p);
        }
        glued.push_str("</collection>");
        Ok(Self::from_xml(&glued)?)
    }

    /// Restores a session from the persistent store file at `path`
    /// (written by [`FleXPath::save`] or the `flexpath index` command),
    /// skipping XML parsing, statistics collection, and index
    /// construction. The open is *lazy* for v2 files: O(header) work up
    /// front, sections validated and decoded on first touch (v1 files
    /// decode eagerly, as they always have). Queries on the restored
    /// session return byte-identical answers and trace fingerprints to a
    /// freshly built one.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        Ok(Self::from_lazy_store(LazyStore::open(path)?))
    }

    /// [`FleXPath::open`] under a governor [`Budget`]: the load charges
    /// the file's bytes against the memory cap and the index's posting
    /// entries against the postings cap up front, bounding what the
    /// session may eventually materialize.
    pub fn open_budgeted(path: &Path, budget: &Budget) -> Result<Self, StoreError> {
        Ok(Self::from_lazy_store(LazyStore::open_budgeted(
            path, budget,
        )?))
    }

    /// [`FleXPath::open`] via the historical eager path: every section is
    /// CRC-verified and decoded before this returns. Kept for callers that
    /// prefer open-time validation over open-time speed (and as the
    /// baseline the coldstart benchmark compares against).
    pub fn open_eager(path: &Path) -> Result<Self, StoreError> {
        Ok(Self::from_store(CorpusStore::open(path)?))
    }

    /// Wraps an already-loaded [`CorpusStore`] (e.g. one fetched from a
    /// [`flexpath_store::Catalog`]) in a session.
    pub fn from_store(store: CorpusStore) -> Self {
        let trace = store.load_trace().clone();
        let (doc, stats, index) = store.into_parts();
        FleXPath {
            ctx: EngineContext::from_parts(doc, stats, index),
            store_trace: Some(trace),
            lazy: None,
        }
    }

    /// Wraps a lazily-opened [`LazyStore`] (e.g. from
    /// [`flexpath_store::Catalog::open_lazy`]) in a session. Nothing is
    /// decoded yet for v2 stores; use [`FleXPath::materialize`] or the
    /// fallible query path ([`TopKQuery::try_execute`]) to surface
    /// first-touch corruption as typed errors instead of panics.
    pub fn from_lazy_store(store: LazyStore) -> Self {
        let trace = store.load_trace().clone();
        let store = Arc::new(store);
        FleXPath {
            ctx: EngineContext::from_source(Box::new(SharedSource(store.clone()))),
            store_trace: Some(trace),
            lazy: Some(store),
        }
    }

    /// The backing lazy store, when this session was opened lazily.
    pub fn lazy_store(&self) -> Option<&LazyStore> {
        self.lazy.as_deref()
    }

    /// Which parts of the session are materialized (always everything for
    /// sessions built from XML or opened eagerly).
    pub fn residency(&self) -> SourceResidency {
        self.ctx.residency()
    }

    /// Forces materialization of the document and statistics — plus the
    /// inverted index when `with_index` — reporting the first failure as
    /// a typed error. After `Ok(())`, infallible accessors like
    /// [`FleXPath::document`] and [`TopKQuery::execute`] cannot hit a
    /// store fault (full-text queries also need `with_index`).
    pub fn materialize(&self, with_index: bool) -> Result<(), EngineError> {
        self.ctx.ensure_ready(with_index).map_err(EngineError::from)
    }

    /// Persists this session's document, statistics, and index to `path`
    /// in the store format, under the logical name `name`. Returns the
    /// number of bytes written. For lazy sessions this materializes all
    /// parts first (reporting store faults as typed errors).
    pub fn save(&self, path: &Path, name: &str) -> Result<u64, StoreError> {
        if let Some(store) = &self.lazy {
            store.document()?;
            store.stats()?;
            store.index()?;
        }
        StoreBuilder::from_parts(name, self.ctx.doc(), self.ctx.stats(), self.ctx.index())
            .write_to(path)
    }

    /// The `store.open` trace span when this session was restored from a
    /// store (bytes, node/term counts, load wall time); `None` for
    /// sessions built from XML.
    pub fn store_trace(&self) -> Option<&TraceSpan> {
        self.store_trace.as_ref()
    }

    /// The underlying engine context (document, stats, index).
    pub fn context(&self) -> &EngineContext {
        &self.ctx
    }

    /// The document.
    ///
    /// For lazy sessions this materializes the document arena on first
    /// call; a store fault at that point is a contract violation (panic) —
    /// store-backed callers that have not run [`FleXPath::materialize`]
    /// should use [`FleXPath::try_document`].
    pub fn document(&self) -> &Document {
        self.ctx.doc()
    }

    /// [`FleXPath::document`] with first-touch store faults surfaced as
    /// typed errors instead of panics.
    pub fn try_document(&self) -> Result<&Document, EngineError> {
        self.ctx.try_doc().map_err(EngineError::from)
    }

    /// Starts a top-K query from an XPath-subset string. `^<weight>`
    /// annotations on steps / contains predicates become weight overrides
    /// (paper Section 4.1: "this weight may be user-specified").
    pub fn query(&self, xpath: &str) -> Result<TopKQuery<'_>, QueryParseError> {
        let parse_started = std::time::Instant::now();
        let (tpq, overrides) = parse_query_weighted(xpath)?;
        let parse_time = parse_started.elapsed();
        let mut q = self.query_tpq(tpq);
        q.parse_time = Some(parse_time);
        if !overrides.is_empty() {
            let mut weights = WeightAssignment::uniform();
            for (pred, w) in overrides {
                weights = weights.with_override(pred, w);
            }
            q.request.weights = weights;
        }
        Ok(q)
    }

    /// Starts a top-K query from a programmatically built [`Tpq`].
    pub fn query_tpq(&self, tpq: Tpq) -> TopKQuery<'_> {
        TopKQuery {
            flex: self,
            request: TopKRequest::new(tpq, 10),
            algorithm: Algorithm::Hybrid,
            thesaurus: None,
            parse_time: None,
        }
    }

    /// Serializes the subtree of an answer node (useful for display).
    pub fn xml_of(&self, node: NodeId) -> String {
        let mut out = String::new();
        flexpath_xmldom::write_xml(self.ctx.doc(), node, &mut out);
        out
    }

    /// A short text snippet of an answer node's content.
    pub fn snippet(&self, node: NodeId, max_chars: usize) -> String {
        let text = self.ctx.doc().subtree_text(node);
        let mut s: String = text.chars().take(max_chars).collect();
        if text.chars().count() > max_chars {
            s.push('…');
        }
        s
    }

    /// Serializes the full document.
    pub fn document_xml(&self) -> String {
        // lint:allow(fallibility): same contract as `document()` — a store
        // fault on first touch is a panic by design on this surface;
        // store-backed callers that skipped `materialize` use
        // [`FleXPath::try_document`] and serialize that.
        to_xml_string(self.ctx.doc())
    }

    /// A snippet of an answer with the query's keywords highlighted
    /// (stem-aware; `**…**` markers by default).
    pub fn highlight(&self, node: NodeId, query: &Tpq) -> String {
        self.highlight_styled(node, query, &HighlightStyle::default())
    }

    /// [`highlight`](Self::highlight) with custom markers / snippet length.
    pub fn highlight_styled(&self, node: NodeId, query: &Tpq, style: &HighlightStyle) -> String {
        // Union all the query's contains expressions into one for marking.
        let exprs: Vec<_> = query
            .nodes()
            .iter()
            .flat_map(|n| n.contains.iter().cloned())
            .collect();
        if exprs.is_empty() {
            return self.snippet(node, style.max_chars.max(1));
        }
        let combined = if exprs.len() == 1 {
            exprs.into_iter().next().expect("len checked")
        } else {
            flexpath_ftsearch::FtExpr::Or(exprs)
        };
        highlight(self.ctx.doc(), node, &combined, style)
    }

    /// Human-readable path of a node (`/collection/article[3]/section`).
    pub fn path_of(&self, node: NodeId) -> String {
        self.ctx.doc().node_path(node)
    }
}

/// Case-insensitive scan for a `<!DOCTYPE` declaration.
fn contains_doctype(part: &str) -> bool {
    let bytes = part.as_bytes();
    bytes
        .windows(9)
        .any(|w| w[0] == b'<' && w[1] == b'!' && w[2..].eq_ignore_ascii_case(b"doctype"))
}

/// A configurable top-K query (builder style).
pub struct TopKQuery<'a> {
    flex: &'a FleXPath,
    request: TopKRequest,
    algorithm: Algorithm,
    thesaurus: Option<Thesaurus>,
    parse_time: Option<Duration>,
}

impl TopKQuery<'_> {
    /// Sets K (default 10).
    pub fn top(mut self, k: usize) -> Self {
        self.request.k = k;
        self
    }

    /// Chooses the top-K algorithm (default [`Algorithm::Hybrid`]).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Chooses the ranking scheme (default structure-first).
    pub fn scheme(mut self, scheme: RankingScheme) -> Self {
        self.request.scheme = scheme;
        self
    }

    /// Sets the predicate weight assignment (default uniform).
    pub fn weights(mut self, weights: WeightAssignment) -> Self {
        self.request.weights = weights;
        self
    }

    /// Caps the number of relaxation steps considered.
    pub fn max_relaxations(mut self, n: usize) -> Self {
        self.request.max_relaxation_steps = n;
        self
    }

    /// Gives the query a wall-clock deadline. When it expires the run
    /// returns the best answers found so far and
    /// [`QueryResults::completeness`] reports the interruption.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.request.limits.deadline = Some(deadline);
        self
    }

    /// Sets all resource limits at once (see [`QueryLimits`]).
    pub fn limits(mut self, limits: QueryLimits) -> Self {
        self.request.limits = limits;
        self
    }

    /// Attaches an external cancellation token; calling
    /// [`CancelToken::cancel`] from any thread stops the query at its next
    /// checkpoint with a best-effort result.
    pub fn cancel(mut self, cancel: CancelToken) -> Self {
        self.request.cancel = Some(cancel);
        self
    }

    /// Attaches a type hierarchy, enabling tag relaxation (paper
    /// Section 3.4: `article` may relax to any subtype of its declared
    /// supertype, e.g. `publication`).
    pub fn hierarchy(mut self, hierarchy: TagHierarchy) -> Self {
        self.request.hierarchy = Some(hierarchy);
        self
    }

    /// Attaches a thesaurus: every `contains` term expands to its synonym
    /// ring before evaluation (paper Section 3.4's keyword relaxation,
    /// "performed by a separate IR engine").
    pub fn thesaurus(mut self, thesaurus: Thesaurus) -> Self {
        self.thesaurus = Some(thesaurus);
        self
    }

    /// Enables numeric attribute-bound slackening (paper Section 3.4:
    /// `price ≤ 98` may match as `price ≤ 100`, at a data-derived penalty).
    pub fn attr_relaxation(mut self, relaxation: AttrRelaxation) -> Self {
        self.request.attr_relaxation = Some(relaxation);
        self
    }

    /// Runs the query on `threads` worker threads (default 1 = sequential).
    /// The ranking is identical at every thread count; see
    /// [`ParallelConfig`] for the determinism contract.
    pub fn threads(mut self, threads: usize) -> Self {
        self.request.parallel = ParallelConfig::with_threads(threads);
        self
    }

    /// Sets the full worker-thread configuration (thread count plus the
    /// minimum candidate-set size worth fanning out).
    pub fn parallel(mut self, parallel: ParallelConfig) -> Self {
        self.request.parallel = parallel;
        self
    }

    /// Collects a per-query execution trace: [`QueryResults::trace`] will
    /// carry a [`QueryTrace`] span tree covering parse, scheduling, and
    /// every relaxation round / evaluation pass. Off by default (tracing
    /// allocates a span tree per round).
    pub fn trace(mut self) -> Self {
        self.request.collect_trace = true;
        self
    }

    /// The underlying request (for advanced use).
    pub fn request(&self) -> &TopKRequest {
        &self.request
    }

    /// Whether this query needs the inverted index: true iff it carries
    /// any `contains` predicate (thesaurus expansion only rewrites
    /// *existing* `contains` expressions, so it cannot change the answer).
    fn needs_index(&self) -> bool {
        self.request
            .query
            .nodes()
            .iter()
            .any(|n| !n.contains.is_empty())
    }

    /// Runs the query, materializing exactly the parts it needs first —
    /// the document and statistics always, the inverted index only when
    /// the query carries `contains` predicates — and surfacing first-touch
    /// store faults (checksum mismatch, corrupt section, I/O) as typed
    /// errors. This is the canonical path for store-backed sessions; for
    /// in-memory sessions it never fails.
    pub fn try_execute(&self) -> Result<QueryResults, EngineError> {
        self.flex.ctx.ensure_ready(self.needs_index())?;
        Ok(self.execute())
    }

    /// Runs the query. Infallible: on a lazy session whose store turns
    /// out to be corrupt at first touch, this panics — use
    /// [`TopKQuery::try_execute`] when the store is untrusted.
    pub fn execute(&self) -> QueryResults {
        let mut request = self.request.clone();
        if let Some(t) = &self.thesaurus {
            request.query = request.query.map_contains(|e| t.expand(e));
        }
        let result: TopKResult = match self.algorithm {
            Algorithm::Dpo => dpo_topk(&self.flex.ctx, &request),
            Algorithm::Sso => sso_topk(&self.flex.ctx, &request),
            Algorithm::Hybrid => hybrid_topk(&self.flex.ctx, &request),
        };
        let mut trace = result.trace;
        if let (Some(t), Some(parse_time)) = (trace.as_mut(), self.parse_time) {
            // The parse happened before the engine's root span existed;
            // splice it in as the first child so the tree reads in
            // pipeline order (parse → schedule → rounds).
            let mut parse_span = TraceSpan::new("parse");
            parse_span.duration = parse_time;
            t.root.children.insert(0, parse_span);
        }
        QueryResults {
            hits: result.answers,
            stats: result.stats,
            completeness: result.completeness,
            algorithm: self.algorithm,
            trace,
        }
    }
}

/// Ranked results of a top-K query.
#[derive(Debug, Clone)]
pub struct QueryResults {
    /// Ranked answers, best first.
    pub hits: Vec<Answer>,
    /// Execution counters.
    pub stats: ExecStats,
    /// Whether the run explored everything or stopped on a resource limit.
    pub completeness: Completeness,
    /// The algorithm that produced them.
    pub algorithm: Algorithm,
    /// Execution trace (present only when [`TopKQuery::trace`] was set).
    pub trace: Option<QueryTrace>,
}

impl QueryResults {
    /// Answer nodes in rank order.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.hits.iter().map(|h| h.node).collect()
    }

    /// `true` when the run explored its full search space.
    pub fn is_complete(&self) -> bool {
        self.completeness.is_complete()
    }

    /// The limit that stopped the run early, if any (`None` for complete
    /// runs). Convenience for callers that degrade rather than error on
    /// budget trips — e.g. a server returning a partial with `Retry-After`.
    pub fn exhaust_reason(&self) -> Option<flexpath_engine::ExhaustReason> {
        self.completeness.exhaust_reason()
    }

    /// Whether any answer required relaxation.
    pub fn used_relaxation(&self) -> bool {
        self.hits.iter().any(|h| h.relaxation_level > 0) || self.stats.relaxations_used > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CORPUS: &str = "<site>\
        <article id=\"exact\"><section><algorithm>x</algorithm>\
          <paragraph>XML streaming</paragraph></section></article>\
        <article id=\"close\"><section><title>XML streaming</title>\
          <algorithm>y</algorithm><paragraph>other</paragraph></section></article>\
        <article id=\"loose\"><note>XML streaming</note></article>\
        </site>";

    const Q1: &str =
        "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" and \"streaming\")]]]";

    #[test]
    fn session_end_to_end() {
        let flex = FleXPath::from_xml(CORPUS).unwrap();
        let results = flex.query(Q1).unwrap().top(3).execute();
        assert_eq!(results.hits.len(), 3);
        let id = flex.document().symbols().lookup("id").unwrap();
        assert_eq!(
            flex.document().attribute(results.hits[0].node, id),
            Some("exact")
        );
        assert!(results.used_relaxation());
    }

    #[test]
    fn all_three_algorithms_return_same_answer_set() {
        let flex = FleXPath::from_xml(CORPUS).unwrap();
        let mut sets = Vec::new();
        for alg in [Algorithm::Dpo, Algorithm::Sso, Algorithm::Hybrid] {
            let r = flex.query(Q1).unwrap().top(3).algorithm(alg).execute();
            let mut nodes = r.nodes();
            nodes.sort();
            sets.push(nodes);
        }
        assert_eq!(sets[0], sets[1]);
        assert_eq!(sets[1], sets[2]);
    }

    #[test]
    fn exact_query_needs_no_relaxation() {
        let flex = FleXPath::from_xml(CORPUS).unwrap();
        let r = flex.query(Q1).unwrap().top(1).execute();
        assert_eq!(r.hits.len(), 1);
        assert_eq!(r.hits[0].relaxation_level, 0);
        assert!(!r.used_relaxation());
    }

    #[test]
    fn snippets_and_xml_render() {
        let flex = FleXPath::from_xml(CORPUS).unwrap();
        let r = flex.query(Q1).unwrap().top(1).execute();
        let node = r.hits[0].node;
        assert!(flex.xml_of(node).starts_with("<article"));
        let short = flex.snippet(node, 5);
        assert!(short.chars().count() <= 6); // 5 + ellipsis
    }

    #[test]
    fn builder_options_apply() {
        let flex = FleXPath::from_xml(CORPUS).unwrap();
        let q = flex
            .query(Q1)
            .unwrap()
            .top(2)
            .scheme(RankingScheme::Combined)
            .algorithm(Algorithm::Sso)
            .max_relaxations(8);
        assert_eq!(q.request().k, 2);
        assert_eq!(q.request().scheme, RankingScheme::Combined);
        assert_eq!(q.request().max_relaxation_steps, 8);
        let r = q.execute();
        assert_eq!(r.algorithm, Algorithm::Sso);
        assert_eq!(r.hits.len(), 2);
    }

    #[test]
    fn collections_glue_under_a_synthetic_root() {
        let flex = FleXPath::from_xml_parts([
            "<article><p>XML streaming a</p></article>",
            "<article><p>XML streaming b</p></article>",
        ])
        .unwrap();
        assert_eq!(
            flex.document().tag_name(flex.document().root_element()),
            Some("collection")
        );
        let r = flex
            .query("//article[.contains(\"XML\")]")
            .unwrap()
            .top(5)
            .execute();
        assert_eq!(r.hits.len(), 2);
    }

    #[test]
    fn highlighting_marks_query_keywords() {
        let flex = FleXPath::from_xml(CORPUS).unwrap();
        let q = flexpath_tpq::parse_query(Q1).unwrap();
        let r = flex.query(Q1).unwrap().top(1).execute();
        let hl = flex.highlight(r.hits[0].node, &q);
        assert!(hl.contains("**XML**"), "{hl}");
        assert!(hl.contains("**streaming**"), "{hl}");
        assert!(flex.path_of(r.hits[0].node).starts_with("/site/article"));
    }

    #[test]
    fn from_xml_parts_rejects_doctype_and_fragments() {
        assert!(matches!(
            FleXPath::from_xml_parts(["<!DOCTYPE a><a/>"]),
            Err(EngineError::DoctypeForbidden { part: 0 })
        ));
        assert!(matches!(
            FleXPath::from_xml_parts(["<a/>", "<!doctype b><b/>"]),
            Err(EngineError::DoctypeForbidden { part: 1 })
        ));
        assert!(matches!(
            FleXPath::from_xml_parts(["<a/>", "<b/><c/>"]),
            Err(EngineError::NotSingleElement { part: 1 })
        ));
        assert!(matches!(
            FleXPath::from_xml_parts(["<a/>", "   "]),
            Err(EngineError::NotSingleElement { part: 1 })
        ));
        assert!(FleXPath::from_xml_parts(["</collection><evil/>", "<a/>"]).is_err());
    }

    #[test]
    fn deadline_and_limits_flow_into_the_request() {
        let flex = FleXPath::from_xml(CORPUS).unwrap();
        let q = flex
            .query(Q1)
            .unwrap()
            .deadline(Duration::from_millis(100))
            .limits(QueryLimits::default().with_max_candidate_answers(7))
            .cancel(CancelToken::new());
        // `.limits` replaced the deadline set before it; set it again.
        let q = q.deadline(Duration::from_millis(50));
        assert_eq!(q.request().limits.deadline, Some(Duration::from_millis(50)));
        assert_eq!(q.request().limits.max_candidate_answers, Some(7));
        assert!(q.request().cancel.is_some());
        let r = q.execute();
        assert!(r.is_complete(), "tiny corpus finishes well within limits");
    }

    #[test]
    fn zero_answer_budget_degrades_gracefully() {
        let flex = FleXPath::from_xml(CORPUS).unwrap();
        for alg in [Algorithm::Dpo, Algorithm::Sso, Algorithm::Hybrid] {
            let r = flex
                .query(Q1)
                .unwrap()
                .top(3)
                .algorithm(alg)
                .limits(QueryLimits::default().with_max_candidate_answers(0))
                .execute();
            assert!(r.hits.is_empty(), "{alg}: no budget, no answers");
            assert!(!r.is_complete(), "{alg}: must report exhaustion");
        }
    }

    #[test]
    fn trace_opt_in_yields_span_tree_with_parse_span() {
        let flex = FleXPath::from_xml(CORPUS).unwrap();
        let untraced = flex.query(Q1).unwrap().top(3).execute();
        assert!(untraced.trace.is_none(), "tracing must be opt-in");
        for alg in [Algorithm::Dpo, Algorithm::Sso, Algorithm::Hybrid] {
            let r = flex
                .query(Q1)
                .unwrap()
                .top(3)
                .algorithm(alg)
                .trace()
                .execute();
            let trace = r.trace.expect("trace requested");
            assert_eq!(
                trace.root.children.first().map(|s| s.name.as_str()),
                Some("parse"),
                "{alg}"
            );
            assert!(trace.find("schedule").is_some(), "{alg}");
        }
    }

    #[test]
    fn parse_errors_surface() {
        let flex = FleXPath::from_xml(CORPUS).unwrap();
        assert!(flex.query("not an xpath").is_err());
        assert!(FleXPath::from_xml("<broken").is_err());
    }

    #[test]
    fn save_then_open_reproduces_answers_and_fingerprints() {
        let dir = std::env::temp_dir().join(format!("flexpath-session-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("corpus.fxs");

        let built = FleXPath::from_xml(CORPUS).unwrap();
        built.save(&path, "corpus").unwrap();
        assert!(
            built.store_trace().is_none(),
            "built sessions have no load span"
        );

        let loaded = FleXPath::open(&path).unwrap();
        let span = loaded
            .store_trace()
            .expect("loaded sessions expose the span");
        assert_eq!(span.name, "store.open");

        for alg in [Algorithm::Dpo, Algorithm::Sso, Algorithm::Hybrid] {
            let a = built
                .query(Q1)
                .unwrap()
                .top(3)
                .algorithm(alg)
                .trace()
                .execute();
            let b = loaded
                .query(Q1)
                .unwrap()
                .top(3)
                .algorithm(alg)
                .trace()
                .execute();
            assert_eq!(a.nodes(), b.nodes(), "{alg}");
            for (x, y) in a.hits.iter().zip(&b.hits) {
                assert_eq!(x.score, y.score, "{alg}");
            }
            assert_eq!(
                a.trace.unwrap().counter_fingerprint(),
                b.trace.unwrap().counter_fingerprint(),
                "{alg}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_missing_file_is_a_typed_error() {
        let missing = std::env::temp_dir().join("flexpath-definitely-missing.fxs");
        assert!(matches!(FleXPath::open(&missing), Err(StoreError::Io(_))));
    }
}
