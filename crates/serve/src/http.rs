//! A minimal, hardened HTTP/1.1 layer over `std::net` — request parsing
//! and response writing for the query service.
//!
//! This is deliberately not a general web server: it parses exactly the
//! subset the service speaks (GET/POST/HEAD, `Content-Length` bodies) and
//! treats everything else as a *typed* error that maps to a 4xx/5xx
//! response. The robustness contract mirrors the store's: no input byte
//! stream — truncated, oversized, slow-lorised, or garbage — may cause a
//! panic or an unbounded read. Limits come from [`HttpLimits`]; wall-clock
//! bounds come from the socket read/write timeouts the server installs.

use std::io::{Read, Write};
use std::time::Duration;

/// Byte-size limits for one request. Defaults are generous for query
/// payloads and small enough that a malicious client cannot balloon
/// per-connection memory.
#[derive(Debug, Clone)]
pub struct HttpLimits {
    /// Cap on the request head (request line + headers), in bytes.
    pub max_head_bytes: usize,
    /// Cap on the declared `Content-Length`, in bytes.
    pub max_body_bytes: u64,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// Request methods the service accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
    /// `HEAD` (served like `GET` with the body suppressed)
    Head,
}

impl Method {
    fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "HEAD" => Some(Method::Head),
            _ => None,
        }
    }
}

/// One parsed request: method, path (query string split off), and body.
#[derive(Debug, Clone)]
pub struct Request {
    /// The request method.
    pub method: Method,
    /// The path component of the request target (before any `?`).
    pub path: String,
    /// The raw query string (after `?`), empty when absent.
    pub query: String,
    /// Header names (lowercased) and values, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Bytes beyond `Content-Length` arrived with this request — a
    /// pipelined next request this server does not support. They were
    /// discarded, so the connection is desynchronized and must be closed
    /// after responding (the pipelining client sees the close and retries
    /// instead of hanging on a response that will never come).
    pub pipelined_excess: bool,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Every way reading one request can fail. Each variant maps to a fixed
/// HTTP status via [`HttpError::status`]; none of them panics.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before sending any bytes — the
    /// normal end of a keep-alive session, not an error response.
    ConnectionClosed,
    /// The socket read/write failed or timed out mid-request.
    Io(std::io::Error),
    /// The socket timed out waiting for the rest of a started request.
    Timeout,
    /// Request line is not `METHOD SP TARGET SP HTTP/1.x`.
    BadRequestLine,
    /// The method is none of GET / POST / HEAD.
    MethodUnknown,
    /// The version is not HTTP/1.0 or HTTP/1.1.
    UnsupportedVersion,
    /// A header line has no `:` separator or non-ASCII name.
    BadHeader,
    /// The head (request line + headers) exceeded the size cap.
    HeadTooLarge {
        /// The configured cap in bytes.
        limit: usize,
    },
    /// `Content-Length` is not a decimal number.
    BadContentLength,
    /// The declared body exceeds the size cap.
    BodyTooLarge {
        /// The declared `Content-Length`.
        declared: u64,
        /// The configured cap in bytes.
        limit: u64,
    },
    /// `Transfer-Encoding` was sent; the service only reads
    /// `Content-Length` bodies.
    UnsupportedTransferEncoding,
}

impl HttpError {
    /// The response status this parse failure maps to.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::ConnectionClosed | HttpError::Io(_) => 400,
            HttpError::Timeout => 408,
            HttpError::BadRequestLine | HttpError::BadHeader | HttpError::BadContentLength => 400,
            HttpError::MethodUnknown => 405,
            HttpError::UnsupportedVersion => 505,
            HttpError::HeadTooLarge { .. } => 431,
            HttpError::BodyTooLarge { .. } => 413,
            HttpError::UnsupportedTransferEncoding => 501,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::ConnectionClosed => write!(f, "connection closed"),
            HttpError::Io(e) => write!(f, "socket error: {e}"),
            HttpError::Timeout => write!(f, "timed out reading request"),
            HttpError::BadRequestLine => write!(f, "malformed request line"),
            HttpError::MethodUnknown => write!(f, "method not allowed"),
            HttpError::UnsupportedVersion => write!(f, "unsupported HTTP version"),
            HttpError::BadHeader => write!(f, "malformed header"),
            HttpError::HeadTooLarge { limit } => {
                write!(f, "request head exceeds {limit} bytes")
            }
            HttpError::BadContentLength => write!(f, "unparseable Content-Length"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds cap of {limit}")
            }
            HttpError::UnsupportedTransferEncoding => {
                write!(f, "Transfer-Encoding not supported; send Content-Length")
            }
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
            std::io::ErrorKind::UnexpectedEof => HttpError::ConnectionClosed,
            _ => HttpError::Io(e),
        }
    }
}

/// Reads and parses one request from `stream`.
///
/// The caller is responsible for having installed socket read timeouts;
/// a timeout mid-request surfaces as [`HttpError::Timeout`]. A clean EOF
/// before the first byte surfaces as [`HttpError::ConnectionClosed`].
pub fn read_request(stream: &mut impl Read, limits: &HttpLimits) -> Result<Request, HttpError> {
    let (head, mut leftover) = read_head(stream, limits)?;
    let mut lines = head.split(|b| *b == b'\n').map(|l| {
        let l = l.strip_suffix(b"\r").unwrap_or(l);
        std::str::from_utf8(l).map_err(|_| HttpError::BadHeader)
    });
    let request_line = lines.next().ok_or(HttpError::BadRequestLine)??;
    let (method, path, query) = parse_request_line(request_line)?;

    let mut headers = Vec::new();
    for line in lines {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or(HttpError::BadHeader)?;
        if name.is_empty() || !name.bytes().all(|b| b.is_ascii_graphic()) {
            return Err(HttpError::BadHeader);
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let find = |n: &str| {
        headers
            .iter()
            .find(|(name, _)| name == n)
            .map(|(_, v)| v.as_str())
    };
    if find("transfer-encoding").is_some() {
        return Err(HttpError::UnsupportedTransferEncoding);
    }
    let content_length: u64 = match find("content-length") {
        Some(v) => v.parse().map_err(|_| HttpError::BadContentLength)?,
        None => 0,
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge {
            declared: content_length,
            limit: limits.max_body_bytes,
        });
    }

    // Body: whatever arrived with the head, then read the rest exactly.
    let mut body = std::mem::take(&mut leftover);
    let want = content_length as usize;
    let pipelined_excess = body.len() > want;
    if pipelined_excess {
        // Pipelined extra bytes are not supported; the flag forces the
        // connection closed after this response so the client notices
        // (keep-alive would silently eat its next request).
        body.truncate(want);
    }
    while body.len() < want {
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "body shorter than Content-Length",
            )));
        }
        let take = n.min(want - body.len());
        body.extend_from_slice(chunk.get(..take).unwrap_or(&[]));
    }

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
        pipelined_excess,
    })
}

/// Reads bytes until the `\r\n\r\n` head terminator, returning the head
/// and any body bytes read past it.
fn read_head(stream: &mut impl Read, limits: &HttpLimits) -> Result<(Vec<u8>, Vec<u8>), HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    loop {
        if let Some(end) = find_head_end(&buf) {
            let leftover = buf.split_off(end + 4);
            buf.truncate(end);
            return Ok((buf, leftover));
        }
        if buf.len() >= limits.max_head_bytes {
            return Err(HttpError::HeadTooLarge {
                limit: limits.max_head_bytes,
            });
        }
        let mut chunk = [0u8; 1024];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            if buf.is_empty() {
                return Err(HttpError::ConnectionClosed);
            }
            return Err(HttpError::BadRequestLine);
        }
        buf.extend_from_slice(chunk.get(..n).unwrap_or(&[]));
    }
}

/// Index of the `\r\n\r\n` terminator in `buf`, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Splits `METHOD SP TARGET SP HTTP/1.x` into its typed parts.
fn parse_request_line(line: &str) -> Result<(Method, String, String), HttpError> {
    let mut parts = line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::BadRequestLine);
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::UnsupportedVersion);
    }
    let method = Method::parse(method).ok_or(HttpError::MethodUnknown)?;
    if !target.starts_with('/') {
        return Err(HttpError::BadRequestLine);
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    Ok((method, path, query))
}

/// A response under construction: status, content type, extra headers,
/// and body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (e.g. `Retry-After`) appended verbatim.
    pub headers: Vec<(&'static str, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response with the given status.
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// Appends a `Retry-After: <seconds>` hint.
    pub fn retry_after(mut self, seconds: u64) -> Response {
        self.headers.push(("Retry-After", seconds.to_string()));
        self
    }

    /// The standard reason phrase for this status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            505 => "HTTP Version Not Supported",
            _ => "Response",
        }
    }

    /// Serializes the response (status line, headers, body) to `stream`.
    /// `head_only` suppresses the body for HEAD requests while keeping the
    /// `Content-Length` the GET would have had.
    pub fn write_to(
        &self,
        stream: &mut impl Write,
        head_only: bool,
        close: bool,
    ) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str(if close {
            "Connection: close\r\n\r\n"
        } else {
            "Connection: keep-alive\r\n\r\n"
        });
        stream.write_all(head.as_bytes())?;
        if !head_only {
            stream.write_all(&self.body)?;
        }
        stream.flush()
    }
}

/// Installs read/write timeouts on a TCP stream; errors are I/O-level and
/// returned typed.
pub fn install_timeouts(
    stream: &std::net::TcpStream,
    read: Duration,
    write: Duration,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(read))?;
    stream.set_write_timeout(Some(write))?;
    // Responses are written as head + body in separate syscalls; without
    // NODELAY, Nagle + delayed ACK adds ~40 ms stalls per request.
    stream.set_nodelay(true)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        let mut cursor = std::io::Cursor::new(bytes.to_vec());
        read_request(&mut cursor, &HttpLimits::default())
    }

    #[test]
    fn parses_get_with_query_string() {
        let r = parse(b"GET /metrics?format=json HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.path, "/metrics");
        assert_eq!(r.query, "format=json");
        assert_eq!(r.header("host"), Some("x"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let r = parse(b"POST /query HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(r.method, Method::Post);
        assert_eq!(r.body, b"abcd");
    }

    #[test]
    fn malformed_inputs_yield_typed_errors_not_panics() {
        assert!(matches!(parse(b""), Err(HttpError::ConnectionClosed)));
        assert!(matches!(
            parse(b"garbage\r\n\r\n"),
            Err(HttpError::BadRequestLine)
        ));
        assert!(matches!(
            parse(b"BREW /pot HTTP/1.1\r\n\r\n"),
            Err(HttpError::MethodUnknown)
        ));
        assert!(matches!(
            parse(b"GET / HTTP/2.0\r\n\r\n"),
            Err(HttpError::UnsupportedVersion)
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::BadHeader)
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"),
            Err(HttpError::BadContentLength)
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::UnsupportedTransferEncoding)
        ));
        assert!(matches!(
            parse(b"GET noslash HTTP/1.1\r\n\r\n"),
            Err(HttpError::BadRequestLine)
        ));
        // Truncated head (no terminator before EOF).
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nHost: x"),
            Err(HttpError::BadRequestLine)
        ));
    }

    #[test]
    fn size_limits_are_enforced() {
        let limits = HttpLimits {
            max_head_bytes: 64,
            max_body_bytes: 8,
        };
        let mut big_head =
            std::io::Cursor::new([b"GET / HTTP/1.1\r\n".as_slice(), &[b'a'; 100]].concat());
        assert!(matches!(
            read_request(&mut big_head, &limits),
            Err(HttpError::HeadTooLarge { .. })
        ));
        let mut big_body =
            std::io::Cursor::new(b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789".to_vec());
        assert!(matches!(
            read_request(&mut big_body, &limits),
            Err(HttpError::BodyTooLarge {
                declared: 9,
                limit: 8
            })
        ));
    }

    #[test]
    fn pipelined_extra_bytes_flag_the_connection_for_close() {
        let r = parse(
            b"POST /query HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcdPOST /query HTTP/1.1\r\n\r\n",
        )
        .unwrap();
        assert_eq!(r.body, b"abcd");
        assert!(r.pipelined_excess, "excess bytes must force close");
        let exact = parse(b"POST /query HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert!(!exact.pipelined_excess);
    }

    #[test]
    fn body_shorter_than_declared_is_a_typed_error() {
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::Io(_))
        ));
    }

    #[test]
    fn responses_serialize_with_status_and_length() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}".into())
            .retry_after(3)
            .write_to(&mut out, false, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"), "{text}");
        assert!(text.contains("Retry-After: 3\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("{\"ok\":true}"), "{text}");
    }

    #[test]
    fn head_only_suppresses_body() {
        let mut out = Vec::new();
        Response::text(200, "hello".into())
            .write_to(&mut out, true, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.ends_with("\r\n\r\n"), "{text}");
    }

    #[test]
    fn every_error_maps_to_a_4xx_or_5xx() {
        for e in [
            HttpError::Timeout,
            HttpError::BadRequestLine,
            HttpError::MethodUnknown,
            HttpError::UnsupportedVersion,
            HttpError::BadHeader,
            HttpError::HeadTooLarge { limit: 1 },
            HttpError::BadContentLength,
            HttpError::BodyTooLarge {
                declared: 2,
                limit: 1,
            },
            HttpError::UnsupportedTransferEncoding,
        ] {
            assert!((400..=599).contains(&e.status()), "{e}: {}", e.status());
        }
    }
}
