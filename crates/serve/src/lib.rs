//! # flexpath-serve
//!
//! An overload-safe, zero-dependency HTTP/1.1 front-end for FleXPath
//! query sessions: one process opens a persistent-store
//! [`Catalog`](flexpath::Catalog), shares each document's immutable
//! session across requests behind an `Arc`, and serves concurrent
//! queries under *governor-based admission control*.
//!
//! The headline property is robustness under load, built in tiers:
//!
//! 1. **Door** — accepted connections land in a bounded queue; overflow
//!    is answered `503 + Retry-After` before a single request byte is
//!    read.
//! 2. **Admission** — each query must claim an execution slot from the
//!    slow-starting [`AdmissionController`]; a full wait queue or an
//!    expired admission timeout sheds with a typed `429`.
//! 3. **Governor** — admitted queries run under server-clamped
//!    [`QueryLimits`](flexpath::QueryLimits)
//!    ([`ServePolicy::clamp`]): clients may *lower* budgets, never raise
//!    them past the operator's ceiling. A tripped budget degrades into a
//!    `200` partial labelled with its
//!    [`Completeness`](flexpath::Completeness) and `Retry-After` —
//!    overload produces fewer answers, not errors.
//! 4. **Drain** — shutdown stops accepting, finishes in-flight work
//!    under a drain deadline, and cancels anything that overstays via
//!    the shared governor token.
//!
//! The HTTP layer itself is hardened: request size caps, socket
//! timeouts, and a no-panic parse path where every malformed byte
//! stream maps to a typed [`HttpError`] and a 4xx/5xx.
//!
//! ## Endpoints
//!
//! | Endpoint | Method | Purpose |
//! |---|---|---|
//! | `/query` | POST | Run a top-K query; JSON results, optional trace |
//! | `/explain` | POST | EXPLAIN ANALYZE (text) for a query |
//! | `/catalogs` | GET | List store documents (+ quarantined files) |
//! | `/metrics` | GET | Prometheus text exposition (`?format=json` / `?format=text`) |
//! | `/healthz` | GET | Liveness: sessions, in-flight, concurrency, uptime |
//! | `/version` | GET | Build info, uptime, drain state, recorder config |
//! | `/debug/queries` | GET | Flight recorder: last completed queries (`?n=`) |
//! | `/debug/slow` | GET | Flight recorder: slow ring (threshold-gated) |
//!
//! ## Observability
//!
//! Every executed `/query` and `/explain` leaves a [`QueryRecord`] in the
//! process-wide [`FlightRecorder`] — effective limits, duration,
//! completeness, governor trip site, estimate-vs-actual skew, and an
//! FNV-1a hash of the deterministic counter fingerprint. Records at or
//! above [`ServePolicy::slow_query_threshold`] also land in the slow ring
//! and (with [`ServePolicy::slow_log`]) a JSON-lines slow-query log. The
//! recorder reads *completed* results only, so enabling it never perturbs
//! engine counters or fingerprints.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod admission;
pub mod client;
pub mod error;
pub mod http;
pub mod json;
pub mod policy;
pub mod recorder;
pub mod routes;
pub mod server;
pub mod state;

pub use admission::{AdmissionController, AdmissionError, Permit};
pub use client::{http_call, Client, ClientError, ClientResponse};
pub use error::ServeError;
pub use http::{HttpError, HttpLimits, Method, Request, Response};
pub use policy::ServePolicy;
pub use recorder::{FlightRecorder, QueryRecord};
pub use server::{Server, ServerHandle};
pub use state::{ServerState, SessionInfo};
