//! Server policy: every knob that bounds what one request, one
//! connection, or the whole process may consume.
//!
//! The policy is the *server-side* half of the governor story: clients ask
//! for deadlines and budgets per request, and the policy clamps each axis
//! to a ceiling ([`ServePolicy::clamp`]) so no client can opt out of
//! admission control. Requests that arrive without limits get the policy's
//! defaults — an unlimited query is something the operator must configure,
//! never something a client can request.

use crate::http::HttpLimits;
use flexpath_engine::QueryLimits;
use std::time::Duration;

/// Everything the server enforces per request, per connection, and
/// process-wide. Build one with the field syntax over
/// [`ServePolicy::default`].
#[derive(Debug, Clone)]
pub struct ServePolicy {
    /// Worker threads serving connections (= maximum concurrent
    /// connections being read/written).
    pub workers: usize,
    /// Accepted connections waiting for a worker. Overflow is shed at the
    /// door with `503`.
    pub conn_queue_depth: usize,
    /// Queries allowed to execute concurrently once slow-start has
    /// finished ramping.
    pub max_concurrent_queries: usize,
    /// Initial concurrent-query limit; each completed query raises the
    /// limit by one until [`ServePolicy::max_concurrent_queries`]
    /// (slow-start: a cold process with cold caches serves few queries at
    /// once and earns capacity as it proves it can complete work).
    pub initial_concurrent_queries: usize,
    /// How long a request may wait for an execution slot before it is
    /// shed with `429`.
    pub admission_timeout: Duration,
    /// Requests allowed to wait for an execution slot at once; overflow
    /// is shed immediately with `429`.
    pub admission_queue_depth: usize,
    /// Deadline applied to requests that do not ask for one.
    pub default_deadline: Duration,
    /// Ceiling for every per-request limit axis; requested limits are
    /// clamped to this with [`QueryLimits::clamp_to`].
    pub limit_ceiling: QueryLimits,
    /// Socket read timeout (whole-request bound together with the HTTP
    /// size caps: a peer may hold a connection no longer than this
    /// between bytes).
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Request head/body size caps.
    pub http: HttpLimits,
    /// Requests served on one keep-alive connection before the server
    /// closes it (bounds per-connection state lifetime).
    pub max_requests_per_conn: usize,
    /// How long `SIGINT`/shutdown waits for in-flight requests before
    /// cancelling their queries via the drain [`flexpath::CancelToken`].
    pub drain_deadline: Duration,
    /// The `Retry-After` hint (seconds) attached to shed responses and to
    /// partial (budget-tripped) results.
    pub retry_after_secs: u64,
    /// Honor the `test_delay_ms` request field (tests and load harness
    /// only: makes a request hold its execution slot for a fixed time so
    /// overload is deterministic). Never enable in production.
    pub allow_test_delay: bool,
    /// Completed-query records kept by the flight recorder (served from
    /// `/debug/queries`). Zero still keeps a minimal ring (one record per
    /// stripe) — the recorder itself cannot be disabled, only shrunk.
    pub recorder_capacity: usize,
    /// Queries at or above this duration are mirrored into the slow ring
    /// (`/debug/slow`) and, when [`ServePolicy::slow_log`] is set,
    /// appended to the slow-query log file.
    pub slow_query_threshold: Duration,
    /// JSON-lines slow-query log file (`--slow-log` on the CLI). `None`
    /// keeps the slow ring in memory only.
    pub slow_log: Option<std::path::PathBuf>,
}

impl Default for ServePolicy {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 32);
        ServePolicy {
            workers,
            conn_queue_depth: 64,
            max_concurrent_queries: workers,
            initial_concurrent_queries: 1,
            admission_timeout: Duration::from_millis(500),
            admission_queue_depth: 32,
            default_deadline: Duration::from_secs(2),
            limit_ceiling: QueryLimits::default()
                .with_deadline(Duration::from_secs(10))
                .with_max_candidate_answers(5_000_000)
                .with_max_ft_postings_scanned(500_000_000)
                .with_max_memory_hint(1 << 32),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            http: HttpLimits::default(),
            max_requests_per_conn: 10_000,
            drain_deadline: Duration::from_secs(5),
            retry_after_secs: 1,
            allow_test_delay: false,
            recorder_capacity: 256,
            slow_query_threshold: Duration::from_millis(500),
            slow_log: None,
        }
    }
}

impl ServePolicy {
    /// Clamps `requested` limits to the policy ceiling and applies the
    /// default deadline when the request set none. The result never
    /// exceeds the ceiling on any axis.
    pub fn clamp(&self, requested: &QueryLimits) -> QueryLimits {
        let mut requested = requested.clone();
        if requested.deadline.is_none() {
            // Default first, clamp second: the ceiling caps the default
            // too if an operator configures them inconsistently.
            requested.deadline = Some(self.default_deadline);
        }
        requested.clamp_to(&self.limit_ceiling)
    }

    /// A policy scaled down for unit tests: tiny queues, short timeouts,
    /// deterministic overload via `test_delay_ms`.
    pub fn for_tests() -> Self {
        ServePolicy {
            workers: 4,
            conn_queue_depth: 2,
            max_concurrent_queries: 2,
            initial_concurrent_queries: 2,
            admission_timeout: Duration::from_millis(50),
            admission_queue_depth: 1,
            default_deadline: Duration::from_secs(2),
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            drain_deadline: Duration::from_secs(2),
            allow_test_delay: true,
            recorder_capacity: 32,
            // Everything is "slow" under tests so /debug/slow is exercised
            // deterministically without actually sleeping.
            slow_query_threshold: Duration::ZERO,
            ..ServePolicy::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_bounds_every_axis_and_defaults_the_deadline() {
        let policy = ServePolicy {
            default_deadline: Duration::from_millis(100),
            limit_ceiling: QueryLimits::default()
                .with_deadline(Duration::from_secs(1))
                .with_max_candidate_answers(10),
            ..ServePolicy::default()
        };
        // No limits requested: default deadline + ceiling caps.
        let clamped = policy.clamp(&QueryLimits::default());
        assert_eq!(clamped.deadline, Some(Duration::from_millis(100)));
        assert_eq!(clamped.max_candidate_answers, Some(10));
        // A greedy request cannot exceed the ceiling.
        let greedy = QueryLimits::default()
            .with_deadline(Duration::from_secs(3600))
            .with_max_candidate_answers(u64::MAX - 1);
        let clamped = policy.clamp(&greedy);
        assert_eq!(clamped.deadline, Some(Duration::from_secs(1)));
        assert_eq!(clamped.max_candidate_answers, Some(10));
        // A modest request passes through.
        let modest = QueryLimits::default().with_deadline(Duration::from_millis(5));
        assert_eq!(
            policy.clamp(&modest).deadline,
            Some(Duration::from_millis(5))
        );
    }

    #[test]
    fn defaults_are_sane() {
        let p = ServePolicy::default();
        assert!(p.workers >= 2);
        assert!(p.max_concurrent_queries >= 1);
        assert!(p.initial_concurrent_queries <= p.max_concurrent_queries);
        assert!(p.limit_ceiling.deadline.is_some());
    }
}
