//! The threaded server: bounded accept queue, worker pool, keep-alive
//! connection handling, and the drain lifecycle.
//!
//! ## Lifecycle
//!
//! [`Server::run`] owns the process until shutdown. The accept loop is
//! non-blocking (1 ms poll) so it can notice shutdown promptly without
//! platform-specific signal plumbing; accepted connections land in a
//! *bounded* queue and overflow is answered `503` at the door — the
//! server's first load-shedding tier, before any request bytes are read.
//! Workers pop connections and serve keep-alive request loops; each query
//! additionally passes the [`AdmissionController`] (the second tier,
//! `429`/`503` per request).
//!
//! ## Drain
//!
//! [`ServerHandle::shutdown`] (e.g. from a SIGINT handler) flips the
//! server into draining:
//!
//! 1. the accept loop stops accepting and `503`s everything still queued;
//! 2. admission refuses new queries ([`AdmissionError::Draining`]) while
//!    in-flight queries keep their permits;
//! 3. idle keep-alive connections are unblocked via
//!    `shutdown(Shutdown::Read)` so their reads return EOF immediately
//!    instead of dangling until the read timeout;
//! 4. a watchdog fires the shared drain [`CancelToken`] at the drain
//!    deadline, stopping any still-running query at its next governor
//!    checkpoint — in-flight work completes as `200` partials, and
//!    [`Server::run`] returns.
//!
//! [`AdmissionError::Draining`]: crate::admission::AdmissionError::Draining

use crate::admission::AdmissionController;
use crate::error::ServeError;
use crate::http::{self, HttpError, Method, Response};
use crate::policy::ServePolicy;
use crate::recorder::FlightRecorder;
use crate::routes::{self, RouteContext};
use crate::state::ServerState;
use flexpath::CancelToken;
use flexpath_engine::metrics;
use std::collections::{BTreeMap, VecDeque};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// State shared between the accept loop, workers, the watchdog, and every
/// [`ServerHandle`].
#[derive(Debug)]
struct Shared {
    shutdown: AtomicBool,
    drain_started: Mutex<Option<Instant>>,
    drain_cancel: CancelToken,
    admission: AdmissionController,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    /// Clones of every connection a worker is currently serving, so drain
    /// can unblock their reads. Keyed by a serial id.
    conns: Mutex<BTreeMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
    /// The process's query flight recorder (see [`crate::recorder`]).
    recorder: FlightRecorder,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Shared {
    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

/// A handle for requesting shutdown from another thread (typically a
/// signal handler's monitor thread). Cloneable and cheap.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begins the drain: stop accepting, refuse new queries, unblock idle
    /// connections, and bound in-flight work by the drain deadline.
    /// Idempotent; returns immediately ([`Server::run`] returns once the
    /// drain completes).
    pub fn shutdown(&self) {
        let mut started = lock(&self.shared.drain_started);
        if started.is_none() {
            *started = Some(Instant::now());
        }
        drop(started);
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.admission.drain();
        // Unblock idle keep-alive reads: EOF beats waiting out the read
        // timeout. In-flight responses still write fine — only the read
        // half closes.
        for conn in lock(&self.shared.conns).values() {
            let _ = conn.shutdown(Shutdown::Read);
        }
        self.shared.queue_cv.notify_all();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shared.is_shutdown()
    }
}

/// The query service: a TCP listener plus shared state. Bind with
/// [`Server::bind`], then call [`Server::run`] (which blocks until a
/// [`ServerHandle::shutdown`]).
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    policy: ServePolicy,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr().ok())
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds the listener and prepares shared state. `addr` may be
    /// `"127.0.0.1:0"` to pick a free port (see [`Server::local_addr`]).
    pub fn bind(
        addr: &str,
        state: Arc<ServerState>,
        policy: ServePolicy,
    ) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let mut recorder =
            FlightRecorder::new(policy.recorder_capacity, policy.slow_query_threshold);
        if let Some(path) = &policy.slow_log {
            recorder = recorder.with_slow_log(path)?;
        }
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            drain_started: Mutex::new(None),
            drain_cancel: CancelToken::new(),
            admission: AdmissionController::new(
                policy.max_concurrent_queries,
                policy.initial_concurrent_queries,
                policy.admission_queue_depth,
                policy.admission_timeout,
            ),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            conns: Mutex::new(BTreeMap::new()),
            next_conn_id: AtomicU64::new(0),
            recorder,
        });
        Ok(Server {
            listener,
            state,
            policy,
            shared,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, ServeError> {
        Ok(self.listener.local_addr()?)
    }

    /// A shutdown handle, safe to move to other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves until shutdown, then drains and returns. Worker threads are
    /// scoped: when this returns, every connection is closed and every
    /// query has finished (completely or as a drain-cancelled partial).
    pub fn run(self) -> Result<(), ServeError> {
        let shared = &self.shared;
        let policy = &self.policy;
        let state = &self.state;
        std::thread::scope(|scope| {
            for _ in 0..policy.workers.max(1) {
                scope.spawn(move || worker_loop(shared, state, policy));
            }
            scope.spawn(move || drain_watchdog(shared, policy.drain_deadline));

            // Accept loop: non-blocking so shutdown is noticed within ~1 ms.
            while !shared.is_shutdown() {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        metrics::global().add("serve.conns.accepted", 1);
                        let mut queue = lock(&shared.queue);
                        if queue.len() >= policy.conn_queue_depth {
                            drop(queue);
                            // First shedding tier: the door. No request
                            // bytes are read from an overflowing client.
                            shed_connection(stream, policy);
                        } else {
                            queue.push_back(stream);
                            drop(queue);
                            shared.queue_cv.notify_one();
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => {
                        // Transient accept failure (e.g. EMFILE): back off
                        // briefly rather than spinning or dying.
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            }

            // Drain: everything still queued gets a typed 503 without its
            // request being read; workers exit once the queue stays empty.
            let queued: Vec<TcpStream> = lock(&shared.queue).drain(..).collect();
            for stream in queued {
                shed_connection(stream, policy);
            }
            shared.queue_cv.notify_all();
        });
        Ok(())
    }
}

/// Writes a `503 + Retry-After` and closes — used for door-level shedding
/// and for connections still queued when the drain begins.
///
/// The write is a single best-effort non-blocking attempt: this runs on
/// the accept loop, and a slow or unresponsive client being shed must not
/// stall `accept()` for well-behaved connections — exactly the moment
/// (overload) when that would hurt most. A freshly accepted socket's send
/// buffer is empty, so the small 503 body virtually always fits; when it
/// doesn't, the client just sees the close.
fn shed_connection(stream: TcpStream, policy: &ServePolicy) {
    metrics::global().add("serve.shed.at_door", 1);
    let resp = routes::err_json(503, "overloaded", "connection queue full; retry later")
        .retry_after(policy.retry_after_secs);
    let mut buf = Vec::with_capacity(256);
    let _ = resp.write_to(&mut buf, false, true);
    if stream.set_nonblocking(true).is_ok() {
        use std::io::Write as _;
        let _ = (&stream).write(&buf);
    }
}

/// Fires the drain [`CancelToken`] if in-flight work outlives the drain
/// deadline; exits quietly once the server is idle.
fn drain_watchdog(shared: &Shared, drain_deadline: Duration) {
    loop {
        std::thread::sleep(Duration::from_millis(5));
        if !shared.is_shutdown() {
            continue;
        }
        let idle = lock(&shared.queue).is_empty()
            && lock(&shared.conns).is_empty()
            && shared.admission.in_flight() == 0;
        if idle {
            return;
        }
        let started = lock(&shared.drain_started).unwrap_or_else(Instant::now);
        if started.elapsed() >= drain_deadline {
            metrics::global().add("serve.drain.deadline_fired", 1);
            shared.drain_cancel.cancel();
            return;
        }
    }
}

/// One worker: pop connections off the shared queue and serve them until
/// shutdown *and* the queue is empty.
fn worker_loop(shared: &Shared, state: &ServerState, policy: &ServePolicy) {
    loop {
        let stream = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(s) = queue.pop_front() {
                    break Some(s);
                }
                if shared.is_shutdown() {
                    break None;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner());
                queue = guard;
            }
        };
        match stream {
            Some(stream) => handle_connection(shared, state, policy, stream),
            None => return,
        }
    }
}

/// Serves one connection's keep-alive request loop. All errors are typed:
/// parse failures get their mapped status, the connection closes, and the
/// worker moves on — nothing here can panic or hang past the socket
/// timeouts.
fn handle_connection(
    shared: &Shared,
    state: &ServerState,
    policy: &ServePolicy,
    mut stream: TcpStream,
) {
    if http::install_timeouts(&stream, policy.read_timeout, policy.write_timeout).is_err() {
        return;
    }
    // Register a clone so drain can unblock this connection's reads.
    let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
    if let Ok(clone) = stream.try_clone() {
        lock(&shared.conns).insert(conn_id, clone);
    }
    serve_requests(shared, state, policy, &mut stream);
    lock(&shared.conns).remove(&conn_id);
    let _ = stream.shutdown(Shutdown::Both);
}

fn serve_requests(
    shared: &Shared,
    state: &ServerState,
    policy: &ServePolicy,
    stream: &mut TcpStream,
) {
    let ctx = RouteContext {
        state,
        policy,
        admission: &shared.admission,
        drain_cancel: &shared.drain_cancel,
        recorder: &shared.recorder,
    };
    for served in 0..policy.max_requests_per_conn.max(1) {
        // A connection popped (or parked) after shutdown gets a shed
        // response without its request being read.
        if shared.is_shutdown() {
            let resp = routes::err_json(503, "draining", "server is draining")
                .retry_after(policy.retry_after_secs);
            let _ = resp.write_to(stream, false, true);
            return;
        }
        let req = match http::read_request(stream, &policy.http) {
            Ok(req) => req,
            Err(HttpError::ConnectionClosed) => return,
            Err(e) => {
                metrics::global().add("serve.http.errors", 1);
                let err = ServeError::Http(e);
                let resp = routes::error_response(&ctx, &err);
                let _ = resp.write_to(stream, false, true);
                return;
            }
        };
        let head_only = req.method == Method::Head;
        let close =
            req.wants_close() || req.pipelined_excess || served + 1 == policy.max_requests_per_conn;
        let resp: Response = routes::dispatch(&ctx, &req);
        if resp.write_to(stream, head_only, close).is_err() {
            return;
        }
        if close {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // End-to-end coverage lives in `tests/serve.rs`; here we only check
    // the pieces that are awkward to reach over a real socket.

    #[test]
    fn bind_on_port_zero_yields_an_addr_and_handle() {
        let dir = std::env::temp_dir().join(format!("flexpath-serve-bind-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let state = Arc::new(ServerState::open(&dir).unwrap());
        let server = Server::bind("127.0.0.1:0", state, ServePolicy::for_tests()).unwrap();
        let addr = server.local_addr().unwrap();
        assert_ne!(addr.port(), 0);
        let handle = server.handle();
        assert!(!handle.is_shutdown());
        handle.shutdown();
        assert!(handle.is_shutdown());
        // run() after shutdown returns promptly (nothing to drain).
        server.run().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
