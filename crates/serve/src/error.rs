//! The service's typed error, and its mapping to HTTP statuses.
//!
//! Everything that can go wrong between "bytes arrived on a socket" and
//! "a query ran" is one of these variants; the no-panic policy means the
//! request path *must* produce one of them rather than unwinding. The
//! mapping to a status code lives here so every handler sheds and fails
//! with consistent semantics:
//!
//! | variant                         | status |
//! |---------------------------------|--------|
//! | `Http` (parse/timeout/overrun)  | its [`HttpError::status`] |
//! | `BadRequest` (body/field error) | 400 |
//! | `Store(DocumentNotFound)`       | 404 |
//! | `Store` (corrupt/unreadable)    | 500 |
//! | `Session` (lazy first-touch fault) | 500 |
//! | `Shed(QueueFull/Timeout)`       | 429 |
//! | `Shed(Draining)`                | 503 |

use crate::admission::AdmissionError;
use crate::http::HttpError;
use flexpath::{EngineError, SourceError, StoreError};

/// Any failure while serving one request.
#[derive(Debug)]
pub enum ServeError {
    /// The HTTP layer rejected the request bytes.
    Http(HttpError),
    /// The request parsed as HTTP but its payload is invalid (bad JSON,
    /// missing field, unknown algorithm, unparseable query, …).
    BadRequest(String),
    /// The store layer failed (missing document, corrupt file, I/O).
    Store(StoreError),
    /// A lazily-opened session faulted on first touch of a store section
    /// (checksum mismatch, decode corruption, I/O, budget trip). The open
    /// succeeded, so this surfaces mid-query — always a 500, never a 4xx:
    /// the request was fine, the resident data is not.
    Session(SourceError),
    /// Admission control shed the request.
    Shed(AdmissionError),
    /// Binding or accepting on the listener socket failed.
    Io(std::io::Error),
}

impl ServeError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::Http(e) => e.status(),
            ServeError::BadRequest(_) => 400,
            ServeError::Store(StoreError::DocumentNotFound { .. }) => 404,
            ServeError::Store(StoreError::InvalidName { .. }) => 400,
            ServeError::Store(_) => 500,
            ServeError::Session(_) => 500,
            ServeError::Shed(AdmissionError::QueueFull | AdmissionError::Timeout) => 429,
            ServeError::Shed(AdmissionError::Draining) => 503,
            ServeError::Io(_) => 500,
        }
    }

    /// Stable snake_case discriminator carried in error JSON bodies.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Http(_) => "http",
            ServeError::BadRequest(_) => "bad_request",
            ServeError::Store(StoreError::DocumentNotFound { .. }) => "not_found",
            ServeError::Store(_) => "store",
            ServeError::Session(_) => "session",
            ServeError::Shed(AdmissionError::QueueFull) => "shed_queue_full",
            ServeError::Shed(AdmissionError::Timeout) => "shed_timeout",
            ServeError::Shed(AdmissionError::Draining) => "draining",
            ServeError::Io(_) => "io",
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Http(e) => write!(f, "{e}"),
            ServeError::BadRequest(m) => write!(f, "{m}"),
            ServeError::Store(e) => write!(f, "{e}"),
            ServeError::Session(e) => write!(f, "session fault: {e}"),
            ServeError::Shed(e) => write!(f, "{e}"),
            ServeError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Http(e) => Some(e),
            ServeError::Store(e) => Some(e),
            ServeError::Session(e) => Some(e),
            ServeError::Shed(e) => Some(e),
            ServeError::Io(e) => Some(e),
            ServeError::BadRequest(_) => None,
        }
    }
}

impl From<HttpError> for ServeError {
    fn from(e: HttpError) -> Self {
        ServeError::Http(e)
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Store(e)
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        match e {
            // The only engine failure a served session can hit after
            // parsing: a lazy store part failed to materialize.
            EngineError::Store(src) => ServeError::Session(src),
            // Parse/collection errors never reach serve (sessions come
            // from the catalog, not raw XML) — classify them as request
            // faults rather than panicking on an "impossible" arm.
            other => ServeError::BadRequest(other.to_string()),
        }
    }
}

impl From<AdmissionError> for ServeError {
    fn from(e: AdmissionError) -> Self {
        ServeError::Shed(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_follow_the_documented_mapping() {
        assert_eq!(ServeError::BadRequest("x".into()).status(), 400);
        assert_eq!(
            ServeError::Store(StoreError::DocumentNotFound { name: "d".into() }).status(),
            404
        );
        assert_eq!(ServeError::Store(StoreError::BadMagic).status(), 500);
        assert_eq!(ServeError::Shed(AdmissionError::QueueFull).status(), 429);
        assert_eq!(ServeError::Shed(AdmissionError::Timeout).status(), 429);
        assert_eq!(ServeError::Shed(AdmissionError::Draining).status(), 503);
        assert_eq!(ServeError::Http(HttpError::BadRequestLine).status(), 400);
        assert_eq!(
            ServeError::Shed(AdmissionError::Draining).kind(),
            "draining"
        );
    }

    #[test]
    fn lazy_session_faults_map_to_typed_500s() {
        let src = SourceError {
            part: "index",
            kind: flexpath::SourceErrorKind::Checksum,
            detail: "checksum mismatch in section postings".into(),
        };
        let e = ServeError::from(EngineError::Store(src));
        assert!(matches!(e, ServeError::Session(_)));
        assert_eq!(e.status(), 500);
        assert_eq!(e.kind(), "session");
        assert!(e.to_string().starts_with("session fault:"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
