//! Admission control: a bounded, slow-starting concurrency governor for
//! query execution.
//!
//! The engine's per-query governor bounds *one* query; this module bounds
//! *how many* queries run at once, and what happens to the rest. The
//! contract is typed, never-blocking-forever load shedding:
//!
//! * an execution slot is free → the request is admitted immediately;
//! * all slots busy but the wait queue has room → the request waits up to
//!   the admission timeout, then is shed ([`AdmissionError::Timeout`]);
//! * the wait queue is full → shed immediately ([`AdmissionError::QueueFull`]);
//! * the server is draining → shed immediately ([`AdmissionError::Draining`]).
//!
//! The concurrency limit *slow-starts*: it begins at a configured floor
//! and earns one slot per completed query up to the maximum, so a cold
//! process (cold FT caches, cold page cache) is not hit with full
//! concurrency in its first milliseconds.

use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Why a request was not admitted. Each variant maps to one shed
/// response; see `routes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The wait queue is at capacity — the server is overloaded *now*.
    QueueFull,
    /// The request waited its full admission timeout without a slot
    /// freeing up.
    Timeout,
    /// The server is draining and admits no new work.
    Draining,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::QueueFull => write!(f, "admission queue full"),
            AdmissionError::Timeout => write!(f, "timed out waiting for an execution slot"),
            AdmissionError::Draining => write!(f, "server is draining"),
        }
    }
}

impl std::error::Error for AdmissionError {}

#[derive(Debug)]
struct Inner {
    /// Queries currently holding a slot.
    in_flight: usize,
    /// Requests currently blocked in [`AdmissionController::admit`].
    waiting: usize,
    /// Current slow-start limit (≤ `max_concurrent`).
    limit: usize,
    /// Draining: all admissions refused.
    draining: bool,
}

/// The shared admission state. One per server; cheap to share behind an
/// `Arc`.
#[derive(Debug)]
pub struct AdmissionController {
    inner: Mutex<Inner>,
    freed: Condvar,
    max_concurrent: usize,
    max_waiting: usize,
    max_wait: Duration,
}

// Admission state is a handful of counters; a panic while holding the
// lock (impossible in this no-panic crate, but belt and braces) cannot
// leave them un-repairable, so poison is ignored.
fn lock<'a>(m: &'a Mutex<Inner>) -> MutexGuard<'a, Inner> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl AdmissionController {
    /// A controller with `max_concurrent` slots, starting its slow-start
    /// ramp at `initial` (clamped to `1..=max_concurrent`), a wait queue
    /// of `max_waiting`, and a per-request admission timeout.
    pub fn new(
        max_concurrent: usize,
        initial: usize,
        max_waiting: usize,
        max_wait: Duration,
    ) -> Self {
        let max_concurrent = max_concurrent.max(1);
        AdmissionController {
            inner: Mutex::new(Inner {
                in_flight: 0,
                waiting: 0,
                limit: initial.clamp(1, max_concurrent),
                draining: false,
            }),
            freed: Condvar::new(),
            max_concurrent,
            max_waiting,
            max_wait,
        }
    }

    /// Tries to claim an execution slot, waiting up to the admission
    /// timeout. On success the returned [`Permit`] must be kept alive for
    /// the duration of the query; dropping it frees the slot and advances
    /// slow-start.
    pub fn admit(&self) -> Result<Permit<'_>, AdmissionError> {
        let deadline = Instant::now() + self.max_wait;
        let mut inner = lock(&self.inner);
        loop {
            if inner.draining {
                return Err(AdmissionError::Draining);
            }
            if inner.in_flight < inner.limit {
                inner.in_flight += 1;
                return Ok(Permit { ctrl: self });
            }
            if inner.waiting >= self.max_waiting {
                return Err(AdmissionError::QueueFull);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(AdmissionError::Timeout);
            }
            inner.waiting += 1;
            let (guard, _timeout) = self
                .freed
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
            inner.waiting -= 1;
            // Loop: re-check slot/drain/deadline. A timeout with a freed
            // slot still admits (the re-check sees in_flight < limit).
        }
    }

    /// Switches to draining: every current and future [`admit`] call
    /// returns [`AdmissionError::Draining`]; in-flight permits are
    /// unaffected.
    ///
    /// [`admit`]: AdmissionController::admit
    pub fn drain(&self) {
        lock(&self.inner).draining = true;
        self.freed.notify_all();
    }

    /// Whether [`AdmissionController::drain`] has been called.
    pub fn is_draining(&self) -> bool {
        lock(&self.inner).draining
    }

    /// Queries currently holding slots (for `/healthz` and tests).
    pub fn in_flight(&self) -> usize {
        lock(&self.inner).in_flight
    }

    /// The current slow-start concurrency limit (for `/healthz` and
    /// tests).
    pub fn current_limit(&self) -> usize {
        lock(&self.inner).limit
    }

    fn release(&self) {
        let mut inner = lock(&self.inner);
        inner.in_flight = inner.in_flight.saturating_sub(1);
        // Slow-start: each completed query earns one slot of capacity.
        if inner.limit < self.max_concurrent {
            inner.limit += 1;
        }
        drop(inner);
        self.freed.notify_all();
    }
}

/// An admitted request's execution slot. Freed (and slow-start advanced)
/// on drop, so early returns and shed paths can never leak a slot.
#[derive(Debug)]
pub struct Permit<'a> {
    ctrl: &'a AdmissionController,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.ctrl.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admits_up_to_the_limit_then_sheds() {
        let ctrl = AdmissionController::new(2, 2, 0, Duration::from_millis(10));
        let p1 = ctrl.admit().unwrap();
        let p2 = ctrl.admit().unwrap();
        // No wait queue: the third request is shed instantly.
        assert_eq!(ctrl.admit().unwrap_err(), AdmissionError::QueueFull);
        drop(p1);
        let _p3 = ctrl.admit().unwrap();
        drop(p2);
        assert_eq!(ctrl.in_flight(), 1);
    }

    #[test]
    fn waiting_request_times_out_with_a_typed_error() {
        let ctrl = AdmissionController::new(1, 1, 4, Duration::from_millis(30));
        let _p = ctrl.admit().unwrap();
        let t = Instant::now();
        assert_eq!(ctrl.admit().unwrap_err(), AdmissionError::Timeout);
        assert!(t.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn waiting_request_is_admitted_when_a_slot_frees() {
        let ctrl = Arc::new(AdmissionController::new(1, 1, 4, Duration::from_secs(5)));
        let p = ctrl.admit().unwrap();
        let worker = {
            let ctrl = Arc::clone(&ctrl);
            std::thread::spawn(move || ctrl.admit().map(drop).is_ok())
        };
        std::thread::sleep(Duration::from_millis(20));
        drop(p); // frees the slot; the waiter should be admitted
        assert!(worker.join().unwrap_or(false));
    }

    #[test]
    fn slow_start_ramps_one_slot_per_completion() {
        let ctrl = AdmissionController::new(4, 1, 0, Duration::from_millis(1));
        assert_eq!(ctrl.current_limit(), 1);
        let p = ctrl.admit().unwrap();
        assert_eq!(ctrl.admit().unwrap_err(), AdmissionError::QueueFull);
        drop(p);
        assert_eq!(ctrl.current_limit(), 2);
        let p1 = ctrl.admit().unwrap();
        let p2 = ctrl.admit().unwrap();
        assert_eq!(ctrl.admit().unwrap_err(), AdmissionError::QueueFull);
        drop(p1);
        drop(p2);
        assert_eq!(ctrl.current_limit(), 4);
        // The ramp stops at max_concurrent.
        for _ in 0..10 {
            drop(ctrl.admit().unwrap());
        }
        assert_eq!(ctrl.current_limit(), 4);
    }

    #[test]
    fn draining_refuses_admission_and_wakes_waiters() {
        let ctrl = Arc::new(AdmissionController::new(1, 1, 4, Duration::from_secs(30)));
        let p = ctrl.admit().unwrap();
        let waiter = {
            let ctrl = Arc::clone(&ctrl);
            std::thread::spawn(move || ctrl.admit().err())
        };
        std::thread::sleep(Duration::from_millis(20));
        ctrl.drain();
        assert_eq!(waiter.join().ok().flatten(), Some(AdmissionError::Draining));
        assert_eq!(ctrl.admit().unwrap_err(), AdmissionError::Draining);
        drop(p); // in-flight permit still releases cleanly
        assert_eq!(ctrl.in_flight(), 0);
    }
}
