//! Shared server state: the catalog directory and the cache of opened
//! sessions.
//!
//! A [`FleXPath`] session is immutable after construction and `Send +
//! Sync`, so one `Arc<FleXPath>` per document serves every concurrent
//! request — queries share the document arena, statistics, inverted
//! index, and the sharded full-text cache without copying any of them.
//! The cache here is *insert-only*: a catalog document is decoded from
//! the FXPSTORE at most once per process, then shared for the lifetime
//! of the server. Decoding happens *outside* the map lock, behind a
//! per-document slot: a cold load (potentially seconds for a large
//! store) only blocks other requests for the *same* document — cache
//! hits for already-loaded documents never wait behind it.

use crate::error::ServeError;
use flexpath::{Catalog, FleXPath, SourceResidency};
use flexpath_engine::metrics;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// One document's place in the cache: the loaded session once ready, and
/// a mutex serializing the load among requests that raced for a cold
/// document. Holding `loading` does NOT hold the sessions map lock.
#[derive(Default)]
struct SessionSlot {
    session: OnceLock<Arc<FleXPath>>,
    /// How long the store open took for this slot (set just before
    /// `session`; zero for injected in-memory sessions). With lazy opens
    /// this measures header + meta validation, not full decode.
    open: OnceLock<Duration>,
    loading: Mutex<()>,
}

/// One loaded session's vitals, reported per catalog document in
/// `/version`.
#[derive(Debug, Clone)]
pub struct SessionInfo {
    /// Catalog document name.
    pub name: String,
    /// Store open duration for this slot (zero for injected sessions).
    pub open: Duration,
    /// Whether the session is lazily backed by a store file.
    pub lazy: bool,
    /// Whether the backing bytes are memory-mapped (false when owned or
    /// when the session is not store-backed).
    pub mapped: bool,
    /// Which parts have been decoded so far.
    pub residency: SourceResidency,
}

/// The catalog plus the session cache. One per server, shared by every
/// worker behind an `Arc`.
pub struct ServerState {
    catalog: Catalog,
    sessions: RwLock<BTreeMap<String, Arc<SessionSlot>>>,
    /// Anchor for `/healthz` / `/version` uptime reporting. A monotonic
    /// `Instant` (never wall-clock — `SystemTime::now` is banned
    /// workspace-wide) captured when the state was created.
    started: Instant,
}

impl std::fmt::Debug for ServerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // FleXPath sessions are large and not Debug; show names only.
        f.debug_struct("ServerState")
            .field("catalog", &self.catalog)
            .field(
                "sessions",
                &read_lock(&self.sessions).keys().collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl ServerState {
    /// State over the catalog at `dir` (created if absent).
    pub fn open(dir: &std::path::Path) -> Result<Self, ServeError> {
        Ok(ServerState {
            catalog: Catalog::open(dir)?,
            sessions: RwLock::new(BTreeMap::new()),
            started: Instant::now(),
        })
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Time since this state (≈ the server process) was created.
    pub fn uptime(&self) -> std::time::Duration {
        self.started.elapsed()
    }

    /// Injects an already-built session under `name`, bypassing the
    /// catalog (tests and the load benchmark index in memory instead of
    /// round-tripping through disk).
    pub fn insert_session(&self, name: &str, flex: FleXPath) {
        let slot = Arc::new(SessionSlot::default());
        let _ = slot.open.set(Duration::ZERO);
        let _ = slot.session.set(Arc::new(flex));
        write_lock(&self.sessions).insert(name.to_string(), slot);
    }

    /// Number of loaded sessions (for `/healthz`). Slots still mid-load
    /// don't count.
    pub fn session_count(&self) -> usize {
        read_lock(&self.sessions)
            .values()
            .filter(|slot| slot.session.get().is_some())
            .count()
    }

    /// The session for document `name`, loading and caching it from the
    /// store on first use. Concurrent first requests for the same
    /// document load it once (serialized on that document's slot); cache
    /// hits for *other* documents proceed without waiting — the map's
    /// write lock is only held for the cheap slot insertion, never across
    /// the decode.
    pub fn session(&self, name: &str) -> Result<Arc<FleXPath>, ServeError> {
        if let Some(slot) = read_lock(&self.sessions).get(name) {
            if let Some(s) = slot.session.get() {
                metrics::global().add("serve.sessions.cache_hits", 1);
                return Ok(s.clone());
            }
        }
        let slot = write_lock(&self.sessions)
            .entry(name.to_string())
            .or_default()
            .clone();
        let _loading = lock(&slot.loading);
        if let Some(s) = slot.session.get() {
            metrics::global().add("serve.sessions.cache_hits", 1);
            return Ok(s.clone());
        }
        let started = Instant::now();
        // Lazy open: header + meta are validated now (O(ms) even for a
        // multi-GB store); document, statistics, and index sections decode
        // on first touch by a query. Corruption in an untouched section
        // therefore surfaces as a typed per-request `ServeError::Session`,
        // not an open failure here.
        // lint:allow(lock-order): holding the per-slot `loading` mutex
        // across the cold open is the point — it is dogpile protection so
        // concurrent requests for one store decode it once; the sessions
        // map lock is NOT held here, and other slots proceed unblocked.
        let store = match self.catalog.open_lazy(name) {
            Ok(store) => store,
            Err(e) => {
                // Failures are not cached: drop the empty slot (if it is
                // still ours) so a later request retries the load — e.g.
                // after the operator re-indexes a missing document.
                let mut sessions = write_lock(&self.sessions);
                if let Some(cur) = sessions.get(name) {
                    if Arc::ptr_eq(cur, &slot) && cur.session.get().is_none() {
                        sessions.remove(name);
                    }
                }
                return Err(e.into());
            }
        };
        let open = started.elapsed();
        let flex = Arc::new(FleXPath::from_lazy_store(store));
        let _ = slot.open.set(open);
        let _ = slot.session.set(flex.clone());
        metrics::global().add("serve.sessions.loaded", 1);
        metrics::global().observe_duration("serve.sessions.load_duration", open);
        Ok(flex)
    }

    /// Vitals for every loaded session, sorted by document name — the
    /// data behind `/version`'s per-catalog session listing. Slots still
    /// mid-load are skipped.
    pub fn sessions_info(&self) -> Vec<SessionInfo> {
        read_lock(&self.sessions)
            .iter()
            .filter_map(|(name, slot)| {
                let flex = slot.session.get()?;
                Some(SessionInfo {
                    name: name.clone(),
                    open: slot.open.get().copied().unwrap_or(Duration::ZERO),
                    lazy: flex.lazy_store().is_some(),
                    mapped: flex.lazy_store().is_some_and(|s| s.is_mapped()),
                    residency: flex.residency(),
                })
            })
            .collect()
    }
}

// Session-cache state is an insert-only map of immutable Arcs; a panic
// while holding a lock cannot corrupt it, so poison is ignored.
fn read_lock<'a, T>(l: &'a RwLock<T>) -> std::sync::RwLockReadGuard<'a, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn write_lock<'a, T>(l: &'a RwLock<T>) -> std::sync::RwLockWriteGuard<'a, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexpath::StoreBuilder;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("flexpath-serve-state-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn sessions_load_once_and_are_shared() {
        let dir = tmp_dir("shared");
        let state = ServerState::open(&dir).unwrap();
        let flex = FleXPath::from_xml("<a><b>gold coin</b></a>").unwrap();
        let ctx = flex.context();
        state
            .catalog()
            .save(&StoreBuilder::from_parts(
                "doc",
                ctx.doc(),
                ctx.stats(),
                ctx.index(),
            ))
            .unwrap();

        let s1 = state.session("doc").unwrap();
        let s2 = state.session("doc").unwrap();
        assert!(Arc::ptr_eq(&s1, &s2), "same Arc served twice");
        assert_eq!(state.session_count(), 1);
        assert!(matches!(
            state.session("missing"),
            Err(ServeError::Store(
                flexpath::StoreError::DocumentNotFound { .. }
            ))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_loads_are_not_cached() {
        let dir = tmp_dir("retry");
        let state = ServerState::open(&dir).unwrap();
        assert!(state.session("doc").is_err());
        assert_eq!(state.session_count(), 0, "failure left no cached slot");
        // The operator indexes the document; the next request must retry
        // the load instead of finding a stale empty slot.
        let flex = FleXPath::from_xml("<a><b>silver coin</b></a>").unwrap();
        let ctx = flex.context();
        state
            .catalog()
            .save(&StoreBuilder::from_parts(
                "doc",
                ctx.doc(),
                ctx.stats(),
                ctx.index(),
            ))
            .unwrap();
        assert!(state.session("doc").is_ok());
        assert_eq!(state.session_count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn catalog_sessions_open_lazily_with_recorded_open_time() {
        let dir = tmp_dir("lazy");
        let state = ServerState::open(&dir).unwrap();
        let flex = FleXPath::from_xml("<a><b>gold coin</b></a>").unwrap();
        let ctx = flex.context();
        state
            .catalog()
            .save(&StoreBuilder::from_parts(
                "doc",
                ctx.doc(),
                ctx.stats(),
                ctx.index(),
            ))
            .unwrap();

        let s = state.session("doc").unwrap();
        let info = state.sessions_info();
        assert_eq!(info.len(), 1);
        assert_eq!(info[0].name, "doc");
        assert!(info[0].lazy, "catalog sessions are lazily backed");
        assert!(
            !state.sessions_info()[0].residency.document,
            "nothing decoded before the first query"
        );

        // A query forces the structural sections resident; /version's
        // residency report tracks it.
        let results = s.query("//b").unwrap().top(1).execute();
        assert_eq!(results.hits.len(), 1);
        assert!(state.sessions_info()[0].residency.document);

        // Injected sessions report as eager with a zero open time.
        state.insert_session("mem", FleXPath::from_xml("<a>x</a>").unwrap());
        let info = state.sessions_info();
        assert_eq!(info.len(), 2);
        assert!(!info[1].lazy);
        assert_eq!(info[1].open, Duration::ZERO);
        assert!(info[1].residency.index, "owned sessions are fully resident");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_sessions_bypass_the_catalog() {
        let dir = tmp_dir("inject");
        let state = ServerState::open(&dir).unwrap();
        state.insert_session("mem", FleXPath::from_xml("<a>x</a>").unwrap());
        assert!(state.session("mem").is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
