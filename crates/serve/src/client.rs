//! A minimal blocking HTTP/1.1 client, just big enough to exercise the
//! server: one request per call over a fresh connection, or a reusable
//! keep-alive connection for load generation.
//!
//! Shared by the integration tests, the smoke example, and the load
//! benchmark so all three speak bytes through the same code path.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response: status code, headers (lowercased names), body.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Header names (lowercased) and values.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Errors a client call can hit.
#[derive(Debug)]
pub enum ClientError {
    /// Connect/read/write failed or timed out.
    Io(std::io::Error),
    /// The response bytes were not parseable HTTP.
    BadResponse(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client I/O: {e}"),
            ClientError::BadResponse(m) => write!(f, "bad response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A keep-alive connection to the server.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
    conn: Option<TcpStream>,
}

impl Client {
    /// A client for `addr` with the given per-call socket timeout.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> Client {
        Client {
            addr,
            timeout,
            conn: None,
        }
    }

    /// Sends one request on the keep-alive connection (reconnecting if the
    /// server closed it) and reads the full response.
    pub fn call(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<ClientResponse, ClientError> {
        // One transparent retry on a dead cached connection: the server
        // may have closed it between calls (max_requests_per_conn, drain).
        if self.conn.is_some() {
            match self.try_call(method, path, body) {
                Ok(resp) => return Ok(resp),
                Err(_) => self.conn = None,
            }
        }
        self.try_call(method, path, body)
    }

    fn try_call(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<ClientResponse, ClientError> {
        if self.conn.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            // Head and body go out in separate writes; Nagle + delayed
            // ACK would otherwise stall each request ~40 ms.
            stream.set_nodelay(true)?;
            self.conn = Some(stream);
        }
        let Some(stream) = self.conn.as_mut() else {
            return Err(ClientError::BadResponse("no connection"));
        };
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: flexpath\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        stream.flush()?;
        let resp = read_response(stream);
        // Drop the cached connection on any error, and when the server
        // announced it is closing its side.
        let keep = matches!(&resp, Ok(r) if r.header("connection") != Some("close"));
        if !keep {
            self.conn = None;
        }
        resp
    }
}

/// One-shot helper: fresh connection, one request, response.
pub fn http_call(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: Duration,
) -> Result<ClientResponse, ClientError> {
    Client::connect(addr, timeout).call(method, path, body)
}

/// Reads one `Content-Length`-framed response.
fn read_response(stream: &mut TcpStream) -> Result<ClientResponse, ClientError> {
    let mut buf = Vec::with_capacity(1024);
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        if buf.len() > 1 << 20 {
            return Err(ClientError::BadResponse("response head too large"));
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ClientError::BadResponse("connection closed mid-response"));
        }
        buf.extend_from_slice(chunk.get(..n).unwrap_or(&[]));
    };
    let head = buf.get(..head_end).unwrap_or(&[]).to_vec();
    let mut body: Vec<u8> = buf.split_off(head_end + 4);

    let head = String::from_utf8(head).map_err(|_| ClientError::BadResponse("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or(ClientError::BadResponse("bad status line"))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value
                    .parse()
                    .map_err(|_| ClientError::BadResponse("bad content-length"))?;
            }
            headers.push((name, value));
        }
    }
    if content_length > 1 << 26 {
        return Err(ClientError::BadResponse("response body too large"));
    }
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ClientError::BadResponse("body shorter than declared"));
        }
        body.extend_from_slice(chunk.get(..n).unwrap_or(&[]));
    }
    body.truncate(content_length);
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}
