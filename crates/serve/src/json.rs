//! Hand-rolled JSON: a bounded recursive-descent parser for request
//! bodies and an escaping writer for responses.
//!
//! The workspace deliberately carries no serialization dependency, and the
//! service's payloads are small and flat, so a few hundred lines of
//! well-tested JSON beats a new dependency. The parser is hardened like
//! every other input-facing decoder in the workspace: depth-limited,
//! size-limited by the HTTP layer, and incapable of panicking on any byte
//! sequence (typed [`JsonError`]s only).

use std::collections::BTreeMap;

/// Maximum nesting depth the parser accepts. Query payloads are depth ≤ 2;
/// the cap only exists to bound recursion on adversarial input.
const MAX_DEPTH: usize = 16;

/// A parsed JSON value. Object keys are ordered (BTreeMap) so rendering
/// and error messages are deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (held as f64; the service's fields are small ints).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        // Strict upper bound: `u64::MAX as f64` rounds UP to 2^64, so a
        // `<=` comparison would admit 2^64 itself and saturate the cast.
        const TWO_POW_64: f64 = 18_446_744_073_709_551_616.0;
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n < TWO_POW_64 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Member `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }
}

/// Why a body failed to parse as JSON. The byte offset points at the
/// first offending character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What the parser expected or found.
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses `bytes` as a single JSON value (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(bytes: &[u8]) -> Result<Json, JsonError> {
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing bytes after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &[u8], value: Json) -> Result<Json, JsonError> {
        if self.bytes.get(self.pos..self.pos + word.len()) == Some(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("unexpected literal"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Object(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => out.push(self.unicode_escape()?),
                    _ => return Err(self.err("bad escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control byte in string")),
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: validate the whole sequence.
                    let len = utf8_len(b).ok_or_else(|| self.err("invalid UTF-8"))?;
                    let start = self.pos - 1;
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let code = self.hex4()?;
        // Surrogate pair handling: a high surrogate must be followed by
        // `\uDC00`–`\uDFFF`.
        if (0xD800..0xDC00).contains(&code) {
            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                return Err(self.err("lone high surrogate"));
            }
            let low = self.hex4()?;
            if !(0xDC00..0xE000).contains(&low) {
                return Err(self.err("invalid low surrogate"));
            }
            let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
        }
        if (0xDC00..0xE000).contains(&code) {
            return Err(self.err("lone low surrogate"));
        }
        char::from_u32(code).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|s| std::str::from_utf8(s).ok())
            .ok_or_else(|| self.err("bad number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("bad number"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Number(n))
    }
}

/// Expected byte length of a UTF-8 sequence starting with `b`.
fn utf8_len(b: u8) -> Option<usize> {
    match b {
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Escapes `s` as a JSON string literal, quotes included.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An append-only JSON object/array builder with deterministic field
/// order (fields appear in call order).
#[derive(Debug, Default)]
pub struct JsonBuf {
    out: String,
}

impl JsonBuf {
    /// A fresh empty buffer.
    pub fn new() -> Self {
        JsonBuf::default()
    }

    /// Appends raw, already-serialized JSON.
    pub fn raw(&mut self, s: &str) -> &mut Self {
        self.out.push_str(s);
        self
    }

    /// Appends a `"key":` prefix (with a leading comma unless the buffer
    /// ends at an opening brace/bracket).
    pub fn key(&mut self, key: &str) -> &mut Self {
        self.comma();
        self.out.push_str(&quote(key));
        self.out.push(':');
        self
    }

    /// Appends a comma unless at the start of an object/array.
    pub fn comma(&mut self) -> &mut Self {
        if !matches!(self.out.chars().last(), None | Some('{' | '[' | ':' | ',')) {
            self.out.push(',');
        }
        self
    }

    /// Appends a string value.
    pub fn string(&mut self, v: &str) -> &mut Self {
        self.out.push_str(&quote(v));
        self
    }

    /// Appends an integer value.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.out.push_str(&v.to_string());
        self
    }

    /// Appends a float value (JSON-safe rendering; non-finite becomes
    /// `null`).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        if v.is_finite() {
            self.out.push_str(&format!("{v}"));
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Appends a boolean value.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// The serialized JSON.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_service_payload_shape() {
        let v = parse(
            br#"{"catalog":"doc","query":"//a","k":5,"trace":true,"deadline_ms":250.0,"nested":{"x":[1,2,3]}}"#,
        )
        .unwrap();
        assert_eq!(v.get("catalog").and_then(Json::as_str), Some("doc"));
        assert_eq!(v.get("k").and_then(Json::as_u64), Some(5));
        assert_eq!(v.get("trace").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("deadline_ms").and_then(Json::as_u64), Some(250));
        assert_eq!(
            v.get("nested").and_then(|n| n.get("x")),
            Some(&Json::Array(vec![
                Json::Number(1.0),
                Json::Number(2.0),
                Json::Number(3.0)
            ]))
        );
    }

    #[test]
    fn escapes_round_trip() {
        let v = parse("\"a\\\"b\\\\c\\ndAé😀\"".as_bytes()).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé😀"));
        let q = quote("a\"b\\c\nd");
        assert_eq!(parse(q.as_bytes()).unwrap().as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn utf8_bodies_parse() {
        let v = parse("{\"q\":\"prix ≤ 98 €\"}".as_bytes()).unwrap();
        assert_eq!(v.get("q").and_then(Json::as_str), Some("prix ≤ 98 €"));
    }

    #[test]
    fn malformed_inputs_yield_typed_errors() {
        for bad in [
            &b"{"[..],
            b"[1,2",
            b"{\"a\":}",
            b"{\"a\" 1}",
            b"tru",
            b"01a",
            b"\"unterminated",
            b"\"bad \\q escape\"",
            b"\"\\ud800 lone\"",
            b"{\"a\":1} trailing",
            b"",
            b"\x80\x80",
            b"\"ctrl \x01 byte\"",
            b"1e999",
        ] {
            assert!(parse(bad).is_err(), "{:?} must fail", bad);
        }
    }

    #[test]
    fn depth_limit_bounds_recursion() {
        let deep = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        let e = parse(deep.as_bytes()).unwrap_err();
        assert_eq!(e.message, "nesting too deep");
        // At the limit, parsing still works.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(ok.as_bytes()).is_ok());
    }

    #[test]
    fn builder_produces_valid_json() {
        let mut b = JsonBuf::new();
        b.raw("{");
        b.key("name").string("a\"b");
        b.key("n").u64(42);
        b.key("pi").f64(3.5);
        b.key("flag").bool(false);
        b.key("arr").raw("[");
        b.u64(1).comma().u64(2);
        b.raw("]}");
        let s = b.finish();
        let v = parse(s.as_bytes()).unwrap();
        assert_eq!(v.get("name").and_then(Json::as_str), Some("a\"b"));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(42));
        assert_eq!(v.get("flag").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn as_u64_rejects_values_at_and_beyond_two_pow_64() {
        // 2^64 itself: `u64::MAX as f64` rounds up to exactly this, so a
        // `<=` bound would let it through and saturate the cast.
        assert_eq!(Json::Number(18_446_744_073_709_551_616.0).as_u64(), None);
        assert_eq!(Json::Number(1e300).as_u64(), None);
        assert_eq!(Json::Number(-1.0).as_u64(), None);
        assert_eq!(Json::Number(1.5).as_u64(), None);
        // The largest f64 below 2^64 still converts.
        assert_eq!(
            Json::Number(18_446_744_073_709_549_568.0).as_u64(),
            Some(18_446_744_073_709_549_568)
        );
        assert_eq!(Json::Number(0.0).as_u64(), Some(0));
    }
}
