//! Endpoint dispatch: maps parsed requests to responses.
//!
//! Every route returns a [`Response`]; failures flow through
//! [`ServeError`] so each gets a consistent JSON error body and status.
//! The `/query` route is where the robustness story comes together:
//! admission control first (shed with `429`/`503` *before* any work),
//! then server-clamped limits, then execution under the drain token —
//! so a budget trip degrades into a `200` partial with `Retry-After`
//! rather than an error.

use crate::admission::{AdmissionController, AdmissionError};
use crate::error::ServeError;
use crate::http::{Method, Request, Response};
use crate::json::{self, Json, JsonBuf};
use crate::policy::ServePolicy;
use crate::recorder::{fnv1a, FlightRecorder, QueryRecord};
use crate::state::ServerState;
use flexpath::{skew_millibits, Algorithm, CancelToken, QueryLimits, QueryResults, RankingScheme};
use flexpath_engine::metrics;
use flexpath_engine::reason_key;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything a route handler needs, borrowed from the server for the
/// duration of one request.
#[derive(Debug)]
pub struct RouteContext<'a> {
    /// Session cache + catalog.
    pub state: &'a ServerState,
    /// Server policy (limit ceilings, timeouts, Retry-After hint).
    pub policy: &'a ServePolicy,
    /// The admission controller queries must pass.
    pub admission: &'a AdmissionController,
    /// Cancelled when the drain deadline expires; attached to every query
    /// so in-flight work stops at its next checkpoint instead of
    /// overstaying the drain window.
    pub drain_cancel: &'a CancelToken,
    /// The process-wide query flight recorder fed by `/query` and
    /// `/explain` after execution; served by `/debug/queries` and
    /// `/debug/slow`.
    pub recorder: &'a FlightRecorder,
}

/// Routes one request. Never panics; anything unexpected becomes a typed
/// error response.
pub fn dispatch(ctx: &RouteContext<'_>, req: &Request) -> Response {
    metrics::global().add("serve.requests", 1);
    let resp = match (req.method, req.path.as_str()) {
        (Method::Get | Method::Head, "/healthz") => healthz(ctx),
        (Method::Get | Method::Head, "/version") => version(ctx),
        (Method::Get | Method::Head, "/metrics") => metrics_endpoint(req),
        (Method::Get | Method::Head, "/catalogs") => catalogs(ctx),
        (Method::Get | Method::Head, "/debug/queries") => debug_ring(ctx, req, false),
        (Method::Get | Method::Head, "/debug/slow") => debug_ring(ctx, req, true),
        (Method::Post, "/query") => query(ctx, req).unwrap_or_else(|e| error_response(ctx, &e)),
        (Method::Post, "/explain") => explain(ctx, req).unwrap_or_else(|e| error_response(ctx, &e)),
        (_, "/query" | "/explain") => error_response(
            ctx,
            &ServeError::Http(crate::http::HttpError::MethodUnknown),
        ),
        _ => err_json(404, "not_found", &format!("no route for {}", req.path)),
    };
    metrics::global().add(status_metric(resp.status), 1);
    resp
}

/// The metric key for a response status class.
fn status_metric(status: u16) -> &'static str {
    match status {
        200..=299 => "serve.responses.2xx",
        429 => "serve.responses.429",
        503 => "serve.responses.503",
        400..=499 => "serve.responses.4xx",
        _ => "serve.responses.5xx",
    }
}

/// Renders a `ServeError` as its JSON error response, attaching
/// `Retry-After` to shed responses so well-behaved clients back off.
pub fn error_response(ctx: &RouteContext<'_>, e: &ServeError) -> Response {
    if let ServeError::Shed(reason) = e {
        let key = match reason {
            AdmissionError::QueueFull => "serve.shed.queue_full",
            AdmissionError::Timeout => "serve.shed.timeout",
            AdmissionError::Draining => "serve.shed.draining",
        };
        metrics::global().add(key, 1);
    }
    let resp = err_json(e.status(), e.kind(), &e.to_string());
    match e {
        ServeError::Shed(_) => resp.retry_after(ctx.policy.retry_after_secs),
        _ => resp,
    }
}

/// A JSON error body: `{"error":{"status":s,"kind":"k","message":"m"}}`.
pub fn err_json(status: u16, kind: &str, message: &str) -> Response {
    let mut b = JsonBuf::new();
    b.raw("{").key("error").raw("{");
    b.key("status").u64(u64::from(status));
    b.key("kind").string(kind);
    b.key("message").string(message);
    b.raw("}}");
    Response::json(status, b.finish())
}

fn healthz(ctx: &RouteContext<'_>) -> Response {
    let mut b = JsonBuf::new();
    b.raw("{");
    b.key("status").string(if ctx.admission.is_draining() {
        "draining"
    } else {
        "ok"
    });
    b.key("sessions").u64(ctx.state.session_count() as u64);
    b.key("in_flight").u64(ctx.admission.in_flight() as u64);
    b.key("concurrency_limit")
        .u64(ctx.admission.current_limit() as u64);
    b.key("uptime_s").u64(ctx.state.uptime().as_secs());
    b.raw("}");
    let status = if ctx.admission.is_draining() {
        503
    } else {
        200
    };
    Response::json(status, b.finish())
}

/// Build/version info plus process vitals: uptime, drain state, session
/// cache, and flight-recorder configuration. Unlike `/healthz` this never
/// returns 503 — it describes the process, it does not gate traffic.
fn version(ctx: &RouteContext<'_>) -> Response {
    let mut b = JsonBuf::new();
    b.raw("{");
    b.key("name").string(env!("CARGO_PKG_NAME"));
    b.key("version").string(env!("CARGO_PKG_VERSION"));
    b.key("uptime_s").u64(ctx.state.uptime().as_secs());
    b.key("draining").bool(ctx.admission.is_draining());
    b.key("sessions").raw("{");
    b.key("loaded").u64(ctx.state.session_count() as u64);
    // Per-catalog session vitals: how long each store open took, whether
    // the session is lazily backed / memory-mapped, and which parts have
    // actually been decoded so far. `open_ms` for a lazy open measures
    // header + meta validation only — the operator-visible proof that
    // opening is O(ms) regardless of store size.
    b.key("catalogs").raw("[");
    for info in ctx.state.sessions_info() {
        b.comma().raw("{");
        b.key("name").string(&info.name);
        b.key("open_ms").f64(info.open.as_secs_f64() * 1e3);
        b.key("lazy").bool(info.lazy);
        b.key("mapped").bool(info.mapped);
        b.key("resident").raw("{");
        b.key("document").bool(info.residency.document);
        b.key("stats").bool(info.residency.stats);
        b.key("index").bool(info.residency.index);
        b.raw("}");
        b.raw("}");
    }
    b.raw("]");
    b.raw("}");
    b.key("recorder").raw("{");
    b.key("capacity").u64(ctx.recorder.capacity() as u64);
    b.key("recorded").u64(ctx.recorder.recorded());
    b.key("slow_threshold_ms").u64(
        ctx.recorder
            .slow_threshold()
            .as_millis()
            .min(u128::from(u64::MAX)) as u64,
    );
    b.raw("}");
    b.raw("}");
    Response::json(200, b.finish())
}

/// `/metrics`: Prometheus text exposition by default (`# TYPE`d counters
/// and cumulative `_bucket`/`_sum`/`_count` histograms); `?format=json`
/// keeps the machine-readable snapshot and `?format=text` the legacy flat
/// listing.
fn metrics_endpoint(req: &Request) -> Response {
    let snapshot = metrics::global().snapshot();
    if req.query.split('&').any(|kv| kv == "format=json") {
        Response::json(200, snapshot.render_json())
    } else if req.query.split('&').any(|kv| kv == "format=text") {
        Response::text(200, snapshot.render_text())
    } else {
        Response::text(200, snapshot.render_prometheus())
    }
}

/// `/debug/queries` and `/debug/slow`: the flight-recorder rings as JSON,
/// newest record first. `?n=` bounds the count (default 50, max 1000).
fn debug_ring(ctx: &RouteContext<'_>, req: &Request, slow_only: bool) -> Response {
    let n = req
        .query
        .split('&')
        .find_map(|kv| kv.strip_prefix("n="))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(50)
        .min(1000);
    let records: Vec<Arc<QueryRecord>> = if slow_only {
        ctx.recorder.slow_recent(n)
    } else {
        ctx.recorder.recent(n)
    };
    let mut b = JsonBuf::new();
    b.raw("{");
    b.key("recorded").u64(ctx.recorder.recorded());
    b.key("capacity").u64(ctx.recorder.capacity() as u64);
    b.key("slow_threshold_ms").u64(
        ctx.recorder
            .slow_threshold()
            .as_millis()
            .min(u128::from(u64::MAX)) as u64,
    );
    b.key("queries").raw("[");
    for rec in &records {
        b.comma().raw(&rec.render_json());
    }
    b.raw("]}");
    Response::json(200, b.finish())
}

fn catalogs(ctx: &RouteContext<'_>) -> Response {
    let listing = match ctx.state.catalog().list_report() {
        Ok(l) => l,
        Err(e) => return err_json(500, "store", &e.to_string()),
    };
    let mut b = JsonBuf::new();
    b.raw("{").key("documents").raw("[");
    for entry in &listing.entries {
        b.comma().raw("{");
        b.key("name").string(&entry.meta.name);
        b.key("nodes").u64(entry.meta.nodes);
        b.key("terms").u64(entry.meta.terms);
        b.key("posting_entries").u64(entry.meta.posting_entries);
        b.key("file_bytes").u64(entry.file_bytes);
        b.raw("}");
    }
    b.raw("]").key("quarantined").raw("[");
    for q in &listing.quarantined {
        b.comma().raw("{");
        b.key("path").string(&q.path.to_string_lossy());
        b.key("error").string(&q.error.to_string());
        b.raw("}");
    }
    b.raw("]}");
    Response::json(200, b.finish())
}

/// The parsed, validated body of a `/query` (or `/explain`) request.
#[derive(Debug)]
struct QueryRequest {
    catalog: String,
    query: String,
    k: usize,
    algorithm: Algorithm,
    scheme: RankingScheme,
    limits: QueryLimits,
    threads: usize,
    trace: bool,
    snippet_chars: usize,
    test_delay: Duration,
}

impl QueryRequest {
    /// Parses and validates the request body. Unknown top-level keys are
    /// rejected — a typo like `deadine_ms` must not silently run an
    /// undeadlined query.
    fn parse(body: &[u8], policy: &ServePolicy) -> Result<QueryRequest, ServeError> {
        let bad = |m: String| ServeError::BadRequest(m);
        let v = json::parse(body).map_err(|e| bad(e.to_string()))?;
        let Json::Object(map) = &v else {
            return Err(bad("request body must be a JSON object".into()));
        };
        const KNOWN: &[&str] = &[
            "catalog",
            "query",
            "k",
            "algorithm",
            "scheme",
            "deadline_ms",
            "max_relaxations",
            "max_candidates",
            "max_postings",
            "max_memory",
            "threads",
            "trace",
            "snippet_chars",
            "test_delay_ms",
        ];
        for key in map.keys() {
            if !KNOWN.contains(&key.as_str()) {
                return Err(bad(format!("unknown field {key:?}")));
            }
        }
        let str_field = |name: &str| -> Result<String, ServeError> {
            map.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad(format!("field {name:?} (string) is required")))
        };
        let uint = |name: &str| -> Result<Option<u64>, ServeError> {
            match map.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(v) => v
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| bad(format!("field {name:?} must be a non-negative integer"))),
            }
        };
        let algorithm = match map.get("algorithm").map(|v| v.as_str()) {
            None => Algorithm::Hybrid,
            Some(Some(s)) => match s.to_ascii_lowercase().as_str() {
                "dpo" => Algorithm::Dpo,
                "sso" => Algorithm::Sso,
                "hybrid" => Algorithm::Hybrid,
                other => return Err(bad(format!("unknown algorithm {other:?}"))),
            },
            Some(None) => return Err(bad("field \"algorithm\" must be a string".into())),
        };
        let scheme = match map.get("scheme").map(|v| v.as_str()) {
            None => RankingScheme::StructureFirst,
            Some(Some(s)) => match s.to_ascii_lowercase().as_str() {
                "structure_first" => RankingScheme::StructureFirst,
                "keyword_first" => RankingScheme::KeywordFirst,
                "combined" => RankingScheme::Combined,
                other => return Err(bad(format!("unknown scheme {other:?}"))),
            },
            Some(None) => return Err(bad("field \"scheme\" must be a string".into())),
        };
        let trace = match map.get("trace") {
            None => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| bad("field \"trace\" must be a boolean".into()))?,
        };
        let mut limits = QueryLimits::default();
        if let Some(ms) = uint("deadline_ms")? {
            limits.deadline = Some(Duration::from_millis(ms));
        }
        if let Some(n) = uint("max_relaxations")? {
            limits.max_relaxations_enumerated = Some(n as usize);
        }
        limits.max_candidate_answers = uint("max_candidates")?;
        limits.max_ft_postings_scanned = uint("max_postings")?;
        limits.max_memory_hint = uint("max_memory")?;
        let test_delay_ms = uint("test_delay_ms")?.unwrap_or(0);
        if test_delay_ms > 0 && !policy.allow_test_delay {
            return Err(bad(
                "field \"test_delay_ms\" is disabled by server policy".into()
            ));
        }
        Ok(QueryRequest {
            catalog: str_field("catalog")?,
            query: str_field("query")?,
            k: uint("k")?.unwrap_or(10).min(10_000) as usize,
            algorithm,
            scheme,
            limits,
            threads: uint("threads")?.unwrap_or(1).clamp(1, 64) as usize,
            trace,
            snippet_chars: uint("snippet_chars")?.unwrap_or(0).min(10_000) as usize,
            test_delay: Duration::from_millis(test_delay_ms.min(60_000)),
        })
    }
}

fn query(ctx: &RouteContext<'_>, req: &Request) -> Result<Response, ServeError> {
    let parsed = QueryRequest::parse(&req.body, ctx.policy)?;
    // Admission *before* session load: an overloaded server must shed
    // without doing per-request work.
    let _permit = ctx.admission.admit()?;
    let flex = ctx.state.session(&parsed.catalog)?;
    hold_test_delay(ctx, parsed.test_delay);
    let effective_limits = ctx.policy.clamp(&parsed.limits);
    let started = Instant::now();
    let mut q = flex
        .query(&parsed.query)
        .map_err(|e| ServeError::BadRequest(e.to_string()))?
        .top(parsed.k)
        .algorithm(parsed.algorithm)
        .scheme(parsed.scheme)
        .limits(effective_limits.clone())
        .cancel(ctx.drain_cancel.clone())
        .threads(parsed.threads);
    if parsed.trace {
        q = q.trace();
    }
    // Fallible execute: a lazy session's first touch of a corrupt or
    // unreadable section surfaces here as a typed 500 (`session`), never
    // a worker panic.
    let results = q.try_execute()?;
    let elapsed = started.elapsed();
    metrics::global().observe_duration("serve.query.duration", elapsed);
    metrics::global().add(
        if results.is_complete() {
            "serve.query.complete"
        } else {
            "serve.query.partial"
        },
        1,
    );
    record_completed(ctx, "query", &parsed, effective_limits, &results, elapsed);

    let body = render_results(&flex, &parsed, &results, elapsed);
    let resp = Response::json(200, body);
    // Graceful degradation: a budget trip is not an error — the client
    // gets the best answers found plus a hint to retry for the rest.
    if results.is_complete() {
        Ok(resp)
    } else {
        Ok(resp.retry_after(ctx.policy.retry_after_secs))
    }
}

/// The stable wire name of a ranking scheme (matches the request field
/// vocabulary accepted by [`QueryRequest::parse`]).
fn scheme_key(scheme: RankingScheme) -> &'static str {
    match scheme {
        RankingScheme::StructureFirst => "structure_first",
        RankingScheme::KeywordFirst => "keyword_first",
        RankingScheme::Combined => "combined",
    }
}

/// Feeds one completed execution into the flight recorder. Runs on the
/// request's worker thread *after* the engine committed the results —
/// strictly read-only over them, so recording cannot perturb governor
/// counters or the deterministic trace fingerprint (whose FNV-1a hash the
/// record carries when the request was traced).
fn record_completed(
    ctx: &RouteContext<'_>,
    endpoint: &'static str,
    parsed: &QueryRequest,
    effective_limits: QueryLimits,
    results: &QueryResults,
    elapsed: Duration,
) {
    let (complete, exhaust_reason) = match &results.completeness {
        flexpath::Completeness::Complete => (true, None),
        flexpath::Completeness::Exhausted { reason, .. } => (false, Some(reason_key(*reason))),
    };
    // The governor latches its trip site into the trace root as a
    // `governor.trip.site.<name>` counter; untraced runs record the
    // reason only.
    let trip_site = results.trace.as_ref().and_then(|t| {
        t.root
            .counters
            .keys()
            .find_map(|k| k.strip_prefix("governor.trip.site.").map(str::to_string))
    });
    let fingerprint_hash = results
        .trace
        .as_ref()
        .map(|t| fnv1a(t.counter_fingerprint().as_bytes()));
    ctx.recorder.record(QueryRecord {
        id: 0, // assigned by the recorder
        endpoint,
        corpus: parsed.catalog.clone(),
        query: QueryRecord::clip_query(&parsed.query),
        algorithm: results.algorithm.to_string().to_ascii_lowercase(),
        scheme: scheme_key(parsed.scheme).to_string(),
        k: parsed.k as u64,
        threads: parsed.threads as u64,
        limits: effective_limits,
        duration: elapsed,
        complete,
        exhaust_reason,
        trip_site,
        answers: results.hits.len() as u64,
        estimated_answers: results.stats.estimated_answers,
        observed_answers: results.stats.observed_answers,
        skew_millibits: skew_millibits(
            results.stats.estimated_answers,
            results.stats.observed_answers,
        ),
        fingerprint_hash,
    });
}

/// Holds the execution slot for a fixed time (tests and the load harness
/// only — gated by `ServePolicy::allow_test_delay` at parse time). Wakes
/// early if the drain token fires so a draining server is never stuck
/// behind artificial delays.
fn hold_test_delay(ctx: &RouteContext<'_>, delay: Duration) {
    let until = Instant::now() + delay;
    while !ctx.drain_cancel.is_cancelled() {
        let now = Instant::now();
        if now >= until {
            break;
        }
        std::thread::sleep((until - now).min(Duration::from_millis(5)));
    }
}

fn render_results(
    flex: &flexpath::FleXPath,
    req: &QueryRequest,
    results: &QueryResults,
    elapsed: Duration,
) -> String {
    let mut b = JsonBuf::new();
    b.raw("{");
    b.key("catalog").string(&req.catalog);
    b.key("algorithm").string(&results.algorithm.to_string());
    b.key("k").u64(req.k as u64);
    b.key("elapsed_us").u64(elapsed.as_micros() as u64);
    b.key("completeness").raw("{");
    b.key("complete").bool(results.is_complete());
    if let flexpath::Completeness::Exhausted {
        reason,
        relaxations_explored,
        relaxations_remaining_estimate,
    } = &results.completeness
    {
        b.key("reason").string(reason_key(*reason));
        b.key("relaxations_explored")
            .u64(*relaxations_explored as u64);
        b.key("relaxations_remaining_estimate")
            .u64(*relaxations_remaining_estimate as u64);
    }
    b.raw("}");
    b.key("hits").raw("[");
    for hit in &results.hits {
        b.comma().raw("{");
        b.key("node").u64(u64::from(hit.node.0));
        b.key("path").string(&flex.path_of(hit.node));
        b.key("ss").f64(hit.score.ss);
        b.key("ks").f64(hit.score.ks);
        b.key("relaxation_level").u64(hit.relaxation_level as u64);
        if req.snippet_chars > 0 {
            b.key("snippet")
                .string(&flex.snippet(hit.node, req.snippet_chars));
        }
        b.raw("}");
    }
    b.raw("]");
    b.key("stats").raw("{");
    b.key("relaxations_used")
        .u64(results.stats.relaxations_used as u64);
    b.key("evaluations").u64(results.stats.evaluations as u64);
    b.key("intermediate_answers")
        .u64(results.stats.intermediate_answers as u64);
    b.key("restarts").u64(results.stats.restarts as u64);
    b.key("pruned").u64(results.stats.pruned as u64);
    b.raw("}");
    if let Some(trace) = &results.trace {
        b.key("trace").raw(&trace.render_json());
    }
    b.raw("}");
    b.finish()
}

fn explain(ctx: &RouteContext<'_>, req: &Request) -> Result<Response, ServeError> {
    let parsed = QueryRequest::parse(&req.body, ctx.policy)?;
    let _permit = ctx.admission.admit()?;
    let flex = ctx.state.session(&parsed.catalog)?;
    // Same governor contract as /query: clamped limits and the drain
    // token — an explain run must not outlive the drain deadline or
    // escape the operator's budget ceilings.
    let effective_limits = ctx.policy.clamp(&parsed.limits);
    // The explain renderer runs the query through the infallible
    // `execute()`; materialize every part up front so a corrupt lazy
    // section becomes a typed 500 here instead of a fault mid-render.
    flex.materialize(true)?;
    let started = Instant::now();
    let text = flexpath::explain_profile_with(
        &flex,
        &parsed.query,
        parsed.k,
        parsed.algorithm,
        effective_limits.clone(),
        ctx.drain_cancel.clone(),
    )
    .map_err(|e| ServeError::BadRequest(e.to_string()))?;
    let elapsed = started.elapsed();
    // EXPLAIN returns rendered text, not a results struct; the record is
    // recovered from the report's own header lines (best effort — an
    // explain record documents that a profiled run happened and how long
    // it held its slot, not the full skew summary).
    let complete = text.lines().any(|l| l == "completeness: complete");
    let answers = text
        .lines()
        .find_map(|l| l.strip_prefix("answers returned: "))
        .and_then(|n| n.trim().parse::<u64>().ok())
        .unwrap_or(0);
    ctx.recorder.record(QueryRecord {
        id: 0, // assigned by the recorder
        endpoint: "explain",
        corpus: parsed.catalog.clone(),
        query: QueryRecord::clip_query(&parsed.query),
        algorithm: parsed.algorithm.to_string().to_ascii_lowercase(),
        scheme: scheme_key(parsed.scheme).to_string(),
        k: parsed.k as u64,
        threads: parsed.threads as u64,
        limits: effective_limits,
        duration: elapsed,
        complete,
        exhaust_reason: None,
        trip_site: None,
        answers,
        estimated_answers: 0.0,
        observed_answers: 0,
        skew_millibits: 0,
        fingerprint_hash: None,
    });
    Ok(Response::text(200, text))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::HttpLimits;

    fn test_ctx() -> (
        ServerState,
        ServePolicy,
        AdmissionController,
        CancelToken,
        FlightRecorder,
        std::path::PathBuf,
    ) {
        // A process-wide counter keeps parallel tests in distinct dirs
        // (thread identity is a disallowed API workspace-wide).
        static DIR_SEQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let seq = DIR_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "flexpath-serve-routes-{}-{seq}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let state = ServerState::open(&dir).unwrap();
        state.insert_session(
            "doc",
            flexpath::FleXPath::from_xml(
                "<site><article><section><paragraph>XML streaming</paragraph>\
                 </section></article></site>",
            )
            .unwrap(),
        );
        let policy = ServePolicy::for_tests();
        let admission = AdmissionController::new(2, 2, 1, Duration::from_millis(50));
        let recorder = FlightRecorder::new(policy.recorder_capacity, policy.slow_query_threshold);
        (state, policy, admission, CancelToken::new(), recorder, dir)
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: Method::Post,
            path: path.to_string(),
            query: String::new(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
            pipelined_excess: false,
        }
    }

    #[test]
    fn query_round_trips_json() {
        let (state, policy, admission, cancel, recorder, dir) = test_ctx();
        let ctx = RouteContext {
            state: &state,
            policy: &policy,
            admission: &admission,
            drain_cancel: &cancel,
            recorder: &recorder,
        };
        let req = post(
            "/query",
            r#"{"catalog":"doc","query":"//article[.contains(\"XML\")]","k":3,"snippet_chars":20}"#,
        );
        let resp = dispatch(&ctx, &req);
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let v = json::parse(&resp.body).unwrap();
        assert_eq!(
            v.get("completeness").and_then(|c| c.get("complete")),
            Some(&Json::Bool(true))
        );
        let hits = v.get("hits").cloned();
        assert!(matches!(hits, Some(Json::Array(a)) if !a.is_empty()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_results_carry_retry_after() {
        let (state, policy, admission, cancel, recorder, dir) = test_ctx();
        let ctx = RouteContext {
            state: &state,
            policy: &policy,
            admission: &admission,
            drain_cancel: &cancel,
            recorder: &recorder,
        };
        // max_candidates: 0 deterministically trips the answer budget.
        let req = post(
            "/query",
            r#"{"catalog":"doc","query":"//article[.contains(\"XML\")]","max_candidates":0}"#,
        );
        let resp = dispatch(&ctx, &req);
        assert_eq!(resp.status, 200, "partials degrade, not error");
        assert!(resp.headers.iter().any(|(n, _)| *n == "Retry-After"));
        let v = json::parse(&resp.body).unwrap();
        assert_eq!(
            v.get("completeness").and_then(|c| c.get("complete")),
            Some(&Json::Bool(false))
        );
        assert_eq!(
            v.get("completeness")
                .and_then(|c| c.get("reason"))
                .and_then(Json::as_str),
            Some("answer_budget")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_bodies_and_unknown_fields_are_400() {
        let (state, policy, admission, cancel, recorder, dir) = test_ctx();
        let ctx = RouteContext {
            state: &state,
            policy: &policy,
            admission: &admission,
            drain_cancel: &cancel,
            recorder: &recorder,
        };
        for body in [
            "not json",
            "[]",
            r#"{"query":"//a"}"#,
            r#"{"catalog":"doc"}"#,
            r#"{"catalog":"doc","query":"//a","deadine_ms":5}"#,
            r#"{"catalog":"doc","query":"//a","k":"ten"}"#,
            r#"{"catalog":"doc","query":"//a","algorithm":"magic"}"#,
            r#"{"catalog":"doc","query":"not an xpath"}"#,
        ] {
            let resp = dispatch(&ctx, &post("/query", body));
            assert_eq!(resp.status, 400, "{body}");
        }
        // Missing catalog document: 404.
        let resp = dispatch(&ctx, &post("/query", r#"{"catalog":"nope","query":"//a"}"#));
        assert_eq!(resp.status, 404);
        // Wrong method: 405.
        let mut req = post("/query", "");
        req.method = Method::Get;
        assert_eq!(dispatch(&ctx, &req).status, 405);
        // Unknown route: 404.
        let mut req = post("/nope", "");
        req.method = Method::Get;
        assert_eq!(dispatch(&ctx, &req).status, 404);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn draining_sheds_with_503_and_retry_after() {
        let (state, policy, admission, cancel, recorder, dir) = test_ctx();
        admission.drain();
        let ctx = RouteContext {
            state: &state,
            policy: &policy,
            admission: &admission,
            drain_cancel: &cancel,
            recorder: &recorder,
        };
        let resp = dispatch(&ctx, &post("/query", r#"{"catalog":"doc","query":"//a"}"#));
        assert_eq!(resp.status, 503);
        assert!(resp.headers.iter().any(|(n, _)| *n == "Retry-After"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn auxiliary_endpoints_respond() {
        let (state, policy, admission, cancel, recorder, dir) = test_ctx();
        let ctx = RouteContext {
            state: &state,
            policy: &policy,
            admission: &admission,
            drain_cancel: &cancel,
            recorder: &recorder,
        };
        let get = |path: &str, query: &str| Request {
            method: Method::Get,
            path: path.to_string(),
            query: query.to_string(),
            headers: Vec::new(),
            body: Vec::new(),
            pipelined_excess: false,
        };
        let health = dispatch(&ctx, &get("/healthz", ""));
        assert_eq!(health.status, 200);
        assert!(json::parse(&health.body).is_ok());
        let m = dispatch(&ctx, &get("/metrics", ""));
        assert_eq!(m.status, 200);
        assert_eq!(m.content_type, "text/plain; charset=utf-8");
        let prom = String::from_utf8_lossy(&m.body);
        assert!(prom.contains("# TYPE"), "default is Prometheus: {prom}");
        assert!(prom.contains("serve_requests"), "{prom}");
        let mj = dispatch(&ctx, &get("/metrics", "format=json"));
        assert!(json::parse(&mj.body).is_ok());
        let mt = dispatch(&ctx, &get("/metrics", "format=text"));
        assert_eq!(mt.status, 200);
        let cats = dispatch(&ctx, &get("/catalogs", ""));
        assert_eq!(cats.status, 200);
        let explain = dispatch(
            &ctx,
            &post("/explain", r#"{"catalog":"doc","query":"//article"}"#),
        );
        assert_eq!(explain.status, 200);
        assert!(String::from_utf8_lossy(&explain.body).contains("EXPLAIN ANALYZE"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn explain_runs_under_clamped_limits_and_drain_token() {
        let (state, policy, admission, cancel, recorder, dir) = test_ctx();
        {
            let ctx = RouteContext {
                state: &state,
                policy: &policy,
                admission: &admission,
                drain_cancel: &cancel,
                recorder: &recorder,
            };
            // Request limits reach the profiled run (zero answer budget
            // trips the governor, visible in the rendered completeness).
            let resp = dispatch(
                &ctx,
                &post(
                    "/explain",
                    r#"{"catalog":"doc","query":"//article[.contains(\"XML\")]","max_candidates":0}"#,
                ),
            );
            assert_eq!(resp.status, 200);
            let text = String::from_utf8_lossy(&resp.body);
            assert!(text.contains("completeness: exhausted"), "{text}");
        }
        // A fired drain token stops an explain run at its first governor
        // checkpoint — explain cannot outlive the drain deadline.
        cancel.cancel();
        let ctx = RouteContext {
            state: &state,
            policy: &policy,
            admission: &admission,
            drain_cancel: &cancel,
            recorder: &recorder,
        };
        let resp = dispatch(
            &ctx,
            &post(
                "/explain",
                r#"{"catalog":"doc","query":"//article[.contains(\"XML\")]"}"#,
            ),
        );
        assert_eq!(resp.status, 200);
        let text = String::from_utf8_lossy(&resp.body);
        assert!(text.contains("completeness: exhausted"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flight_recorder_feeds_debug_endpoints() {
        let (state, policy, admission, cancel, recorder, dir) = test_ctx();
        let ctx = RouteContext {
            state: &state,
            policy: &policy,
            admission: &admission,
            drain_cancel: &cancel,
            recorder: &recorder,
        };
        let get = |path: &str, query: &str| Request {
            method: Method::Get,
            path: path.to_string(),
            query: query.to_string(),
            headers: Vec::new(),
            body: Vec::new(),
            pipelined_excess: false,
        };
        // One traced query and one explain leave two records behind.
        let q = post(
            "/query",
            r#"{"catalog":"doc","query":"//article[.contains(\"XML\")]","trace":true}"#,
        );
        assert_eq!(dispatch(&ctx, &q).status, 200);
        let e = post("/explain", r#"{"catalog":"doc","query":"//article"}"#);
        assert_eq!(dispatch(&ctx, &e).status, 200);

        let resp = dispatch(&ctx, &get("/debug/queries", "n=10"));
        assert_eq!(resp.status, 200);
        let v = json::parse(&resp.body).unwrap();
        assert_eq!(v.get("recorded").and_then(Json::as_u64), Some(2));
        let Some(Json::Array(queries)) = v.get("queries") else {
            panic!("queries array: {}", String::from_utf8_lossy(&resp.body));
        };
        assert_eq!(queries.len(), 2);
        // Newest first: the explain record precedes the query record.
        assert_eq!(
            queries[0].get("endpoint").and_then(Json::as_str),
            Some("explain")
        );
        let query_rec = &queries[1];
        assert_eq!(
            query_rec.get("endpoint").and_then(Json::as_str),
            Some("query")
        );
        assert_eq!(query_rec.get("corpus").and_then(Json::as_str), Some("doc"));
        assert_eq!(
            query_rec.get("scheme").and_then(Json::as_str),
            Some("structure_first")
        );
        assert!(query_rec
            .get("skew")
            .and_then(|s| s.get("millibits"))
            .is_some());
        assert!(
            query_rec.get("fingerprint_fnv1a").is_some(),
            "traced query carries a fingerprint hash"
        );
        assert!(
            query_rec
                .get("limits")
                .and_then(|l| l.get("deadline_ms"))
                .and_then(Json::as_u64)
                .is_some(),
            "effective limits include the defaulted deadline"
        );

        // The test policy's zero slow threshold mirrors everything slow.
        let slow = dispatch(&ctx, &get("/debug/slow", ""));
        let v = json::parse(&slow.body).unwrap();
        assert!(matches!(v.get("queries"), Some(Json::Array(a)) if a.len() == 2));

        let ver = dispatch(&ctx, &get("/version", ""));
        assert_eq!(ver.status, 200);
        let v = json::parse(&ver.body).unwrap();
        assert_eq!(
            v.get("version").and_then(Json::as_str),
            Some(env!("CARGO_PKG_VERSION"))
        );
        assert_eq!(
            v.get("recorder")
                .and_then(|r| r.get("recorded"))
                .and_then(Json::as_u64),
            Some(2)
        );
        let health = dispatch(&ctx, &get("/healthz", ""));
        let v = json::parse(&health.body).unwrap();
        assert!(v.get("uptime_s").and_then(Json::as_u64).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn test_delay_requires_policy_opt_in() {
        let (state, mut policy, admission, cancel, recorder, dir) = test_ctx();
        policy.allow_test_delay = false;
        policy.http = HttpLimits::default();
        let ctx = RouteContext {
            state: &state,
            policy: &policy,
            admission: &admission,
            drain_cancel: &cancel,
            recorder: &recorder,
        };
        let resp = dispatch(
            &ctx,
            &post(
                "/query",
                r#"{"catalog":"doc","query":"//a","test_delay_ms":50}"#,
            ),
        );
        assert_eq!(resp.status, 400);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
