//! Query flight recorder: the last N completed queries, in memory, plus a
//! threshold-gated slow-query log.
//!
//! Every `/query` and `/explain` request that reaches execution leaves one
//! [`QueryRecord`] behind — what ran, under which effective limits, how
//! long it took, how complete it finished, where the governor tripped, a
//! hash of the deterministic counter fingerprint, and the per-query
//! estimate-vs-actual skew summary. Records live in a fixed-capacity,
//! lock-striped ring ([`FlightRecorder`]) served by `/debug/queries`;
//! records at or above the slow threshold are additionally kept in a
//! separate ring (`/debug/slow`) and appended as one JSON line each to the
//! optional slow-query log file.
//!
//! ## Determinism
//!
//! The recorder is fed *after* the engine has committed the query trace,
//! on the request's own worker thread (the thread that drove the
//! algorithm). It only ever **reads** results — the record's fingerprint
//! hash is computed from the already-final
//! [`QueryTrace::counter_fingerprint`](flexpath::QueryTrace) — so enabling
//! it cannot perturb governor counters, span trees, or fingerprints, and
//! the determinism matrix in `tests/determinism.rs` holds with the
//! recorder on. Ring mutation itself is scheduling-dependent (whichever
//! request finishes first records first), which is why records carry their
//! own monotonic ids: readers sort by id, never by stripe order.

use crate::json::JsonBuf;
use flexpath::QueryLimits;
use flexpath_engine::metrics;
use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of independent ring stripes. Records land in stripe
/// `id % STRIPES`, so concurrent recording threads contend on a mutex
/// 1/8th of the time they would on a single ring.
const STRIPES: usize = 8;

/// Longest query text kept in a record (the ring is a postmortem aid, not
/// an archive; a pathological 1 MB query must not pin 1 MB × capacity).
const MAX_QUERY_CHARS: usize = 512;

/// One completed query, as remembered by the [`FlightRecorder`].
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Monotonic per-process record id (assigned by
    /// [`FlightRecorder::record`]; readers sort on it).
    pub id: u64,
    /// Which route produced the record: `"query"` or `"explain"`.
    pub endpoint: &'static str,
    /// Catalog document the query ran against.
    pub corpus: String,
    /// The query text (truncated to a sane length).
    pub query: String,
    /// Algorithm name (`dpo` / `sso` / `hybrid`).
    pub algorithm: String,
    /// Ranking scheme name.
    pub scheme: String,
    /// Requested K.
    pub k: u64,
    /// Worker threads the query ran with.
    pub threads: u64,
    /// The *effective* limits the query executed under (after
    /// [`ServePolicy::clamp`](crate::ServePolicy::clamp)).
    pub limits: QueryLimits,
    /// Wall-clock execution time.
    pub duration: Duration,
    /// Whether the search ran to completion.
    pub complete: bool,
    /// Governor trip reason key (`deadline`, `answer_budget`, …) when the
    /// run was exhausted.
    pub exhaust_reason: Option<&'static str>,
    /// Governor trip site name, when the request was traced (the site is
    /// latched into the trace root; untraced runs record the reason only).
    pub trip_site: Option<String>,
    /// Answers returned to the client.
    pub answers: u64,
    /// The estimator's prediction for the final evaluation (see
    /// `ExecStats::estimated_answers`).
    pub estimated_answers: f64,
    /// Observed counterpart of the estimate (see
    /// `ExecStats::observed_answers`).
    pub observed_answers: u64,
    /// Per-query skew summary: signed log₂-ratio of estimate to observed,
    /// in millibits ([`flexpath::skew_millibits`]).
    pub skew_millibits: i64,
    /// FNV-1a hash of the deterministic counter fingerprint, when the
    /// request was traced. Two records of the same query at different
    /// thread counts must carry the same hash.
    pub fingerprint_hash: Option<u64>,
}

impl QueryRecord {
    /// Renders the record as one JSON object (the same shape is used by
    /// `/debug/queries`, `/debug/slow`, and the slow-log file lines).
    pub fn render_json(&self) -> String {
        let mut b = JsonBuf::new();
        b.raw("{");
        b.key("id");
        b.u64(self.id);
        b.key("endpoint");
        b.string(self.endpoint);
        b.key("corpus");
        b.string(&self.corpus);
        b.key("query");
        b.string(&self.query);
        b.key("algorithm");
        b.string(&self.algorithm);
        b.key("scheme");
        b.string(&self.scheme);
        b.key("k");
        b.u64(self.k);
        b.key("threads");
        b.u64(self.threads);
        b.key("limits");
        b.raw("{");
        if let Some(d) = self.limits.deadline {
            b.key("deadline_ms");
            b.u64(d.as_millis().min(u128::from(u64::MAX)) as u64);
        }
        if let Some(n) = self.limits.max_relaxations_enumerated {
            b.key("max_relaxations");
            b.u64(n as u64);
        }
        if let Some(n) = self.limits.max_candidate_answers {
            b.key("max_candidates");
            b.u64(n);
        }
        if let Some(n) = self.limits.max_ft_postings_scanned {
            b.key("max_postings");
            b.u64(n);
        }
        if let Some(n) = self.limits.max_memory_hint {
            b.key("max_memory");
            b.u64(n);
        }
        b.raw("}");
        b.key("duration_us");
        b.u64(self.duration.as_micros().min(u128::from(u64::MAX)) as u64);
        b.key("complete");
        b.bool(self.complete);
        if let Some(reason) = self.exhaust_reason {
            b.key("exhaust_reason");
            b.string(reason);
        }
        if let Some(site) = &self.trip_site {
            b.key("trip_site");
            b.string(site);
        }
        b.key("answers");
        b.u64(self.answers);
        b.key("skew");
        b.raw("{");
        b.key("estimated");
        b.f64(self.estimated_answers);
        b.key("observed");
        b.u64(self.observed_answers);
        b.key("millibits");
        if self.skew_millibits < 0 {
            b.raw(&format!("-{}", self.skew_millibits.unsigned_abs()));
        } else {
            b.u64(self.skew_millibits.unsigned_abs());
        }
        b.raw("}");
        if let Some(h) = self.fingerprint_hash {
            b.key("fingerprint_fnv1a");
            b.string(&format!("{h:016x}"));
        }
        b.raw("}");
        b.finish()
    }

    /// Truncates `query` to the recorder's per-record cap, on a char
    /// boundary.
    pub fn clip_query(query: &str) -> String {
        if query.len() <= MAX_QUERY_CHARS {
            return query.to_string();
        }
        let mut end = MAX_QUERY_CHARS;
        while !query.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &query[..end])
    }
}

/// FNV-1a (64-bit) over `bytes` — the recorder's fingerprint digest. Tiny,
/// dependency-free, and stable across platforms; collisions are acceptable
/// for a debugging aid.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fixed-capacity, lock-striped ring of completed-query records plus the
/// slow ring and optional slow-log sink. One per server process.
#[derive(Debug)]
pub struct FlightRecorder {
    stripes: Vec<Mutex<VecDeque<Arc<QueryRecord>>>>,
    /// Per-stripe capacity; total capacity is `stripe_cap * STRIPES` ≥ the
    /// requested capacity.
    stripe_cap: usize,
    slow: Mutex<VecDeque<Arc<QueryRecord>>>,
    slow_cap: usize,
    next_id: AtomicU64,
    slow_threshold: Duration,
    slow_log: Option<Mutex<File>>,
}

impl FlightRecorder {
    /// A recorder remembering up to `capacity` records (rounded up to a
    /// multiple of the stripe count), flagging queries at or above
    /// `slow_threshold` as slow.
    pub fn new(capacity: usize, slow_threshold: Duration) -> Self {
        let stripe_cap = capacity.div_ceil(STRIPES).max(1);
        FlightRecorder {
            stripes: (0..STRIPES)
                .map(|_| Mutex::new(VecDeque::with_capacity(stripe_cap)))
                .collect(),
            stripe_cap,
            slow: Mutex::new(VecDeque::new()),
            slow_cap: capacity.max(STRIPES),
            next_id: AtomicU64::new(0),
            slow_threshold,
            slow_log: None,
        }
    }

    /// Attaches a JSON-lines slow-log file (created/appended at `path`).
    /// Records at or above the slow threshold are written as one JSON
    /// object per line.
    pub fn with_slow_log(mut self, path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        self.slow_log = Some(Mutex::new(file));
        Ok(self)
    }

    /// The configured ring capacity (total across stripes).
    pub fn capacity(&self) -> usize {
        self.stripe_cap * STRIPES
    }

    /// The slow-query threshold.
    pub fn slow_threshold(&self) -> Duration {
        self.slow_threshold
    }

    /// Total records ever accepted (monotonic; survives ring eviction).
    pub fn recorded(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed)
    }

    /// Accepts one completed-query record: assigns its id, stores it in
    /// its ring stripe (evicting the stripe's oldest record at capacity),
    /// and — when the query ran at or above the slow threshold — mirrors
    /// it into the slow ring and the slow-log file. Returns the id.
    pub fn record(&self, mut rec: QueryRecord) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        rec.id = id;
        let slow = rec.duration >= self.slow_threshold;
        let rec = Arc::new(rec);
        let reg = metrics::global();
        reg.add("serve.debug.recorded", 1);
        {
            let mut stripe = lock(&self.stripes[(id % STRIPES as u64) as usize]);
            if stripe.len() >= self.stripe_cap {
                stripe.pop_front();
            }
            stripe.push_back(rec.clone());
        }
        if slow {
            reg.add("serve.debug.slow_recorded", 1);
            {
                let mut ring = lock(&self.slow);
                if ring.len() >= self.slow_cap {
                    ring.pop_front();
                }
                ring.push_back(rec.clone());
            }
            if let Some(file) = &self.slow_log {
                let line = format!("{}\n", rec.render_json());
                // lint:allow(lock-order): the file mutex exists to keep
                // slow-log lines whole — serializing this single buffered
                // write_all is its purpose, and no other lock is held.
                if lock(file).write_all(line.as_bytes()).is_err() {
                    reg.add("serve.debug.slowlog_errors", 1);
                }
            }
        }
        id
    }

    /// The most recent `n` records, newest first.
    pub fn recent(&self, n: usize) -> Vec<Arc<QueryRecord>> {
        let mut all: Vec<Arc<QueryRecord>> = Vec::new();
        for stripe in &self.stripes {
            all.extend(lock(stripe).iter().cloned());
        }
        all.sort_by_key(|rec| std::cmp::Reverse(rec.id));
        all.truncate(n);
        all
    }

    /// The most recent `n` slow records, newest first.
    pub fn slow_recent(&self, n: usize) -> Vec<Arc<QueryRecord>> {
        let ring = lock(&self.slow);
        ring.iter().rev().take(n).cloned().collect()
    }
}

// Ring stripes hold only finished Arc'd records; a panicking recorder
// thread cannot leave them logically inconsistent, so poison is ignored.
fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "flexpath-recorder-{tag}-{}-{seq}.jsonl",
            std::process::id()
        ))
    }

    fn rec(duration_ms: u64) -> QueryRecord {
        QueryRecord {
            id: 0,
            endpoint: "query",
            corpus: "doc".into(),
            query: "//article".into(),
            algorithm: "hybrid".into(),
            scheme: "structure_first".into(),
            k: 10,
            threads: 1,
            limits: QueryLimits::default().with_deadline(Duration::from_secs(2)),
            duration: Duration::from_millis(duration_ms),
            complete: true,
            exhaust_reason: None,
            trip_site: None,
            answers: 10,
            estimated_answers: 15.0,
            observed_answers: 10,
            skew_millibits: 541,
            fingerprint_hash: Some(0xdead_beef),
        }
    }

    #[test]
    fn ring_evicts_oldest_and_orders_newest_first() {
        let r = FlightRecorder::new(16, Duration::from_secs(10));
        for _ in 0..40 {
            r.record(rec(1));
        }
        assert_eq!(r.recorded(), 40);
        let recent = r.recent(100);
        assert_eq!(recent.len(), r.capacity());
        // Newest first, strictly decreasing ids, and the newest id is 39.
        assert_eq!(recent[0].id, 39);
        for w in recent.windows(2) {
            assert!(w[0].id > w[1].id);
        }
        assert_eq!(r.recent(3).len(), 3);
    }

    #[test]
    fn slow_ring_only_holds_threshold_breakers() {
        let r = FlightRecorder::new(16, Duration::from_millis(100));
        r.record(rec(5));
        r.record(rec(100));
        r.record(rec(500));
        let slow = r.slow_recent(10);
        assert_eq!(slow.len(), 2, "threshold is inclusive");
        assert!(slow[0].duration >= slow[1].duration || slow[0].id > slow[1].id);
        assert_eq!(r.recent(10).len(), 3, "main ring sees everything");
    }

    #[test]
    fn slow_log_appends_one_json_line_per_slow_record() {
        let path = tmp_path("lines");
        let _ = std::fs::remove_file(&path);
        let r = FlightRecorder::new(8, Duration::from_millis(50))
            .with_slow_log(&path)
            .unwrap();
        r.record(rec(10)); // fast: not logged
        r.record(rec(60));
        r.record(rec(70));
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = crate::json::parse(line.as_bytes()).unwrap();
            assert_eq!(v.get("endpoint").and_then(|e| e.as_str()), Some("query"));
            assert!(v.get("skew").is_some());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn record_json_is_parseable_and_complete() {
        let mut record = rec(3);
        record.exhaust_reason = Some("deadline");
        record.trip_site = Some("dpo_round".into());
        record.skew_millibits = -1234;
        record.complete = false;
        let json = record.render_json();
        let v = crate::json::parse(json.as_bytes()).unwrap();
        assert_eq!(v.get("corpus").and_then(|c| c.as_str()), Some("doc"));
        assert_eq!(v.get("complete").and_then(|c| c.as_bool()), Some(false));
        assert_eq!(
            v.get("exhaust_reason").and_then(|c| c.as_str()),
            Some("deadline")
        );
        assert_eq!(
            v.get("trip_site").and_then(|c| c.as_str()),
            Some("dpo_round")
        );
        let skew = v.get("skew").unwrap();
        assert_eq!(
            skew.get("millibits").and_then(|m| m.as_f64()),
            Some(-1234.0)
        );
        assert_eq!(skew.get("observed").and_then(|m| m.as_u64()), Some(10));
        let limits = v.get("limits").unwrap();
        assert_eq!(
            limits.get("deadline_ms").and_then(|d| d.as_u64()),
            Some(2000)
        );
        assert_eq!(
            v.get("fingerprint_fnv1a").and_then(|f| f.as_str()),
            Some("00000000deadbeef")
        );
    }

    #[test]
    fn query_clipping_respects_char_boundaries() {
        let short = QueryRecord::clip_query("//a");
        assert_eq!(short, "//a");
        let long = "é".repeat(600);
        let clipped = QueryRecord::clip_query(&long);
        assert!(clipped.chars().count() <= MAX_QUERY_CHARS + 1);
        assert!(clipped.ends_with('…'));
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        // Identical fingerprints hash identically (the /debug cross-thread
        // comparison this exists for).
        assert_eq!(fnv1a(b"root x=1\n"), fnv1a(b"root x=1\n"));
    }

    #[test]
    fn concurrent_recording_keeps_every_stripe_consistent() {
        let r = std::sync::Arc::new(FlightRecorder::new(64, Duration::from_secs(1)));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let r = r.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        r.record(rec(0));
                    }
                });
            }
        });
        assert_eq!(r.recorded(), 200);
        let recent = r.recent(usize::MAX);
        assert_eq!(recent.len(), r.capacity());
        // Ids are unique even under contention.
        let mut ids: Vec<u64> = recent.iter().map(|x| x.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), r.capacity());
    }
}
