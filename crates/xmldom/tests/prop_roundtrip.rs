//! Property tests for the document substrate: parse/serialize round trips,
//! interval-encoding invariants, and statistics consistency against naive
//! recomputation.

use flexpath_xmldom::{parse, to_xml_string, DocStats, Document, DocumentBuilder};
use proptest::prelude::*;

/// Strategy: a random element tree rendered through the builder.
#[derive(Debug, Clone)]
enum Node {
    Element { tag: usize, children: Vec<Node> },
    Text(String),
}

fn arb_tree() -> impl Strategy<Value = Node> {
    let leaf = prop_oneof![
        "[a-z][a-z ]{0,11}".prop_map(Node::Text),
        (0usize..6).prop_map(|tag| Node::Element {
            tag,
            children: vec![]
        }),
    ];
    leaf.prop_recursive(5, 48, 5, |inner| {
        (0usize..6, prop::collection::vec(inner, 0..5)).prop_map(|(tag, children)| {
            Node::Element { tag, children }
        })
    })
}

const TAGS: [&str; 6] = ["a", "b", "c", "d", "e", "f"];

fn build(node: &Node, b: &mut DocumentBuilder) {
    match node {
        Node::Text(t) => b.text(t),
        Node::Element { tag, children } => {
            b.start_element(TAGS[*tag]);
            for c in children {
                build(c, b);
            }
            b.end_element();
        }
    }
}

fn doc_from(root: &Node) -> Document {
    let mut b = DocumentBuilder::new();
    match root {
        Node::Element { .. } => build(root, &mut b),
        Node::Text(_) => {
            b.start_element("root");
            build(root, &mut b);
            b.end_element();
        }
    }
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn serialize_parse_round_trip(tree in arb_tree()) {
        let doc = doc_from(&tree);
        let xml = to_xml_string(&doc);
        let reparsed = parse(&xml).unwrap();
        prop_assert_eq!(to_xml_string(&reparsed), xml);
        // Text content is preserved exactly. (The parser drops
        // whitespace-only text nodes by default, but the generator only
        // produces text with at least one letter.)
        prop_assert_eq!(
            reparsed.subtree_text(reparsed.root_element()),
            doc.subtree_text(doc.root_element())
        );
    }

    #[test]
    fn interval_labels_are_a_proper_nesting(tree in arb_tree()) {
        let doc = doc_from(&tree);
        for a in doc.all_nodes() {
            prop_assert!(doc.start(a) < doc.end(a));
            for b in doc.all_nodes() {
                if a == b { continue; }
                let (sa, ea) = (doc.start(a), doc.end(a));
                let (sb, eb) = (doc.start(b), doc.end(b));
                // Intervals either nest or are disjoint.
                let nested = (sa < sb && eb < ea) || (sb < sa && ea < eb);
                let disjoint = ea < sb || eb < sa;
                prop_assert!(nested || disjoint, "{a} and {b} overlap improperly");
            }
        }
    }

    #[test]
    fn parent_links_agree_with_intervals(tree in arb_tree()) {
        let doc = doc_from(&tree);
        for n in doc.all_nodes() {
            match doc.parent(n) {
                Some(p) => {
                    prop_assert!(doc.is_parent(p, n));
                    prop_assert!(doc.is_ancestor(p, n));
                }
                None => prop_assert_eq!(n, doc.root_element()),
            }
            // children() yields exactly the nodes whose parent is n.
            for c in doc.children(n) {
                prop_assert_eq!(doc.parent(c), Some(n));
            }
        }
    }

    #[test]
    fn descendant_iteration_matches_interval_test(tree in arb_tree()) {
        let doc = doc_from(&tree);
        for n in doc.all_nodes() {
            let via_iter: Vec<_> = doc.descendants(n).collect();
            let via_test: Vec<_> = doc
                .all_nodes()
                .filter(|&m| doc.is_ancestor(n, m))
                .collect();
            prop_assert_eq!(via_iter, via_test);
        }
    }

    #[test]
    fn stats_match_naive_counts(tree in arb_tree()) {
        let doc = doc_from(&tree);
        let stats = DocStats::compute(&doc);
        let elements: Vec<_> = doc.elements().collect();
        prop_assert_eq!(stats.element_total(), elements.len() as u64);
        for &t1 in doc.symbols().iter().map(|(s, _)| s).collect::<Vec<_>>().iter() {
            let count = elements.iter().filter(|&&e| doc.tag(e) == Some(t1)).count() as u64;
            prop_assert_eq!(stats.tag_count(t1), count);
            for &t2 in doc.symbols().iter().map(|(s, _)| s).collect::<Vec<_>>().iter() {
                let pc = elements
                    .iter()
                    .flat_map(|&p| doc.children(p).map(move |c| (p, c)))
                    .filter(|&(p, c)| {
                        doc.tag(p) == Some(t1) && doc.tag(c) == Some(t2)
                    })
                    .count() as u64;
                let doc_ref = &doc;
                let ad = elements
                    .iter()
                    .flat_map(|&a| {
                        elements
                            .iter()
                            .filter(move |&&d| doc_ref.is_ancestor(a, d))
                            .map(move |&d| (a, d))
                    })
                    .filter(|&(a, d)| doc.tag(a) == Some(t1) && doc.tag(d) == Some(t2))
                    .count() as u64;
                prop_assert_eq!(stats.pc_count(t1, t2), pc, "pc({},{})", t1, t2);
                prop_assert_eq!(stats.ad_count(t1, t2), ad, "ad({},{})", t1, t2);
            }
        }
    }

    #[test]
    fn subtree_last_is_the_maximal_descendant(tree in arb_tree()) {
        let doc = doc_from(&tree);
        for n in doc.all_nodes() {
            let last = doc.subtree_last(n);
            let max_desc = doc
                .all_nodes()
                .filter(|&m| doc.is_ancestor(n, m))
                .max()
                .unwrap_or(n);
            prop_assert_eq!(last, max_desc);
        }
    }
}
