//! Randomized (seeded, deterministic) tests for the document substrate:
//! parse/serialize round trips, interval-encoding invariants, and
//! statistics consistency against naive recomputation.

use flexpath_xmldom::{parse, to_xml_string, DocStats, Document, DocumentBuilder};

/// Tiny deterministic PRNG (splitmix64) so cases reproduce without any
/// property-testing dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A random element tree rendered through the builder.
#[derive(Debug, Clone)]
enum Node {
    Element { tag: usize, children: Vec<Node> },
    Text(String),
}

const TAGS: [&str; 6] = ["a", "b", "c", "d", "e", "f"];

fn random_tree(rng: &mut Rng, depth: u32) -> Node {
    if depth >= 5 || rng.below(4) == 0 {
        return if rng.below(2) == 0 {
            let len = 1 + rng.below(12);
            let text: String = (0..len)
                .map(|i| {
                    if i > 0 && rng.below(5) == 0 {
                        ' '
                    } else {
                        (b'a' + rng.below(26) as u8) as char
                    }
                })
                .collect();
            // First character is always a letter, so the parser's
            // whitespace-dropping never erases the node.
            Node::Text(text)
        } else {
            Node::Element {
                tag: rng.below(TAGS.len()),
                children: vec![],
            }
        };
    }
    let children = (0..rng.below(5))
        .map(|_| random_tree(rng, depth + 1))
        .collect();
    Node::Element {
        tag: rng.below(TAGS.len()),
        children,
    }
}

fn build(node: &Node, b: &mut DocumentBuilder) {
    match node {
        Node::Text(t) => b.text(t),
        Node::Element { tag, children } => {
            b.start_element(TAGS[*tag]);
            for c in children {
                build(c, b);
            }
            b.end_element();
        }
    }
}

fn doc_from(root: &Node) -> Document {
    let mut b = DocumentBuilder::new();
    match root {
        Node::Element { .. } => build(root, &mut b),
        Node::Text(_) => {
            b.start_element("root");
            build(root, &mut b);
            b.end_element();
        }
    }
    b.finish().unwrap()
}

/// Runs `body` over 96 deterministic random documents.
fn for_docs(seed: u64, mut body: impl FnMut(&Document)) {
    for case in 0..96u64 {
        let mut rng = Rng(seed ^ case.wrapping_mul(0x0101_0101_0101_0101));
        let tree = random_tree(&mut rng, 0);
        body(&doc_from(&tree));
    }
}

#[test]
fn serialize_parse_round_trip() {
    for_docs(1, |doc| {
        let xml = to_xml_string(doc);
        let reparsed = parse(&xml).unwrap();
        assert_eq!(to_xml_string(&reparsed), xml);
        // Text content is preserved exactly. (The parser drops
        // whitespace-only text nodes by default, but the generator only
        // produces text starting with a letter.)
        assert_eq!(
            reparsed.subtree_text(reparsed.root_element()),
            doc.subtree_text(doc.root_element())
        );
    });
}

#[test]
fn interval_labels_are_a_proper_nesting() {
    for_docs(2, |doc| {
        for a in doc.all_nodes() {
            assert!(doc.start(a) < doc.end(a));
            for b in doc.all_nodes() {
                if a == b {
                    continue;
                }
                let (sa, ea) = (doc.start(a), doc.end(a));
                let (sb, eb) = (doc.start(b), doc.end(b));
                // Intervals either nest or are disjoint.
                let nested = (sa < sb && eb < ea) || (sb < sa && ea < eb);
                let disjoint = ea < sb || eb < sa;
                assert!(nested || disjoint, "{a:?} and {b:?} overlap improperly");
            }
        }
    });
}

#[test]
fn parent_links_agree_with_intervals() {
    for_docs(3, |doc| {
        for n in doc.all_nodes() {
            match doc.parent(n) {
                Some(p) => {
                    assert!(doc.is_parent(p, n));
                    assert!(doc.is_ancestor(p, n));
                }
                None => assert_eq!(n, doc.root_element()),
            }
            // children() yields exactly the nodes whose parent is n.
            for c in doc.children(n) {
                assert_eq!(doc.parent(c), Some(n));
            }
        }
    });
}

#[test]
fn descendant_iteration_matches_interval_test() {
    for_docs(4, |doc| {
        for n in doc.all_nodes() {
            let via_iter: Vec<_> = doc.descendants(n).collect();
            let via_test: Vec<_> = doc.all_nodes().filter(|&m| doc.is_ancestor(n, m)).collect();
            assert_eq!(via_iter, via_test);
        }
    });
}

#[test]
fn stats_match_naive_counts() {
    for_docs(5, |doc| {
        let stats = DocStats::compute(doc);
        let elements: Vec<_> = doc.elements().collect();
        assert_eq!(stats.element_total(), elements.len() as u64);
        let syms: Vec<_> = doc.symbols().iter().map(|(s, _)| s).collect();
        for &t1 in &syms {
            let count = elements.iter().filter(|&&e| doc.tag(e) == Some(t1)).count() as u64;
            assert_eq!(stats.tag_count(t1), count);
            for &t2 in &syms {
                let pc = elements
                    .iter()
                    .flat_map(|&p| doc.children(p).map(move |c| (p, c)))
                    .filter(|&(p, c)| doc.tag(p) == Some(t1) && doc.tag(c) == Some(t2))
                    .count() as u64;
                let doc_ref = &doc;
                let ad = elements
                    .iter()
                    .flat_map(|&a| {
                        elements
                            .iter()
                            .filter(move |&&d| doc_ref.is_ancestor(a, d))
                            .map(move |&d| (a, d))
                    })
                    .filter(|&(a, d)| doc.tag(a) == Some(t1) && doc.tag(d) == Some(t2))
                    .count() as u64;
                assert_eq!(stats.pc_count(t1, t2), pc, "pc({t1:?},{t2:?})");
                assert_eq!(stats.ad_count(t1, t2), ad, "ad({t1:?},{t2:?})");
            }
        }
    });
}

#[test]
fn subtree_last_is_the_maximal_descendant() {
    for_docs(6, |doc| {
        for n in doc.all_nodes() {
            let last = doc.subtree_last(n);
            let max_desc = doc
                .all_nodes()
                .filter(|&m| doc.is_ancestor(n, m))
                .max()
                .unwrap_or(n);
            assert_eq!(last, max_desc);
        }
    });
}
