//! Robustness: the parser must never panic, whatever the input — it either
//! produces a document or a positioned error. Fuzz-lite via a seeded PRNG
//! over arbitrary strings and over mutations of valid XML.

use flexpath_xmldom::{parse, parse_with_options, to_xml_string, ParseOptions};

/// Tiny deterministic PRNG (splitmix64) for reproducible fuzzing.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

const CASES: u64 = 256;

#[test]
fn arbitrary_input_never_panics() {
    for case in 0..CASES {
        let mut rng = Rng(0x100 + case);
        let len = rng.below(201);
        let input: String = (0..len)
            .filter_map(|_| char::from_u32(rng.next() as u32 % 0xD800))
            .collect();
        let _ = parse(&input);
        let _ = parse_with_options(
            &input,
            ParseOptions {
                keep_whitespace: true,
                ..Default::default()
            },
        );
    }
}

#[test]
fn xml_flavoured_noise_never_panics() {
    const ALPHABET: &[u8] = b"<>/abc\"'= &;![]-";
    for case in 0..CASES {
        let mut rng = Rng(0x200 + case);
        let len = rng.below(121);
        let input: String = (0..len)
            .map(|_| ALPHABET[rng.below(ALPHABET.len())] as char)
            .collect();
        let _ = parse(&input);
    }
}

#[test]
fn truncations_of_valid_xml_never_panic() {
    let valid = "<a x=\"1&amp;2\"><!-- c --><b><![CDATA[z]]></b>text &#65; <c/></a>";
    for cut in 0..=valid.len() {
        let mut end = cut;
        // Cut on a char boundary.
        while !valid.is_char_boundary(end) {
            end -= 1;
        }
        let _ = parse(&valid[..end]);
    }
}

#[test]
fn mutations_of_valid_xml_never_panic() {
    let valid = "<a x=\"1\"><b>hello &amp; goodbye</b><c/></a>";
    for case in 0..CASES {
        let mut rng = Rng(0x300 + case);
        let mut s: Vec<char> = valid.chars().collect();
        let pos = rng.below(60);
        let replacement = char::from_u32(rng.next() as u32 % 0xD800).unwrap_or('?');
        if pos < s.len() {
            s[pos] = replacement;
        }
        let mutated: String = s.into_iter().collect();
        let _ = parse(&mutated);
    }
}

#[test]
fn successful_parses_round_trip() {
    const ALPHABET: &[u8] = b"<>abc/ ";
    for case in 0..CASES {
        let mut rng = Rng(0x400 + case);
        let len = rng.below(81);
        let input: String = (0..len)
            .map(|_| ALPHABET[rng.below(ALPHABET.len())] as char)
            .collect();
        // Whenever noise happens to parse, the result must serialize and
        // re-parse to the same document.
        if let Ok(doc) = parse(&input) {
            let xml = to_xml_string(&doc);
            let reparsed = parse(&xml).expect("serializer output must re-parse");
            assert_eq!(to_xml_string(&reparsed), xml);
        }
    }
}
