//! Robustness: the parser must never panic, whatever the input — it either
//! produces a document or a positioned error. Fuzz-lite via proptest over
//! arbitrary strings and over mutations of valid XML.

use flexpath_xmldom::{parse, parse_with_options, to_xml_string, ParseOptions};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_input_never_panics(input in ".{0,200}") {
        let _ = parse(&input);
        let _ = parse_with_options(&input, ParseOptions { keep_whitespace: true });
    }

    #[test]
    fn xml_flavoured_noise_never_panics(
        input in "[<>/a-c\"'= &;!\\[\\]-]{0,120}"
    ) {
        let _ = parse(&input);
    }

    #[test]
    fn truncations_of_valid_xml_never_panic(cut in 0usize..200) {
        let valid = "<a x=\"1&amp;2\"><!-- c --><b><![CDATA[z]]></b>text &#65; <c/></a>";
        let cut = cut.min(valid.len());
        // Cut on a char boundary.
        let mut end = cut;
        while !valid.is_char_boundary(end) {
            end -= 1;
        }
        let _ = parse(&valid[..end]);
    }

    #[test]
    fn mutations_of_valid_xml_never_panic(
        pos in 0usize..60,
        replacement in prop::char::any(),
    ) {
        let valid = "<a x=\"1\"><b>hello &amp; goodbye</b><c/></a>";
        let mut s: Vec<char> = valid.chars().collect();
        if pos < s.len() {
            s[pos] = replacement;
        }
        let mutated: String = s.into_iter().collect();
        let _ = parse(&mutated);
    }

    #[test]
    fn successful_parses_round_trip(input in "[<>a-c/ ]{0,80}") {
        // Whenever noise happens to parse, the result must serialize and
        // re-parse to the same document.
        if let Ok(doc) = parse(&input) {
            let xml = to_xml_string(&doc);
            let reparsed = parse(&xml).expect("serializer output must re-parse");
            prop_assert_eq!(to_xml_string(&reparsed), xml);
        }
    }
}
