//! # flexpath-xmldom
//!
//! Arena-based XML document model used by every layer of the FleXPath
//! reproduction (SIGMOD 2004). The paper's query processor is built on
//! *structural joins* over node lists sorted in document order
//! (Al-Khalifa et al., ICDE 2002), which require each node to carry an
//! interval label. This crate provides:
//!
//! * a from-scratch, dependency-free XML **parser** ([`parse`]) and
//!   **serializer** ([`serialize::write_xml`]);
//! * an arena [`Document`] whose nodes carry `(start, end, level)` interval
//!   labels assigned in document order, so ancestor/descendant tests are
//!   O(1) and per-tag node lists come out sorted;
//! * a programmatic [`DocumentBuilder`] (used by the XMark generator and by
//!   tests);
//! * [`DocStats`] — the `#(t)`, `#pc(t1,t2)`, `#ad(t1,t2)` occurrence counts
//!   that FleXPath's predicate penalties (Section 4.3.1) and selectivity
//!   estimates (Section 6) are computed from.
//!
//! ## Example
//!
//! ```
//! use flexpath_xmldom::{parse, Document};
//!
//! let doc = parse("<article><section><paragraph>XML streaming</paragraph></section></article>")
//!     .expect("well-formed");
//! let article = doc.root_element();
//! let sym = doc.symbols().lookup("paragraph").unwrap();
//! let paras = doc.nodes_with_tag(sym);
//! assert_eq!(paras.len(), 1);
//! assert!(doc.is_ancestor(article, paras[0]));
//! assert_eq!(doc.subtree_text(paras[0]), "XML streaming");
//! ```

// Library targets must stay panic-free on input-reachable paths; the
// workspace `no_panics` test enforces the same rule by source scan.
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod axes;
pub mod builder;
pub mod codec;
pub mod document;
pub mod error;
pub mod events;
pub mod parser;
pub mod serialize;
pub mod stats;
pub mod symbols;
pub mod wire;

pub use axes::{AncestorIter, ChildIter, DescendantIter};
pub use builder::DocumentBuilder;
pub use codec::CodecError;
pub use document::{Document, NodeId, NodeKind};
pub use error::{ParseError, ParseErrorKind};
pub use events::{FnSink, XmlEvent, XmlSink};
pub use parser::{parse, parse_events, parse_with_options, ParseOptions};
pub use serialize::{to_xml_pretty, to_xml_string, write_xml};
pub use stats::{DocStats, TagPair};
pub use symbols::{Sym, SymbolTable};
pub use wire::{ByteReader, ByteWriter, WireError};
