//! Minimal binary wire helpers shared by every persistent-store codec.
//!
//! The persistent corpus format (see the `flexpath-store` crate) is
//! deliberately dependency-free: fixed-width little-endian integers and
//! length-prefixed UTF-8 strings, written by [`ByteWriter`] and read back
//! by [`ByteReader`]. The reader is *total*: every method returns a typed
//! [`WireError`] instead of panicking, no matter how truncated or
//! malformed the input bytes are — the store's corruption contract ("no
//! panic on any byte flip") bottoms out here.

use std::fmt;

/// A decode failure at a specific byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before `want` more bytes could be read.
    UnexpectedEof {
        /// Byte offset at which the read was attempted.
        at: usize,
        /// Number of bytes the read needed.
        want: usize,
    },
    /// A length-prefixed string was not valid UTF-8.
    InvalidUtf8 {
        /// Byte offset of the string payload.
        at: usize,
    },
    /// A length or count field exceeds what the remaining input could hold.
    ImplausibleLength {
        /// Byte offset of the offending field.
        at: usize,
        /// The decoded length/count value.
        len: u64,
    },
    /// Trailing bytes remained after a decode that must consume everything.
    TrailingBytes {
        /// Byte offset of the first unconsumed byte.
        at: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { at, want } => {
                write!(
                    f,
                    "unexpected end of input at byte {at} (wanted {want} more)"
                )
            }
            WireError::InvalidUtf8 { at } => write!(f, "invalid UTF-8 string at byte {at}"),
            WireError::ImplausibleLength { at, len } => {
                write!(f, "implausible length {len} at byte {at}")
            }
            WireError::TrailingBytes { at } => write!(f, "trailing bytes at offset {at}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// An empty writer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes (no length prefix).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a `u32` length prefix followed by the UTF-8 bytes of `s`.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian decoder over a borrowed byte slice.
///
/// Every read advances an internal cursor; a read past the end returns
/// [`WireError::UnexpectedEof`] and leaves the cursor untouched.
#[derive(Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `data`, cursor at 0.
    pub fn new(data: &'a [u8]) -> Self {
        ByteReader { data, pos: 0 }
    }

    /// Current cursor offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether the cursor has consumed every byte.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.data.len()
    }

    /// Errors unless every byte was consumed.
    pub fn expect_exhausted(&self) -> Result<(), WireError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes { at: self.pos })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or(WireError::UnexpectedEof {
                at: self.pos,
                want: n,
            })?;
        // lint:allow(panic): `end` is checked_add + clamped to len above.
        let out = &self.data[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        // lint:allow(panic): take(1) guarantees exactly one byte.
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        // lint:allow(panic): take(2) guarantees two bytes.
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        // lint:allow(panic): take(4) guarantees four bytes.
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b); // take(8) guarantees eight bytes
        Ok(u64::from_le_bytes(a))
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        let at = self.pos;
        let len = self.u32()? as usize;
        if len > self.remaining() {
            // Rewind so the reported offset points at the length field.
            self.pos = at;
            return Err(WireError::ImplausibleLength {
                at,
                len: len as u64,
            });
        }
        let start = self.pos;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| WireError::InvalidUtf8 { at: start })
    }

    /// Reads a `u64` count field and sanity-checks it against the bytes
    /// remaining: each counted item occupies at least `min_item_bytes`, so
    /// a count that could not possibly fit is rejected *before* any
    /// allocation sized by it (a flipped high byte in a count must not
    /// trigger a multi-gigabyte `Vec::with_capacity`).
    pub fn count(&mut self, min_item_bytes: usize) -> Result<usize, WireError> {
        let at = self.pos;
        let n = self.u64()?;
        let max = match min_item_bytes {
            0 => u64::MAX,
            m => (self.remaining() as u64).checked_div(m as u64).unwrap_or(0),
        };
        if n > max {
            self.pos = at;
            return Err(WireError::ImplausibleLength { at, len: n });
        }
        Ok(n as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(1 << 40);
        w.str("héllo");
        w.bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes(3).unwrap(), &[1, 2, 3]);
        assert!(r.expect_exhausted().is_ok());
    }

    #[test]
    fn truncated_reads_error_without_panicking() {
        let mut w = ByteWriter::new();
        w.u32(5);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..2]);
        assert!(matches!(r.u32(), Err(WireError::UnexpectedEof { .. })));
        // Cursor unchanged: a shorter read still works.
        assert_eq!(r.u16().unwrap(), 5);
    }

    #[test]
    fn oversized_string_length_is_implausible() {
        let mut w = ByteWriter::new();
        w.u32(1_000_000); // length prefix far beyond the payload
        w.bytes(b"xy");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.str(),
            Err(WireError::ImplausibleLength { at: 0, .. })
        ));
    }

    #[test]
    fn invalid_utf8_is_typed() {
        let mut w = ByteWriter::new();
        w.u32(2);
        w.bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.str(), Err(WireError::InvalidUtf8 { at: 4 })));
    }

    #[test]
    fn count_rejects_impossible_item_counts() {
        let mut w = ByteWriter::new();
        w.u64(u64::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.count(4),
            Err(WireError::ImplausibleLength { .. })
        ));
        // Zero-byte items accept any count.
        let mut r = ByteReader::new(&bytes);
        assert!(r.count(0).is_ok());
    }

    #[test]
    fn trailing_bytes_are_reported() {
        let bytes = [1u8, 2, 3];
        let mut r = ByteReader::new(&bytes);
        let _ = r.u8();
        assert_eq!(
            r.expect_exhausted(),
            Err(WireError::TrailingBytes { at: 1 })
        );
    }
}
