//! Navigation axes: child, descendant, ancestor iterators.
//!
//! Descendant iteration exploits the fact that node ids are assigned in
//! document order, so a subtree occupies a contiguous id range — the
//! iterator is a simple counter, no stack needed.

use crate::document::{Document, NodeId};

/// Iterator over the children of a node, in document order.
#[derive(Debug, Clone)]
pub struct ChildIter<'d> {
    doc: &'d Document,
    next: Option<NodeId>,
}

impl Iterator for ChildIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.doc.next_sibling(cur);
        Some(cur)
    }
}

/// Iterator over the (strict) descendants of a node, in document order.
#[derive(Debug, Clone)]
pub struct DescendantIter {
    next: u32,
    last: u32,
}

impl Iterator for DescendantIter {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.next > self.last {
            return None;
        }
        let id = NodeId(self.next);
        self.next += 1;
        Some(id)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.last + 1).saturating_sub(self.next) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for DescendantIter {}

/// Iterator over the (strict) ancestors of a node, nearest first.
#[derive(Debug, Clone)]
pub struct AncestorIter<'d> {
    doc: &'d Document,
    next: Option<NodeId>,
}

impl Iterator for AncestorIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.doc.parent(cur);
        Some(cur)
    }
}

impl Document {
    /// Children of `n` in document order.
    pub fn children(&self, n: NodeId) -> ChildIter<'_> {
        ChildIter {
            doc: self,
            next: self.first_child(n),
        }
    }

    /// Strict descendants of `n` in document order.
    pub fn descendants(&self, n: NodeId) -> DescendantIter {
        DescendantIter {
            next: n.0 + 1,
            last: self.subtree_last(n).0,
        }
    }

    /// `n` followed by its descendants, in document order.
    pub fn descendants_or_self(&self, n: NodeId) -> DescendantIter {
        DescendantIter {
            next: n.0,
            last: self.subtree_last(n).0,
        }
    }

    /// Strict ancestors of `n`, nearest (parent) first.
    pub fn ancestors(&self, n: NodeId) -> AncestorIter<'_> {
        AncestorIter {
            doc: self,
            next: self.parent(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse;

    const DOC: &str = "<a><b><c/><d/></b><e>t</e></a>";

    #[test]
    fn children_in_document_order() {
        let doc = parse(DOC).unwrap();
        let root = doc.root_element();
        let tags: Vec<_> = doc.children(root).filter_map(|c| doc.tag_name(c)).collect();
        assert_eq!(tags, ["b", "e"]);
    }

    #[test]
    fn descendants_cover_subtree_exactly() {
        let doc = parse(DOC).unwrap();
        let b = doc.nodes_with_tag_name("b")[0];
        let tags: Vec<_> = doc.descendants(b).filter_map(|c| doc.tag_name(c)).collect();
        assert_eq!(tags, ["c", "d"]);
        // Every descendant passes the O(1) interval test.
        for d in doc.descendants(b) {
            assert!(doc.is_ancestor(b, d));
        }
    }

    #[test]
    fn descendants_or_self_includes_self_first() {
        let doc = parse(DOC).unwrap();
        let b = doc.nodes_with_tag_name("b")[0];
        let first = doc.descendants_or_self(b).next().unwrap();
        assert_eq!(first, b);
        assert_eq!(
            doc.descendants_or_self(b).count(),
            doc.descendants(b).count() + 1
        );
    }

    #[test]
    fn ancestors_walk_to_root() {
        let doc = parse(DOC).unwrap();
        let c = doc.nodes_with_tag_name("c")[0];
        let tags: Vec<_> = doc.ancestors(c).filter_map(|a| doc.tag_name(a)).collect();
        assert_eq!(tags, ["b", "a"]);
    }

    #[test]
    fn leaf_has_no_descendants() {
        let doc = parse(DOC).unwrap();
        let c = doc.nodes_with_tag_name("c")[0];
        assert_eq!(doc.descendants(c).count(), 0);
    }
}
