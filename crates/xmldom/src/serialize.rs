//! XML serialization (the inverse of [`crate::parse`]).

use crate::document::{Document, NodeId, NodeKind};
use std::fmt::Write as _;

/// Serializes the whole document to a string.
pub fn to_xml_string(doc: &Document) -> String {
    let mut out = String::with_capacity(doc.node_count() * 16);
    write_xml(doc, doc.root_element(), &mut out);
    out
}

/// Serializes the whole document with two-space indentation.
///
/// Elements with text content keep their content inline (indentation inside
/// mixed content would change the text); element-only content is broken
/// across lines.
pub fn to_xml_pretty(doc: &Document) -> String {
    let mut out = String::with_capacity(doc.node_count() * 24);
    write_pretty(doc, doc.root_element(), 0, &mut out);
    out.push('\n');
    out
}

fn write_pretty(doc: &Document, node: NodeId, depth: usize, out: &mut String) {
    match doc.kind(node) {
        NodeKind::Text { .. } => {
            escape_text(doc.text_content(node).unwrap_or_default(), out);
        }
        NodeKind::Element { tag } => {
            let name = doc.symbols().name(tag);
            out.push('<');
            out.push_str(name);
            for (attr, value) in doc.attributes(node) {
                let _ = write!(out, " {}=\"", doc.symbols().name(*attr));
                escape_attr(value, out);
                out.push('"');
            }
            if doc.first_child(node).is_none() {
                out.push_str("/>");
                return;
            }
            out.push('>');
            let mixed = doc
                .children(node)
                .any(|c| matches!(doc.kind(c), NodeKind::Text { .. }));
            if mixed {
                // Mixed content: indentation would alter the text; inline.
                for child in doc.children(node) {
                    write_xml(doc, child, out);
                }
            } else {
                for child in doc.children(node) {
                    out.push('\n');
                    for _ in 0..=depth {
                        out.push_str("  ");
                    }
                    write_pretty(doc, child, depth + 1, out);
                }
                out.push('\n');
                for _ in 0..depth {
                    out.push_str("  ");
                }
            }
            out.push_str("</");
            out.push_str(name);
            out.push('>');
        }
    }
}

/// Serializes the subtree rooted at `node` into `out`.
pub fn write_xml(doc: &Document, node: NodeId, out: &mut String) {
    match doc.kind(node) {
        NodeKind::Text { .. } => {
            escape_text(doc.text_content(node).unwrap_or_default(), out);
        }
        NodeKind::Element { tag } => {
            let name = doc.symbols().name(tag);
            out.push('<');
            out.push_str(name);
            for (attr, value) in doc.attributes(node) {
                let _ = write!(out, " {}=\"", doc.symbols().name(*attr));
                escape_attr(value, out);
                out.push('"');
            }
            if doc.first_child(node).is_none() {
                out.push_str("/>");
                return;
            }
            out.push('>');
            for child in doc.children(node) {
                write_xml(doc, child, out);
            }
            out.push_str("</");
            out.push_str(name);
            out.push('>');
        }
    }
}

fn escape_text(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
}

fn escape_attr(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn round_trips_structure() {
        let src = "<a x=\"1\"><b>hi</b><c/></a>";
        let doc = parse(src).unwrap();
        assert_eq!(to_xml_string(&doc), src);
    }

    #[test]
    fn escapes_special_characters() {
        let doc = parse("<a t=\"&quot;&amp;\">&lt;&amp;&gt;</a>").unwrap();
        let xml = to_xml_string(&doc);
        assert_eq!(xml, "<a t=\"&quot;&amp;\">&lt;&amp;&gt;</a>");
        // Re-parsing the output yields the same text.
        let doc2 = parse(&xml).unwrap();
        assert_eq!(doc2.subtree_text(doc2.root_element()), "<&>");
    }

    #[test]
    fn empty_elements_self_close() {
        let doc = parse("<a><b></b></a>").unwrap();
        assert_eq!(to_xml_string(&doc), "<a><b/></a>");
    }

    #[test]
    fn pretty_printing_indents_element_content() {
        let doc = parse("<a><b><c/></b><d>text</d></a>").unwrap();
        let pretty = to_xml_pretty(&doc);
        assert_eq!(
            pretty,
            "<a>\n  <b>\n    <c/>\n  </b>\n  <d>text</d>\n</a>\n"
        );
        // Pretty output re-parses to an equivalent document (whitespace-only
        // text is dropped by default).
        let reparsed = parse(&pretty).unwrap();
        assert_eq!(to_xml_string(&reparsed), to_xml_string(&doc));
    }

    #[test]
    fn pretty_printing_preserves_mixed_content_exactly() {
        let doc = parse("<a>pre <b>mid</b> post</a>").unwrap();
        let pretty = to_xml_pretty(&doc);
        let reparsed = parse(&pretty).unwrap();
        assert_eq!(
            reparsed.subtree_text(reparsed.root_element()),
            doc.subtree_text(doc.root_element())
        );
    }

    #[test]
    fn parse_serialize_parse_is_stable() {
        let src = "<r><x a=\"v\">t1<y/>t2</x><x>A&amp;B</x></r>";
        let once = to_xml_string(&parse(src).unwrap());
        let twice = to_xml_string(&parse(&once).unwrap());
        assert_eq!(once, twice);
    }
}
