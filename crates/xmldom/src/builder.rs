//! Programmatic document construction.
//!
//! The builder is the single construction path for [`Document`]s: the parser
//! and the XMark generator both drive it, so interval labels, levels,
//! sibling links, and tag indexes are assigned in exactly one place.

use crate::document::{Document, NodeData, NodeId, NodeKind};
use crate::symbols::{Sym, SymbolTable};
use std::collections::HashMap;

/// Streaming builder: call [`start_element`](Self::start_element) /
/// [`end_element`](Self::end_element) / [`text`](Self::text) in document
/// order, then [`finish`](Self::finish).
///
/// ```
/// use flexpath_xmldom::DocumentBuilder;
///
/// let mut b = DocumentBuilder::new();
/// b.start_element("article");
/// b.attribute("id", "42");
/// b.start_element("title");
/// b.text("FleXPath");
/// b.end_element();
/// b.end_element();
/// let doc = b.finish().unwrap();
/// assert_eq!(doc.tag_name(doc.root_element()), Some("article"));
/// ```
#[derive(Debug)]
pub struct DocumentBuilder {
    nodes: Vec<NodeData>,
    texts: Vec<Box<str>>,
    attrs: Vec<(Sym, Box<str>)>,
    symbols: SymbolTable,
    tag_index: HashMap<Sym, Vec<NodeId>>,
    /// Stack of open elements; for each: (node id, last child added so far).
    open: Vec<(NodeId, Option<NodeId>)>,
    counter: u32,
    root: Option<NodeId>,
    finished_root: bool,
}

/// Errors surfaced when the build call sequence is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// `end_element` without a matching open element.
    UnmatchedEnd,
    /// `text` or `attribute` outside any open element, or a second root.
    OutsideRoot,
    /// `finish` with elements still open or no root at all.
    Incomplete,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnmatchedEnd => write!(f, "end_element without open element"),
            BuildError::OutsideRoot => write!(f, "content outside the root element"),
            BuildError::Incomplete => write!(f, "document incomplete at finish"),
        }
    }
}

impl std::error::Error for BuildError {}

impl Default for DocumentBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DocumentBuilder {
    /// Creates an empty builder with a fresh symbol table.
    pub fn new() -> Self {
        Self::with_symbols(SymbolTable::new())
    }

    /// Creates a builder that interns into an existing table (lets several
    /// documents share tag ids).
    pub fn with_symbols(symbols: SymbolTable) -> Self {
        DocumentBuilder {
            nodes: Vec::new(),
            texts: Vec::new(),
            attrs: Vec::new(),
            symbols,
            tag_index: HashMap::new(),
            open: Vec::new(),
            counter: 0,
            root: None,
            finished_root: false,
        }
    }

    fn push_node(&mut self, kind: NodeKind) -> Result<NodeId, BuildError> {
        if self.finished_root && self.open.is_empty() {
            return Err(BuildError::OutsideRoot);
        }
        let id = NodeId(self.nodes.len() as u32);
        let (parent, level) = match self.open.last().copied() {
            Some((p, _)) => (Some(p), self.nodes[p.index()].level + 1),
            None => {
                if matches!(kind, NodeKind::Text { .. }) {
                    return Err(BuildError::OutsideRoot);
                }
                (None, 0)
            }
        };
        let start = self.counter;
        self.counter += 1;
        self.nodes.push(NodeData {
            kind,
            parent,
            first_child: None,
            next_sibling: None,
            start,
            end: 0,
            level,
            attrs_start: self.attrs.len() as u32,
            attrs_len: 0,
        });
        // Wire sibling / first-child links.
        if let Some((p, last_child)) = self.open.last_mut() {
            match *last_child {
                Some(prev) => self.nodes[prev.index()].next_sibling = Some(id),
                None => {
                    let p = *p;
                    self.nodes[p.index()].first_child = Some(id);
                }
            }
            *last_child = Some(id);
        }
        Ok(id)
    }

    /// Opens an element with the given tag name.
    ///
    /// # Panics
    /// If called after the root element was closed; use
    /// [`try_start_element`](Self::try_start_element) to handle that case.
    #[allow(clippy::expect_used)] // documented contract of the infallible API
    pub fn start_element(&mut self, tag: &str) -> NodeId {
        self.try_start_element(tag)
            .expect("start_element after the root element was closed")
    }

    /// Fallible variant of [`start_element`](Self::start_element).
    pub fn try_start_element(&mut self, tag: &str) -> Result<NodeId, BuildError> {
        let sym = self.symbols.intern(tag);
        let id = self.push_node(NodeKind::Element { tag: sym })?;
        if self.root.is_none() {
            self.root = Some(id);
        }
        self.tag_index.entry(sym).or_default().push(id);
        self.open.push((id, None));
        Ok(id)
    }

    /// Adds an attribute to the element most recently opened.
    ///
    /// Must be called before any child content is added; attribute storage
    /// is contiguous per element.
    ///
    /// # Panics
    /// If no element is open or child content was already added; use
    /// [`try_attribute`](Self::try_attribute) to handle those cases.
    #[allow(clippy::expect_used)] // documented contract of the infallible API
    pub fn attribute(&mut self, name: &str, value: &str) {
        self.try_attribute(name, value)
            .expect("attribute outside an open element or after child content")
    }

    /// Fallible variant of [`attribute`](Self::attribute).
    pub fn try_attribute(&mut self, name: &str, value: &str) -> Result<(), BuildError> {
        let &(cur, last_child) = self.open.last().ok_or(BuildError::OutsideRoot)?;
        // Attributes must precede children so the flat attr arena stays
        // contiguous per element.
        if last_child.is_some() {
            return Err(BuildError::OutsideRoot);
        }
        let sym = self.symbols.intern(name);
        self.attrs.push((sym, value.into()));
        self.nodes[cur.index()].attrs_len += 1;
        Ok(())
    }

    /// Appends a text node under the currently open element.
    ///
    /// Empty strings are ignored (no empty text nodes are materialized).
    ///
    /// # Panics
    /// If no element is open; use [`try_text`](Self::try_text) to handle
    /// that case.
    #[allow(clippy::expect_used)] // documented contract of the infallible API
    pub fn text(&mut self, content: &str) {
        self.try_text(content)
            .expect("text outside an open element")
    }

    /// Fallible variant of [`text`](Self::text).
    pub fn try_text(&mut self, content: &str) -> Result<(), BuildError> {
        if content.is_empty() {
            return Ok(());
        }
        if self.open.is_empty() {
            return Err(BuildError::OutsideRoot);
        }
        let text_idx = self.texts.len() as u32;
        self.texts.push(content.into());
        let id = self.push_node(NodeKind::Text { text: text_idx })?;
        // Text nodes are leaves: close their interval immediately.
        self.nodes[id.index()].end = self.counter;
        self.counter += 1;
        Ok(())
    }

    /// Closes the most recently opened element.
    ///
    /// # Panics
    /// If no element is open; use [`try_end_element`](Self::try_end_element)
    /// to handle that case.
    #[allow(clippy::expect_used)] // documented contract of the infallible API
    pub fn end_element(&mut self) {
        self.try_end_element()
            .expect("end_element without open element")
    }

    /// Fallible variant of [`end_element`](Self::end_element).
    pub fn try_end_element(&mut self) -> Result<(), BuildError> {
        let (id, _) = self.open.pop().ok_or(BuildError::UnmatchedEnd)?;
        self.nodes[id.index()].end = self.counter;
        self.counter += 1;
        if self.open.is_empty() {
            self.finished_root = true;
        }
        Ok(())
    }

    /// Tag name of the innermost open element (useful for parsers).
    pub fn current_open_tag(&self) -> Option<&str> {
        let &(id, _) = self.open.last()?;
        match self.nodes[id.index()].kind {
            NodeKind::Element { tag } => Some(self.symbols.name(tag)),
            NodeKind::Text { .. } => None,
        }
    }

    /// Depth of the open-element stack.
    pub fn open_depth(&self) -> usize {
        self.open.len()
    }

    /// Finalizes the document.
    pub fn finish(self) -> Result<Document, BuildError> {
        let (Some(root), true) = (self.root, self.open.is_empty()) else {
            return Err(BuildError::Incomplete);
        };
        let subtree_last = crate::document::compute_subtree_last(&self.nodes);
        Ok(Document {
            nodes: self.nodes,
            texts: self.texts,
            attrs: self.attrs,
            symbols: self.symbols,
            tag_index: self.tag_index,
            root,
            subtree_last,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_document() {
        let mut b = DocumentBuilder::new();
        b.start_element("a");
        b.start_element("b");
        b.text("x");
        b.end_element();
        b.start_element("b");
        b.end_element();
        b.end_element();
        let doc = b.finish().unwrap();
        assert_eq!(doc.nodes_with_tag_name("b").len(), 2);
        assert_eq!(doc.subtree_text(doc.root_element()), "x");
    }

    #[test]
    fn empty_text_is_skipped() {
        let mut b = DocumentBuilder::new();
        b.start_element("a");
        b.text("");
        b.end_element();
        let doc = b.finish().unwrap();
        assert_eq!(doc.node_count(), 1);
    }

    #[test]
    fn unmatched_end_is_an_error() {
        let mut b = DocumentBuilder::new();
        assert_eq!(b.try_end_element(), Err(BuildError::UnmatchedEnd));
    }

    #[test]
    fn finish_with_open_elements_is_an_error() {
        let mut b = DocumentBuilder::new();
        b.start_element("a");
        assert!(matches!(b.finish(), Err(BuildError::Incomplete)));
    }

    #[test]
    fn second_root_is_an_error() {
        let mut b = DocumentBuilder::new();
        b.start_element("a");
        b.end_element();
        assert_eq!(b.try_start_element("b"), Err(BuildError::OutsideRoot));
    }

    #[test]
    fn attribute_after_child_content_is_an_error() {
        let mut b = DocumentBuilder::new();
        b.start_element("a");
        b.start_element("b");
        b.end_element();
        assert_eq!(b.try_attribute("x", "1"), Err(BuildError::OutsideRoot));
        b.end_element();
    }

    #[test]
    fn intervals_strictly_nest() {
        let mut b = DocumentBuilder::new();
        b.start_element("a");
        for _ in 0..3 {
            b.start_element("b");
            b.text("t");
            b.end_element();
        }
        b.end_element();
        let doc = b.finish().unwrap();
        let root = doc.root_element();
        for n in doc.all_nodes().skip(1) {
            assert!(doc.start(root) < doc.start(n));
            assert!(doc.end(n) < doc.end(root));
        }
        // Sibling intervals are disjoint.
        let bs = doc.nodes_with_tag_name("b");
        for w in bs.windows(2) {
            assert!(doc.end(w[0]) < doc.start(w[1]));
        }
    }
}
