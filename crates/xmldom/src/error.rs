//! Parser error reporting with line/column positions.

use std::fmt;

/// What went wrong while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Input ended inside a construct.
    UnexpectedEof,
    /// A character that cannot start/continue the current construct.
    UnexpectedChar(char),
    /// `</b>` closing an element opened as `<a>`.
    MismatchedTag {
        /// Tag that is currently open.
        expected: String,
        /// Tag found in the close tag.
        found: String,
    },
    /// Content after the root element closed, or text before it opened.
    ContentOutsideRoot,
    /// `&name;` with an unknown entity name, or a malformed `&#...;`.
    BadEntity(String),
    /// Attribute repeated on the same element.
    DuplicateAttribute(String),
    /// The document has no root element.
    Empty,
    /// Element nesting exceeded [`ParseOptions::max_depth`].
    ///
    /// [`ParseOptions::max_depth`]: crate::ParseOptions::max_depth
    TooDeep {
        /// The configured depth limit.
        limit: usize,
    },
    /// One element carried more attributes than
    /// [`ParseOptions::max_attributes`].
    ///
    /// [`ParseOptions::max_attributes`]: crate::ParseOptions::max_attributes
    TooManyAttributes {
        /// The configured per-element attribute limit.
        limit: usize,
    },
}

/// A parse failure, with the byte offset, line, and column where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Failure category.
    pub kind: ParseErrorKind,
    /// Byte offset into the input.
    pub offset: usize,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (in bytes).
    pub column: usize,
}

impl ParseError {
    pub(crate) fn at(kind: ParseErrorKind, input: &str, offset: usize) -> Self {
        let mut line = 1usize;
        let mut col = 1usize;
        for b in input.as_bytes()[..offset.min(input.len())].iter() {
            if *b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        ParseError {
            kind,
            offset,
            line,
            column: col,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at {}:{}: ", self.line, self.column)?;
        match &self.kind {
            ParseErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            ParseErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            ParseErrorKind::MismatchedTag { expected, found } => {
                write!(
                    f,
                    "mismatched close tag: expected </{expected}>, found </{found}>"
                )
            }
            ParseErrorKind::ContentOutsideRoot => write!(f, "content outside the root element"),
            ParseErrorKind::BadEntity(e) => write!(f, "bad entity reference &{e};"),
            ParseErrorKind::DuplicateAttribute(a) => write!(f, "duplicate attribute {a:?}"),
            ParseErrorKind::Empty => write!(f, "document has no root element"),
            ParseErrorKind::TooDeep { limit } => {
                write!(f, "element nesting exceeds the depth limit of {limit}")
            }
            ParseErrorKind::TooManyAttributes { limit } => {
                write!(f, "element has more than {limit} attributes")
            }
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_computation_counts_lines_and_columns() {
        let input = "ab\ncde\nf";
        let e = ParseError::at(ParseErrorKind::UnexpectedEof, input, 5);
        assert_eq!((e.line, e.column), (2, 3));
        let e0 = ParseError::at(ParseErrorKind::UnexpectedEof, input, 0);
        assert_eq!((e0.line, e0.column), (1, 1));
    }

    #[test]
    fn display_is_informative() {
        let e = ParseError::at(
            ParseErrorKind::MismatchedTag {
                expected: "a".into(),
                found: "b".into(),
            },
            "<a></b>",
            4,
        );
        let s = e.to_string();
        assert!(s.contains("</a>") && s.contains("</b>"), "{s}");
    }
}
