//! A from-scratch, non-validating XML parser.
//!
//! Supports the subset of XML 1.0 a data-centric corpus needs: elements,
//! attributes, character data, CDATA sections, comments, processing
//! instructions, an (ignored) prolog and DOCTYPE, the five predefined
//! entities, and decimal/hex character references. Namespaces are treated
//! literally (a tag `a:b` is just the name `"a:b"`).
//!
//! By default, whitespace-only text nodes are dropped — FleXPath's corpora
//! are data-centric and indentation between elements carries no signal; use
//! [`ParseOptions::keep_whitespace`] to retain them.

use crate::builder::DocumentBuilder;
use crate::document::Document;
use crate::error::{ParseError, ParseErrorKind};
use crate::events::XmlSink;

/// Longest entity reference the parser will scan for: the widest legal one
/// (`&#x10FFFF;`) is 9 characters, so a `;` further away than this marks a
/// stray ampersand — without the cap a document of bare `&`s would make
/// every reference scan to the far end of the input.
const MAX_ENTITY_LEN: usize = 64;

/// Knobs for [`parse_with_options`].
#[derive(Debug, Clone, Copy)]
pub struct ParseOptions {
    /// Keep text nodes that consist solely of XML whitespace.
    pub keep_whitespace: bool,
    /// Maximum element nesting depth before the parser rejects the input
    /// with [`ParseErrorKind::TooDeep`] (default 512). The parser itself is
    /// iterative, but depth-recursive *consumers* of the resulting tree
    /// (serializers, visitors) inherit this bound.
    pub max_depth: usize,
    /// Maximum number of attributes on a single element before the parser
    /// rejects the input with [`ParseErrorKind::TooManyAttributes`]
    /// (default 1024).
    pub max_attributes: usize,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            keep_whitespace: false,
            max_depth: 512,
            max_attributes: 1024,
        }
    }
}

/// Parses `input` into a [`Document`] with default options.
pub fn parse(input: &str) -> Result<Document, ParseError> {
    parse_with_options(input, ParseOptions::default())
}

/// Parses `input` into a [`Document`].
pub fn parse_with_options(input: &str, options: ParseOptions) -> Result<Document, ParseError> {
    let mut builder = DocumentBuilder::new();
    parse_events(input, options, &mut builder)?;
    builder
        .finish()
        .map_err(|_| ParseError::at(ParseErrorKind::Empty, input, input.len()))
}

/// Streams parse events into `sink` (SAX-style). All well-formedness
/// checking — balanced tags, single root, duplicate attributes — happens
/// here; the sink sees only valid sequences (truncated at the first error).
pub fn parse_events<S: XmlSink>(
    input: &str,
    options: ParseOptions,
    sink: &mut S,
) -> Result<(), ParseError> {
    let mut p = Parser {
        input,
        bytes: input.as_bytes(),
        pos: 0,
        options,
        sink,
        open: Vec::new(),
        seen_root: false,
    };
    p.run()
}

struct Parser<'a, 's, S: XmlSink> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    options: ParseOptions,
    sink: &'s mut S,
    /// Names of currently open elements (the parser's own well-formedness
    /// stack — sinks never have to validate).
    open: Vec<&'a str>,
    seen_root: bool,
}

// Cursor-invariant slicing: `pos` only advances via `peek`-guarded bumps,
// `find` offsets, and `min(len)` clamps, so `pos <= len` holds on a char
// boundary everywhere in this impl. The robustness suite feeds arbitrary
// bytes through `parse` to back this up.
#[allow(clippy::indexing_slicing)]
impl<'a, S: XmlSink> Parser<'a, '_, S> {
    fn err(&self, kind: ParseErrorKind) -> ParseError {
        ParseError::at(kind, self.input, self.pos)
    }

    fn eof(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn expect_str(&mut self, s: &str) -> Result<(), ParseError> {
        if self.starts_with(s) {
            self.pos += s.len();
            Ok(())
        } else if self.eof() {
            Err(self.err(ParseErrorKind::UnexpectedEof))
        } else {
            let c = self.input[self.pos..].chars().next().unwrap_or('\0');
            Err(self.err(ParseErrorKind::UnexpectedChar(c)))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skips past the first occurrence of `end`, erroring on EOF.
    fn skip_until(&mut self, end: &str) -> Result<(), ParseError> {
        match self.input[self.pos..].find(end) {
            Some(i) => {
                self.pos += i + end.len();
                Ok(())
            }
            None => {
                self.pos = self.bytes.len();
                Err(self.err(ParseErrorKind::UnexpectedEof))
            }
        }
    }

    fn is_name_start(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
    }

    fn is_name_char(b: u8) -> bool {
        Self::is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
    }

    fn parse_name(&mut self) -> Result<&'a str, ParseError> {
        let start = self.pos;
        match self.peek() {
            Some(b) if Self::is_name_start(b) => self.pos += 1,
            Some(_) => {
                let c = self.input[self.pos..].chars().next().unwrap_or('\0');
                return Err(self.err(ParseErrorKind::UnexpectedChar(c)));
            }
            None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
        }
        while matches!(self.peek(), Some(b) if Self::is_name_char(b)) {
            self.pos += 1;
        }
        Ok(&self.input[start..self.pos])
    }

    /// Decodes `&...;` starting just *after* the ampersand; appends to `out`.
    fn decode_entity(&mut self, out: &mut String) -> Result<(), ParseError> {
        let start = self.pos;
        // Bounded scan: a legal reference fits well inside MAX_ENTITY_LEN.
        let window_end = (self.pos + MAX_ENTITY_LEN).min(self.input.len());
        let semi = self.input[self.pos..window_end].find(';').ok_or_else(|| {
            let tail = &self.input[start..(start + 16).min(self.input.len())];
            self.err(ParseErrorKind::BadEntity(tail.to_string()))
        })?;
        let name = &self.input[start..start + semi];
        self.pos = start + semi + 1;
        let bad = |p: &Self| p.err(ParseErrorKind::BadEntity(name.to_string()));
        match name {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                let code = u32::from_str_radix(&name[2..], 16).map_err(|_| bad(self))?;
                out.push(char::from_u32(code).ok_or_else(|| bad(self))?);
            }
            _ if name.starts_with('#') => {
                let code: u32 = name[1..].parse().map_err(|_| bad(self))?;
                out.push(char::from_u32(code).ok_or_else(|| bad(self))?);
            }
            _ => return Err(bad(self)),
        }
        Ok(())
    }

    fn parse_attr_value(&mut self) -> Result<String, ParseError> {
        let quote = match self.bump() {
            Some(q @ (b'"' | b'\'')) => q,
            Some(b) => return Err(self.err(ParseErrorKind::UnexpectedChar(b as char))),
            None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
        };
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b) if b == quote => return Ok(out),
                Some(b'&') => self.decode_entity(&mut out)?,
                Some(b) if b < 0x80 => out.push(b as char),
                Some(_) => {
                    // Re-decode the multi-byte char properly. (`pos` sits on
                    // the char's lead byte, so a char is always present.)
                    self.pos -= 1;
                    let c = self.input[self.pos..].chars().next().unwrap_or('\0');
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
            }
        }
    }

    fn run(&mut self) -> Result<(), ParseError> {
        loop {
            if self.eof() {
                if !self.open.is_empty() {
                    return Err(self.err(ParseErrorKind::UnexpectedEof));
                }
                if !self.seen_root {
                    return Err(self.err(ParseErrorKind::Empty));
                }
                return Ok(());
            }
            if self.peek() == Some(b'<') {
                self.parse_markup()?;
            } else {
                self.parse_text()?;
            }
        }
    }

    fn parse_markup(&mut self) -> Result<(), ParseError> {
        debug_assert_eq!(self.peek(), Some(b'<'));
        if self.starts_with("<!--") {
            self.pos += 4;
            return self.skip_until("-->");
        }
        if self.starts_with("<![CDATA[") {
            self.pos += 9;
            let start = self.pos;
            let end = self.input[self.pos..]
                .find("]]>")
                .ok_or_else(|| self.err(ParseErrorKind::UnexpectedEof))?;
            let content = &self.input[start..start + end];
            self.pos = start + end + 3;
            if self.open.is_empty() {
                return Err(self.err(ParseErrorKind::ContentOutsideRoot));
            }
            if !content.is_empty() {
                self.sink.text(content);
            }
            return Ok(());
        }
        if self.starts_with("<?") {
            self.pos += 2;
            return self.skip_until("?>");
        }
        if self.starts_with("<!") {
            // DOCTYPE (possibly with an internal subset) — skip with bracket
            // awareness.
            self.pos += 2;
            let mut depth = 1usize;
            while depth > 0 {
                match self.bump() {
                    Some(b'<') => depth += 1,
                    Some(b'>') => depth -= 1,
                    Some(_) => {}
                    None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
                }
            }
            return Ok(());
        }
        if self.starts_with("</") {
            self.pos += 2;
            let name = self.parse_name()?;
            self.skip_ws();
            self.expect_str(">")?;
            match self.open.last() {
                Some(&expected) if expected == name => {
                    self.open.pop();
                    self.sink.end_element();
                    Ok(())
                }
                Some(&expected) => Err(self.err(ParseErrorKind::MismatchedTag {
                    expected: expected.to_string(),
                    found: name.to_string(),
                })),
                None => Err(self.err(ParseErrorKind::ContentOutsideRoot)),
            }
        } else {
            // Open tag.
            self.pos += 1;
            let name = self.parse_name()?;
            if self.open.is_empty() && self.seen_root {
                return Err(self.err(ParseErrorKind::ContentOutsideRoot));
            }
            self.seen_root = true;
            if self.open.len() >= self.options.max_depth {
                return Err(self.err(ParseErrorKind::TooDeep {
                    limit: self.options.max_depth,
                }));
            }
            self.open.push(name);
            self.sink.start_element(name);
            let mut seen_attrs: Vec<&str> = Vec::new();
            loop {
                self.skip_ws();
                match self.peek() {
                    Some(b'>') => {
                        self.pos += 1;
                        return Ok(());
                    }
                    Some(b'/') => {
                        self.pos += 1;
                        self.expect_str(">")?;
                        self.open.pop();
                        self.sink.end_element();
                        return Ok(());
                    }
                    Some(b) if Self::is_name_start(b) => {
                        let attr = self.parse_name()?;
                        if seen_attrs.len() >= self.options.max_attributes {
                            return Err(self.err(ParseErrorKind::TooManyAttributes {
                                limit: self.options.max_attributes,
                            }));
                        }
                        if seen_attrs.contains(&attr) {
                            return Err(self.err(ParseErrorKind::DuplicateAttribute(attr.into())));
                        }
                        self.skip_ws();
                        self.expect_str("=")?;
                        self.skip_ws();
                        let value = self.parse_attr_value()?;
                        self.sink.attribute(attr, &value);
                        seen_attrs.push(attr);
                    }
                    Some(b) => return Err(self.err(ParseErrorKind::UnexpectedChar(b as char))),
                    None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
                }
            }
        }
    }

    fn parse_text(&mut self) -> Result<(), ParseError> {
        let mut out = String::new();
        while let Some(b) = self.peek() {
            match b {
                b'<' => break,
                b'&' => {
                    self.pos += 1;
                    self.decode_entity(&mut out)?;
                }
                _ => {
                    // `pos` is always on a char boundary here.
                    let c = self.input[self.pos..].chars().next().unwrap_or('\0');
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
        let significant = self.options.keep_whitespace
            || !out.chars().all(|c| matches!(c, ' ' | '\t' | '\r' | '\n'));
        if !significant {
            return Ok(());
        }
        if self.open.is_empty() {
            return Err(self.err(ParseErrorKind::ContentOutsideRoot));
        }
        if !out.is_empty() {
            self.sink.text(&out);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_document() {
        let doc = parse("<a/>").unwrap();
        assert_eq!(doc.node_count(), 1);
        assert_eq!(doc.tag_name(doc.root_element()), Some("a"));
    }

    #[test]
    fn parses_prolog_doctype_comments_and_pis() {
        let doc = parse(
            "<?xml version=\"1.0\"?>\n<!DOCTYPE a [<!ELEMENT a ANY>]>\n\
             <!-- hello --><a><?pi data?><b/><!-- inner --></a>",
        )
        .unwrap();
        assert_eq!(doc.nodes_with_tag_name("b").len(), 1);
    }

    #[test]
    fn decodes_predefined_and_numeric_entities() {
        let doc =
            parse("<a>&lt;tag&gt; &amp; &quot;x&quot; &apos;y&apos; &#65;&#x42;</a>").unwrap();
        assert_eq!(doc.subtree_text(doc.root_element()), "<tag> & \"x\" 'y' AB");
    }

    #[test]
    fn decodes_entities_in_attributes() {
        let doc = parse("<a t=\"x&amp;y&#33;\"/>").unwrap();
        let t = doc.symbols().lookup("t").unwrap();
        assert_eq!(doc.attribute(doc.root_element(), t), Some("x&y!"));
    }

    #[test]
    fn cdata_is_literal() {
        let doc = parse("<a><![CDATA[<b>&amp;</b>]]></a>").unwrap();
        assert_eq!(doc.subtree_text(doc.root_element()), "<b>&amp;</b>");
    }

    #[test]
    fn whitespace_only_text_dropped_by_default() {
        let doc = parse("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(doc.node_count(), 2);
        let kept = parse_with_options(
            "<a>\n  <b/>\n</a>",
            ParseOptions {
                keep_whitespace: true,
                ..ParseOptions::default()
            },
        )
        .unwrap();
        assert_eq!(kept.node_count(), 4);
    }

    #[test]
    fn mismatched_tag_is_reported_with_names() {
        let err = parse("<a><b></a>").unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::MismatchedTag { ref expected, ref found }
                if expected == "b" && found == "a"
        ));
    }

    #[test]
    fn unclosed_element_is_eof_error() {
        let err = parse("<a><b>").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnexpectedEof);
    }

    #[test]
    fn second_root_rejected() {
        let err = parse("<a/><b/>").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::ContentOutsideRoot);
    }

    #[test]
    fn text_outside_root_rejected() {
        let err = parse("<a/>junk").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::ContentOutsideRoot);
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = parse("<a x=\"1\" x=\"2\"/>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::DuplicateAttribute(ref a) if a == "x"));
    }

    #[test]
    fn bad_entity_rejected() {
        let err = parse("<a>&nope;</a>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::BadEntity(ref e) if e == "nope"));
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(parse("").unwrap_err().kind, ParseErrorKind::Empty);
        assert_eq!(parse("<!-- x -->").unwrap_err().kind, ParseErrorKind::Empty);
    }

    #[test]
    fn single_quoted_attributes_work() {
        let doc = parse("<a t='v'/>").unwrap();
        let t = doc.symbols().lookup("t").unwrap();
        assert_eq!(doc.attribute(doc.root_element(), t), Some("v"));
    }

    #[test]
    fn utf8_text_round_trips() {
        let doc = parse("<a>héllo wörld — ✓</a>").unwrap();
        assert_eq!(doc.subtree_text(doc.root_element()), "héllo wörld — ✓");
    }

    #[test]
    fn error_positions_point_into_input() {
        let err = parse("<a>\n<b></c>\n</a>").unwrap_err();
        assert_eq!(err.line, 2);
    }

    fn nested(depth: usize) -> String {
        let mut s = String::with_capacity(depth * 7);
        for _ in 0..depth {
            s.push_str("<a>");
        }
        for _ in 0..depth {
            s.push_str("</a>");
        }
        s
    }

    #[test]
    fn ten_thousand_deep_document_errors_instead_of_overflowing() {
        let err = parse(&nested(10_000)).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::TooDeep { limit: 512 });
    }

    #[test]
    fn depth_limit_is_configurable() {
        let doc_at_limit = nested(512);
        assert!(parse(&doc_at_limit).is_ok(), "512 deep is within default");
        assert!(parse(&nested(513)).is_err());
        let opts = ParseOptions {
            max_depth: 8,
            ..ParseOptions::default()
        };
        assert!(matches!(
            parse_with_options(&nested(9), opts).unwrap_err().kind,
            ParseErrorKind::TooDeep { limit: 8 }
        ));
        assert!(parse_with_options(&nested(8), opts).is_ok());
    }

    #[test]
    fn attribute_count_limit_is_enforced() {
        let mut doc = String::from("<a");
        for i in 0..1025 {
            doc.push_str(&format!(" x{i}=\"v\""));
        }
        doc.push_str("/>");
        assert!(matches!(
            parse(&doc).unwrap_err().kind,
            ParseErrorKind::TooManyAttributes { limit: 1024 }
        ));
    }

    #[test]
    fn runaway_entity_reference_is_rejected_without_long_scan() {
        // A `;` further than MAX_ENTITY_LEN away must not be picked up.
        let doc = format!("<a>&{};</a>", "x".repeat(200));
        assert!(matches!(
            parse(&doc).unwrap_err().kind,
            ParseErrorKind::BadEntity(_)
        ));
        // And a stray `&` with no `;` at all errors as a bad entity, not EOF.
        assert!(matches!(
            parse("<a>fish & chips</a>").unwrap_err().kind,
            ParseErrorKind::BadEntity(_)
        ));
    }
}
