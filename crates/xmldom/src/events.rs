//! Streaming (SAX-style) parse events.
//!
//! The parser is event-driven at its core: it performs all well-formedness
//! checking itself and pushes decoded content into an [`XmlSink`]. Building
//! a [`Document`](crate::Document) is just one sink
//! (`DocumentBuilder` implements the trait); user code can consume events
//! directly via [`parse_events`](crate::parse_events) to scan huge inputs
//! without materializing a tree.
//!
//! ```
//! use flexpath_xmldom::{parse_events, FnSink, ParseOptions, XmlEvent};
//!
//! let mut depth_max = 0usize;
//! let mut depth = 0usize;
//! let mut sink = FnSink(|ev: XmlEvent<'_>| match ev {
//!     XmlEvent::StartElement { .. } => {
//!         depth += 1;
//!         depth_max = depth_max.max(depth);
//!     }
//!     XmlEvent::EndElement => depth -= 1,
//!     _ => {}
//! });
//! parse_events("<a><b><c/></b></a>", ParseOptions::default(), &mut sink).unwrap();
//! let FnSink(_) = sink; // consume the sink, releasing its borrows
//! assert_eq!(depth_max, 3);
//! ```

/// One parse event. Borrowed data lives only for the duration of the
/// callback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent<'a> {
    /// An element opened. Its attributes follow immediately as
    /// [`XmlEvent::Attribute`] events, before any child content.
    StartElement {
        /// Tag name.
        name: &'a str,
    },
    /// One attribute of the element just opened (entities decoded).
    Attribute {
        /// Attribute name.
        name: &'a str,
        /// Decoded value.
        value: &'a str,
    },
    /// Character data (entities decoded; CDATA included verbatim).
    /// Whitespace-only text is suppressed unless
    /// [`ParseOptions::keep_whitespace`](crate::parser::ParseOptions) is set.
    Text(&'a str),
    /// The most recently opened element closed (self-closing tags emit
    /// `StartElement` immediately followed by `EndElement`).
    EndElement,
}

/// Receives parse events. The parser guarantees well-formed sequencing:
/// attributes directly follow their `start_element`, elements balance, and
/// nothing arrives outside the root element.
pub trait XmlSink {
    /// An element opened.
    fn start_element(&mut self, name: &str);
    /// An attribute of the element just opened.
    fn attribute(&mut self, name: &str, value: &str);
    /// Character data inside the current element.
    fn text(&mut self, content: &str);
    /// The current element closed.
    fn end_element(&mut self);
}

/// Adapts a closure over [`XmlEvent`] into an [`XmlSink`].
pub struct FnSink<F: FnMut(XmlEvent<'_>)>(pub F);

impl<F: FnMut(XmlEvent<'_>)> XmlSink for FnSink<F> {
    fn start_element(&mut self, name: &str) {
        (self.0)(XmlEvent::StartElement { name });
    }

    fn attribute(&mut self, name: &str, value: &str) {
        (self.0)(XmlEvent::Attribute { name, value });
    }

    fn text(&mut self, content: &str) {
        (self.0)(XmlEvent::Text(content));
    }

    fn end_element(&mut self) {
        (self.0)(XmlEvent::EndElement);
    }
}

impl XmlSink for crate::builder::DocumentBuilder {
    fn start_element(&mut self, name: &str) {
        DocumentBuilder::start_element(self, name);
    }

    fn attribute(&mut self, name: &str, value: &str) {
        DocumentBuilder::attribute(self, name, value);
    }

    fn text(&mut self, content: &str) {
        DocumentBuilder::text(self, content);
    }

    fn end_element(&mut self) {
        DocumentBuilder::end_element(self);
    }
}

use crate::builder::DocumentBuilder;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_events, ParseOptions};

    fn collect(input: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut sink = FnSink(|ev: XmlEvent<'_>| {
            out.push(match ev {
                XmlEvent::StartElement { name } => format!("<{name}>"),
                XmlEvent::Attribute { name, value } => format!("@{name}={value}"),
                XmlEvent::Text(t) => format!("'{t}'"),
                XmlEvent::EndElement => "</>".to_string(),
            });
        });
        parse_events(input, ParseOptions::default(), &mut sink).unwrap();
        let FnSink(_) = sink; // consume the sink, releasing its borrow
        out
    }

    #[test]
    fn events_arrive_in_document_order() {
        let ev = collect("<a x=\"1\"><b>hi</b></a>");
        assert_eq!(ev, ["<a>", "@x=1", "<b>", "'hi'", "</>", "</>"]);
    }

    #[test]
    fn self_closing_emits_balanced_pair() {
        let ev = collect("<a><b/></a>");
        assert_eq!(ev, ["<a>", "<b>", "</>", "</>"]);
    }

    #[test]
    fn entities_are_decoded_in_events() {
        let ev = collect("<a t=\"x&amp;y\">&lt;z&gt;</a>");
        assert_eq!(ev, ["<a>", "@t=x&y", "'<z>'", "</>"]);
    }

    #[test]
    fn malformed_input_errors_without_sink_corruption() {
        let mut events = 0usize;
        let mut sink = FnSink(|_| events += 1);
        let err = parse_events("<a><b></a>", ParseOptions::default(), &mut sink);
        assert!(err.is_err());
        let FnSink(_) = sink;
        assert!(events >= 2, "events before the failure are delivered");
    }

    #[test]
    fn streaming_count_matches_dom_count() {
        // A deep, wide synthetic document: the streaming element count must
        // equal the DOM's.
        let mut b = crate::DocumentBuilder::new();
        b.start_element("root");
        for i in 0..50 {
            b.start_element("outer");
            b.attribute("i", &i.to_string());
            for _ in 0..(i % 4) {
                b.start_element("inner");
                b.text("content here");
                b.end_element();
            }
            b.end_element();
        }
        b.end_element();
        let doc = b.finish().unwrap();
        let xml = crate::to_xml_string(&doc);
        let mut starts = 0usize;
        let mut sink = FnSink(|ev: XmlEvent<'_>| {
            if matches!(ev, XmlEvent::StartElement { .. }) {
                starts += 1;
            }
        });
        parse_events(&xml, ParseOptions::default(), &mut sink).unwrap();
        let FnSink(_) = sink;
        assert_eq!(starts, doc.elements().count());
    }
}
