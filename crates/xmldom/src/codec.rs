//! Binary codec for [`Document`] and [`DocStats`] — the payloads of the
//! persistent corpus store's `TAGS`, `ELEMS`, and `STATS` sections.
//!
//! Encoding is **deterministic**: hash maps are emitted in sorted key
//! order and nothing environment-dependent (timestamps, pointer values)
//! is written, so the same document always produces the same bytes. The
//! store's golden-file drift check depends on this.
//!
//! Decoding is **total and validating**: every cross-reference a decoded
//! [`Document`] could later index with — parent/child/sibling ids, tag
//! and attribute symbols, text-arena indices, attribute ranges, the root
//! id — is bounds-checked here, so downstream code may keep using plain
//! indexing without risking a panic on a corrupted store. Structural
//! invariants that algorithms rely on (region `start < end`, document-
//! order-monotonic starts) are validated too.

use crate::document::{Document, NodeData, NodeId, NodeKind};
use crate::stats::{DocStats, TagPair};
use crate::symbols::{Sym, SymbolTable};
use crate::wire::{ByteReader, ByteWriter, WireError};
use std::collections::HashMap;
use std::fmt;

/// Sentinel for `Option<NodeId>::None` on the wire.
const NO_NODE: u32 = u32::MAX;
/// Fixed wire size of one node record (used for count plausibility).
const NODE_WIRE_BYTES: usize = 1 + 4 * 8 + 2;

/// A failure while decoding a document or statistics section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Low-level read failure (truncation, bad UTF-8, absurd length).
    Wire(WireError),
    /// The bytes parsed but describe an inconsistent structure.
    Invalid {
        /// Which invariant was violated.
        what: &'static str,
        /// Item index (node id, symbol id, …) at which it was detected.
        index: u64,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Wire(e) => write!(f, "wire error: {e}"),
            CodecError::Invalid { what, index } => {
                write!(f, "invalid structure: {what} (item {index})")
            }
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Wire(e) => Some(e),
            CodecError::Invalid { .. } => None,
        }
    }
}

impl From<WireError> for CodecError {
    fn from(e: WireError) -> Self {
        CodecError::Wire(e)
    }
}

fn opt_node(v: Option<NodeId>) -> u32 {
    v.map(|n| n.0).unwrap_or(NO_NODE)
}

fn node_opt(
    v: u32,
    node_count: usize,
    what: &'static str,
    index: u64,
) -> Result<Option<NodeId>, CodecError> {
    if v == NO_NODE {
        Ok(None)
    } else if (v as usize) < node_count {
        Ok(Some(NodeId(v)))
    } else {
        Err(CodecError::Invalid { what, index })
    }
}

/// Encodes a document's interned-name table (the `TAGS` section payload).
pub fn encode_symbols(symbols: &SymbolTable) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(16 + symbols.len() * 12);
    w.u64(symbols.len() as u64);
    for (_, name) in symbols.iter() {
        w.str(name);
    }
    w.into_bytes()
}

/// Decodes a `TAGS` section payload back into a [`SymbolTable`].
pub fn decode_symbols(bytes: &[u8]) -> Result<SymbolTable, CodecError> {
    let mut r = ByteReader::new(bytes);
    let n = r.count(4)?;
    let mut table = SymbolTable::new();
    for i in 0..n {
        let name = r.str()?;
        let sym = table.intern(name);
        // A repeated name would intern to an earlier id and desync every
        // Sym reference in the element table; reject it.
        if sym.index() != i {
            return Err(CodecError::Invalid {
                what: "duplicate symbol name",
                index: i as u64,
            });
        }
    }
    r.expect_exhausted()?;
    Ok(table)
}

/// Encodes a document's node arena, text arena, and attributes (the
/// `ELEMS` section payload). The per-tag index is not written — it is
/// rebuilt on decode from the (document-ordered) node arena.
pub fn encode_nodes(doc: &Document) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(32 + doc.nodes.len() * NODE_WIRE_BYTES);
    w.u32(doc.root.0);
    w.u64(doc.nodes.len() as u64);
    for n in &doc.nodes {
        match n.kind {
            NodeKind::Element { tag } => {
                w.u8(0);
                w.u32(tag.0);
            }
            NodeKind::Text { text } => {
                w.u8(1);
                w.u32(text);
            }
        }
        w.u32(opt_node(n.parent));
        w.u32(opt_node(n.first_child));
        w.u32(opt_node(n.next_sibling));
        w.u32(n.start);
        w.u32(n.end);
        w.u32(n.level);
        w.u32(n.attrs_start);
        w.u16(n.attrs_len);
    }
    w.u64(doc.texts.len() as u64);
    for t in &doc.texts {
        w.str(t);
    }
    w.u64(doc.attrs.len() as u64);
    for (sym, val) in &doc.attrs {
        w.u32(sym.0);
        w.str(val);
    }
    w.into_bytes()
}

/// Decodes `TAGS` + `ELEMS` payloads into a fully validated [`Document`].
pub fn decode_document(tag_bytes: &[u8], elem_bytes: &[u8]) -> Result<Document, CodecError> {
    let symbols = decode_symbols(tag_bytes)?;
    let mut r = ByteReader::new(elem_bytes);
    let root_raw = r.u32()?;
    let node_count = r.count(NODE_WIRE_BYTES)?;
    let mut nodes: Vec<NodeData> = Vec::with_capacity(node_count);
    for i in 0..node_count {
        let idx = i as u64;
        let kind_tag = r.u8()?;
        let payload = r.u32()?;
        let kind = match kind_tag {
            0 => NodeKind::Element { tag: Sym(payload) },
            1 => NodeKind::Text { text: payload },
            _ => {
                return Err(CodecError::Invalid {
                    what: "unknown node kind",
                    index: idx,
                })
            }
        };
        let parent = r.u32()?;
        let first_child = r.u32()?;
        let next_sibling = r.u32()?;
        let start = r.u32()?;
        let end = r.u32()?;
        let level = r.u32()?;
        let attrs_start = r.u32()?;
        let attrs_len = r.u16()?;
        nodes.push(NodeData {
            kind,
            parent: node_opt(parent, node_count, "parent id out of range", idx)?,
            first_child: node_opt(first_child, node_count, "first-child id out of range", idx)?,
            next_sibling: node_opt(
                next_sibling,
                node_count,
                "next-sibling id out of range",
                idx,
            )?,
            start,
            end,
            level,
            attrs_start,
            attrs_len,
        });
    }
    let text_count = r.count(4)?;
    let mut texts: Vec<Box<str>> = Vec::with_capacity(text_count);
    for _ in 0..text_count {
        texts.push(r.str()?.into());
    }
    let attr_count = r.count(8)?;
    let mut attrs: Vec<(Sym, Box<str>)> = Vec::with_capacity(attr_count);
    for i in 0..attr_count {
        let sym = Sym(r.u32()?);
        if sym.index() >= symbols.len() {
            return Err(CodecError::Invalid {
                what: "attribute name symbol out of range",
                index: i as u64,
            });
        }
        attrs.push((sym, r.str()?.into()));
    }
    r.expect_exhausted()?;

    // Cross-reference validation: after this loop, every index stored in
    // `nodes` is safe to use for direct slice indexing.
    let mut prev_start: Option<u32> = None;
    for (i, n) in nodes.iter().enumerate() {
        let idx = i as u64;
        match n.kind {
            NodeKind::Element { tag } => {
                if tag.index() >= symbols.len() {
                    return Err(CodecError::Invalid {
                        what: "tag symbol out of range",
                        index: idx,
                    });
                }
            }
            NodeKind::Text { text } => {
                if text as usize >= texts.len() {
                    return Err(CodecError::Invalid {
                        what: "text index out of range",
                        index: idx,
                    });
                }
            }
        }
        if n.start >= n.end {
            return Err(CodecError::Invalid {
                what: "region label start >= end",
                index: idx,
            });
        }
        if let Some(p) = prev_start {
            if n.start <= p {
                return Err(CodecError::Invalid {
                    what: "node starts not in document order",
                    index: idx,
                });
            }
        }
        prev_start = Some(n.start);
        let attrs_end = n.attrs_start as usize + n.attrs_len as usize;
        if attrs_end > attrs.len() {
            return Err(CodecError::Invalid {
                what: "attribute range out of bounds",
                index: idx,
            });
        }
    }
    if root_raw as usize >= nodes.len() {
        return Err(CodecError::Invalid {
            what: "root id out of range",
            index: root_raw as u64,
        });
    }
    let root = NodeId(root_raw);
    // lint:allow(panic): root_raw was range-checked directly above.
    if !matches!(nodes[root.index()].kind, NodeKind::Element { .. }) {
        return Err(CodecError::Invalid {
            what: "root is not an element",
            index: root_raw as u64,
        });
    }

    // Rebuild the per-tag index; the arena is in document order, so pushing
    // in arena order yields the sorted lists structural joins require.
    let mut tag_index: HashMap<Sym, Vec<NodeId>> = HashMap::new();
    for (i, n) in nodes.iter().enumerate() {
        if let NodeKind::Element { tag } = n.kind {
            tag_index.entry(tag).or_default().push(NodeId(i as u32));
        }
    }

    let subtree_last = crate::document::compute_subtree_last(&nodes);
    Ok(Document {
        nodes,
        texts,
        attrs,
        symbols,
        tag_index,
        root,
        subtree_last,
    })
}

/// Encodes document statistics (the `STATS` section payload), maps in
/// sorted key order for byte determinism.
pub fn encode_stats(stats: &DocStats) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(32);
    w.u64(stats.element_total);
    // HashMap iteration is unordered, but the very next line sorts.
    #[allow(clippy::disallowed_methods)]
    let mut tags: Vec<(Sym, u64)> = stats.tag_counts.iter().map(|(&s, &c)| (s, c)).collect();
    tags.sort_unstable();
    w.u64(tags.len() as u64);
    for (s, c) in tags {
        w.u32(s.0);
        w.u64(c);
    }
    for map in [&stats.pc_counts, &stats.ad_counts] {
        // HashMap iteration is unordered, but the very next line sorts.
        #[allow(clippy::disallowed_methods)]
        let mut pairs: Vec<(TagPair, u64)> = map.iter().map(|(&p, &c)| (p, c)).collect();
        pairs.sort_unstable();
        w.u64(pairs.len() as u64);
        for (TagPair(a, b), c) in pairs {
            w.u32(a.0);
            w.u32(b.0);
            w.u64(c);
        }
    }
    w.into_bytes()
}

/// Decodes a `STATS` payload; `symbol_count` bounds every tag reference.
pub fn decode_stats(bytes: &[u8], symbol_count: usize) -> Result<DocStats, CodecError> {
    let mut r = ByteReader::new(bytes);
    let element_total = r.u64()?;
    let check = |s: Sym, i: usize| -> Result<Sym, CodecError> {
        if s.index() >= symbol_count {
            Err(CodecError::Invalid {
                what: "statistics tag symbol out of range",
                index: i as u64,
            })
        } else {
            Ok(s)
        }
    };
    let n = r.count(12)?;
    let mut tag_counts = HashMap::with_capacity(n);
    for i in 0..n {
        let s = check(Sym(r.u32()?), i)?;
        let c = r.u64()?;
        if tag_counts.insert(s, c).is_some() {
            return Err(CodecError::Invalid {
                what: "duplicate tag-count key",
                index: i as u64,
            });
        }
    }
    let mut pair_maps: [HashMap<TagPair, u64>; 2] = [HashMap::new(), HashMap::new()];
    for map in &mut pair_maps {
        let n = r.count(16)?;
        map.reserve(n);
        for i in 0..n {
            let a = check(Sym(r.u32()?), i)?;
            let b = check(Sym(r.u32()?), i)?;
            let c = r.u64()?;
            if map.insert(TagPair(a, b), c).is_some() {
                return Err(CodecError::Invalid {
                    what: "duplicate tag-pair key",
                    index: i as u64,
                });
            }
        }
    }
    r.expect_exhausted()?;
    let [pc_counts, ad_counts] = pair_maps;
    Ok(DocStats {
        tag_counts,
        pc_counts,
        ad_counts,
        element_total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    const DOC: &str =
        "<a x=\"1\"><b><c>hi there</c></b><b y=\"2\">more text</b><d/><c>tail</c></a>";

    fn roundtrip(xml: &str) -> (Document, Document) {
        let doc = parse(xml).unwrap();
        let tags = encode_symbols(doc.symbols());
        let elems = encode_nodes(&doc);
        let back = decode_document(&tags, &elems).unwrap();
        (doc, back)
    }

    #[test]
    fn document_roundtrip_preserves_everything() {
        let (doc, back) = roundtrip(DOC);
        assert_eq!(doc.node_count(), back.node_count());
        assert_eq!(doc.root_element(), back.root_element());
        for n in doc.all_nodes() {
            assert_eq!(doc.kind(n), back.kind(n));
            assert_eq!(doc.parent(n), back.parent(n));
            assert_eq!(doc.first_child(n), back.first_child(n));
            assert_eq!(doc.next_sibling(n), back.next_sibling(n));
            assert_eq!(doc.start(n), back.start(n));
            assert_eq!(doc.end(n), back.end(n));
            assert_eq!(doc.level(n), back.level(n));
            assert_eq!(doc.text_content(n), back.text_content(n));
            assert_eq!(doc.attributes(n), back.attributes(n));
        }
        for (sym, name) in doc.symbols().iter() {
            assert_eq!(back.symbols().name(sym), name);
            assert_eq!(doc.nodes_with_tag(sym), back.nodes_with_tag(sym));
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let doc = parse(DOC).unwrap();
        assert_eq!(encode_nodes(&doc), encode_nodes(&doc));
        assert_eq!(encode_symbols(doc.symbols()), encode_symbols(doc.symbols()));
        let s = DocStats::compute(&doc);
        assert_eq!(encode_stats(&s), encode_stats(&s));
    }

    #[test]
    fn stats_roundtrip_preserves_counts() {
        let doc = parse(DOC).unwrap();
        let stats = DocStats::compute(&doc);
        let bytes = encode_stats(&stats);
        let back = decode_stats(&bytes, doc.symbols().len()).unwrap();
        assert_eq!(back.element_total(), stats.element_total());
        for t1 in stats.tags() {
            assert_eq!(back.tag_count(t1), stats.tag_count(t1));
            for t2 in stats.tags() {
                assert_eq!(back.pc_count(t1, t2), stats.pc_count(t1, t2));
                assert_eq!(back.ad_count(t1, t2), stats.ad_count(t1, t2));
            }
        }
    }

    #[test]
    fn every_single_byte_flip_is_rejected_or_equivalent() {
        // Exhaustively flip one byte at a time in a small document's ELEMS
        // payload: decode must return Err or a structurally valid document
        // (it must never panic). This is the codec-level version of the
        // store corruption suite.
        let doc = parse("<a><b>hi</b></a>").unwrap();
        let tags = encode_symbols(doc.symbols());
        let elems = encode_nodes(&doc);
        for i in 0..elems.len() {
            let mut bad = elems.clone();
            bad[i] ^= 0xff;
            let _ = decode_document(&tags, &bad);
        }
        for i in 0..tags.len() {
            let mut bad = tags.clone();
            bad[i] ^= 0xff;
            let _ = decode_document(&bad, &elems);
        }
    }

    #[test]
    fn truncation_is_typed() {
        let doc = parse(DOC).unwrap();
        let tags = encode_symbols(doc.symbols());
        let elems = encode_nodes(&doc);
        for cut in 0..elems.len() {
            assert!(decode_document(&tags, &elems[..cut]).is_err());
        }
    }

    #[test]
    fn dangling_references_are_invalid() {
        let doc = parse("<a><b/></a>").unwrap();
        let tags = encode_symbols(doc.symbols());
        let mut elems = encode_nodes(&doc);
        // Corrupt the root id field (first 4 bytes) to an out-of-range node.
        elems[0] = 0x7f;
        assert!(matches!(
            decode_document(&tags, &elems),
            Err(CodecError::Invalid { .. })
        ));
    }

    #[test]
    fn stats_symbol_bounds_are_enforced() {
        let doc = parse("<a><b/></a>").unwrap();
        let stats = DocStats::compute(&doc);
        let bytes = encode_stats(&stats);
        // Claim a smaller symbol table than the stats reference.
        assert!(matches!(
            decode_stats(&bytes, 0),
            Err(CodecError::Invalid { .. })
        ));
    }
}
