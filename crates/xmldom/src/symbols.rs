//! String interning for tag and attribute names.
//!
//! Every query-processing structure in FleXPath keys on element tags
//! (tag-equality predicates, per-tag node lists, `#pc`/`#ad` statistics).
//! Interning names to a dense [`Sym`] id makes those keys `Copy`, hashable
//! in O(1), and usable as array indices.

use std::collections::HashMap;
use std::fmt;

/// An interned name (element tag or attribute name).
///
/// `Sym`s are only meaningful relative to the [`SymbolTable`] that produced
/// them; documents expose their table via `Document::symbols`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

impl Sym {
    /// Dense index usable for direct array addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// Bidirectional map between names and [`Sym`] ids.
///
/// Insertion order defines the id space, so two documents built through the
/// same table share ids (the FleXPath session relies on this when combining
/// IR and XPath results).
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    names: Vec<Box<str>>,
    ids: HashMap<Box<str>, Sym>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its existing id when already present.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&sym) = self.ids.get(name) {
            return sym;
        }
        let sym = Sym(self.names.len() as u32);
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.ids.insert(boxed, sym);
        sym
    }

    /// Looks up a name without interning it.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.ids.get(name).copied()
    }

    /// Resolves a [`Sym`] back to its name.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this table.
    pub fn name(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(sym, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Sym(i as u32), n.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("article");
        let b = t.intern("article");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let mut t = SymbolTable::new();
        let a = t.intern("article");
        let s = t.intern("section");
        assert_ne!(a, s);
        assert_eq!(t.name(a), "article");
        assert_eq!(t.name(s), "section");
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut t = SymbolTable::new();
        assert!(t.lookup("missing").is_none());
        assert!(t.is_empty());
        let s = t.intern("present");
        assert_eq!(t.lookup("present"), Some(s));
    }

    #[test]
    fn ids_are_dense_and_ordered_by_insertion() {
        let mut t = SymbolTable::new();
        for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
            assert_eq!(t.intern(name).index(), i);
        }
        let collected: Vec<_> = t.iter().map(|(_, n)| n.to_string()).collect();
        assert_eq!(collected, ["a", "b", "c", "d"]);
    }
}
