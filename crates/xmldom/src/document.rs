//! The arena [`Document`] with interval-encoded nodes.
//!
//! Nodes are stored in document (pre-)order, so the arena index *is* the
//! document-order rank. Each node additionally carries the classic
//! `(start, end, level)` region label used by structural-join algorithms:
//!
//! * `a` is an **ancestor** of `b`  iff  `start(a) < start(b) && end(b) < end(a)`;
//! * `a` is the **parent** of `b`   iff  the above and `level(b) == level(a) + 1`.
//!
//! Both tests are O(1), which is what makes the FleXPath join plans cheap to
//! evaluate and the `#pc`/`#ad` statistics cheap to collect.

use crate::symbols::{Sym, SymbolTable};
use std::collections::HashMap;
use std::fmt;

/// Index of a node in the document arena. Ids are dense and assigned in
/// document order: `a.0 < b.0` iff `a` precedes `b` in document order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Arena index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Discriminates element nodes from text nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An element with an interned tag name.
    Element {
        /// Interned tag name.
        tag: Sym,
    },
    /// A text node; `text` indexes the document's text arena.
    Text {
        /// Index into [`Document::text_content`]'s backing store.
        text: u32,
    },
}

#[derive(Debug, Clone)]
pub(crate) struct NodeData {
    pub(crate) kind: NodeKind,
    pub(crate) parent: Option<NodeId>,
    pub(crate) first_child: Option<NodeId>,
    pub(crate) next_sibling: Option<NodeId>,
    pub(crate) start: u32,
    pub(crate) end: u32,
    pub(crate) level: u32,
    pub(crate) attrs_start: u32,
    pub(crate) attrs_len: u16,
}

/// An immutable XML document: node arena, text arena, attributes, interned
/// names, and per-tag node lists sorted in document order.
///
/// Construct one with [`crate::parse`] or [`crate::DocumentBuilder`].
#[derive(Debug, Clone)]
pub struct Document {
    pub(crate) nodes: Vec<NodeData>,
    pub(crate) texts: Vec<Box<str>>,
    pub(crate) attrs: Vec<(Sym, Box<str>)>,
    pub(crate) symbols: SymbolTable,
    pub(crate) tag_index: HashMap<Sym, Vec<NodeId>>,
    pub(crate) root: NodeId,
    /// Per node: id of the last node in its subtree (itself for leaves),
    /// precomputed at construction so [`Document::subtree_last`] — on the
    /// hot path of every subtree range computation — is a single array
    /// load instead of a binary search. See [`compute_subtree_last`].
    pub(crate) subtree_last: Vec<NodeId>,
}

/// Last-descendant table for an arena in document order: children carry
/// larger ids than their parent, so one reverse sweep folding each node's
/// `last` into its parent computes every subtree's last id in O(n).
pub(crate) fn compute_subtree_last(nodes: &[NodeData]) -> Vec<NodeId> {
    let mut last: Vec<NodeId> = (0..nodes.len() as u32).map(NodeId).collect();
    for i in (1..nodes.len()).rev() {
        if let Some(p) = nodes[i].parent {
            if last[i] > last[p.index()] {
                last[p.index()] = last[i];
            }
        }
    }
    last
}

impl Document {
    /// The single root element.
    #[inline]
    pub fn root_element(&self) -> NodeId {
        self.root
    }

    /// Total number of nodes (elements + text nodes).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of element nodes.
    pub fn element_count(&self) -> usize {
        self.tag_index.values().map(Vec::len).sum()
    }

    /// The interned-name table for this document.
    #[inline]
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Kind of node `n`.
    #[inline]
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.nodes[n.index()].kind
    }

    /// Tag of `n` if it is an element.
    #[inline]
    pub fn tag(&self, n: NodeId) -> Option<Sym> {
        match self.nodes[n.index()].kind {
            NodeKind::Element { tag } => Some(tag),
            NodeKind::Text { .. } => None,
        }
    }

    /// Tag name of `n` if it is an element.
    pub fn tag_name(&self, n: NodeId) -> Option<&str> {
        self.tag(n).map(|s| self.symbols.name(s))
    }

    /// Whether `n` is an element node.
    #[inline]
    pub fn is_element(&self, n: NodeId) -> bool {
        matches!(self.nodes[n.index()].kind, NodeKind::Element { .. })
    }

    /// Parent of `n`, if any.
    #[inline]
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.nodes[n.index()].parent
    }

    /// First child of `n`, if any.
    #[inline]
    pub fn first_child(&self, n: NodeId) -> Option<NodeId> {
        self.nodes[n.index()].first_child
    }

    /// Next sibling of `n`, if any.
    #[inline]
    pub fn next_sibling(&self, n: NodeId) -> Option<NodeId> {
        self.nodes[n.index()].next_sibling
    }

    /// Region-label start of `n` (document-order entry stamp).
    #[inline]
    pub fn start(&self, n: NodeId) -> u32 {
        self.nodes[n.index()].start
    }

    /// Region-label end of `n` (document-order exit stamp).
    #[inline]
    pub fn end(&self, n: NodeId) -> u32 {
        self.nodes[n.index()].end
    }

    /// Depth of `n`; the root element has level 0.
    #[inline]
    pub fn level(&self, n: NodeId) -> u32 {
        self.nodes[n.index()].level
    }

    /// O(1) strict-ancestor test: is `a` a proper ancestor of `b`?
    #[inline]
    pub fn is_ancestor(&self, a: NodeId, b: NodeId) -> bool {
        let na = &self.nodes[a.index()];
        let nb = &self.nodes[b.index()];
        na.start < nb.start && nb.end < na.end
    }

    /// O(1) ancestor-or-self test.
    #[inline]
    pub fn is_ancestor_or_self(&self, a: NodeId, b: NodeId) -> bool {
        a == b || self.is_ancestor(a, b)
    }

    /// O(1) parent test: is `a` the parent of `b`?
    #[inline]
    pub fn is_parent(&self, a: NodeId, b: NodeId) -> bool {
        let na = &self.nodes[a.index()];
        let nb = &self.nodes[b.index()];
        na.start < nb.start && nb.end < na.end && nb.level == na.level + 1
    }

    /// All element nodes with tag `tag`, sorted in document order.
    ///
    /// This is the input list shape required by structural joins.
    pub fn nodes_with_tag(&self, tag: Sym) -> &[NodeId] {
        self.tag_index
            .get(&tag)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Convenience: `nodes_with_tag` via a tag *name* (no-op on unknown names).
    pub fn nodes_with_tag_name(&self, name: &str) -> &[NodeId] {
        match self.symbols.lookup(name) {
            Some(sym) => self.nodes_with_tag(sym),
            None => &[],
        }
    }

    /// Content of a text node; `None` for elements.
    pub fn text_content(&self, n: NodeId) -> Option<&str> {
        match self.nodes[n.index()].kind {
            NodeKind::Text { text } => Some(&self.texts[text as usize]),
            NodeKind::Element { .. } => None,
        }
    }

    /// Concatenated text of the subtree rooted at `n`, in document order.
    pub fn subtree_text(&self, n: NodeId) -> String {
        let mut out = String::new();
        for d in self.descendants_or_self(n) {
            if let Some(t) = self.text_content(d) {
                out.push_str(t);
            }
        }
        out
    }

    /// Attributes of `n` as `(name, value)` pairs, in source order.
    pub fn attributes(&self, n: NodeId) -> &[(Sym, Box<str>)] {
        let d = &self.nodes[n.index()];
        let s = d.attrs_start as usize;
        &self.attrs[s..s + d.attrs_len as usize]
    }

    /// Value of attribute `name` on `n`, if present.
    pub fn attribute(&self, n: NodeId, name: Sym) -> Option<&str> {
        self.attributes(n)
            .iter()
            .find(|(s, _)| *s == name)
            .map(|(_, v)| v.as_ref())
    }

    /// All node ids in document order.
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All element node ids in document order.
    pub fn elements(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.all_nodes().filter(|&n| self.is_element(n))
    }

    /// Id of the last node in the subtree of `n` (i.e. descendants of `n` are
    /// exactly the ids `n+1 ..= subtree_last(n)`). Returns `n` for leaves.
    ///
    /// O(1): served from the table precomputed at construction — this sits
    /// on the hot path of candidate-range computation (every anchored
    /// candidate loop derives its id range from it).
    #[inline]
    pub fn subtree_last(&self, n: NodeId) -> NodeId {
        self.subtree_last[n.index()]
    }

    /// Number of descendants of `n` (excluding `n`).
    pub fn descendant_count(&self, n: NodeId) -> usize {
        self.subtree_last(n).index() - n.index()
    }

    /// A human-readable absolute path like `/site/regions/item[3]` (indexes
    /// are 1-based positions among same-tag siblings, omitted when unique).
    pub fn node_path(&self, n: NodeId) -> String {
        let mut parts: Vec<String> = Vec::new();
        let mut cur = Some(n);
        while let Some(node) = cur {
            let label = match self.tag(node) {
                Some(tag) => {
                    let name = self.symbols.name(tag);
                    match self.parent(node) {
                        Some(p) => {
                            let same: Vec<NodeId> = self
                                .children(p)
                                .filter(|&c| self.tag(c) == Some(tag))
                                .collect();
                            if same.len() > 1 {
                                let pos = same.iter().position(|&c| c == node).unwrap_or(0) + 1;
                                format!("{name}[{pos}]")
                            } else {
                                name.to_string()
                            }
                        }
                        None => name.to_string(),
                    }
                }
                None => "text()".to_string(),
            };
            parts.push(label);
            cur = self.parent(node);
        }
        parts.reverse();
        format!("/{}", parts.join("/"))
    }
}

#[cfg(test)]
mod tests {
    use crate::parse;

    const DOC: &str = "<a x=\"1\"><b><c>hi</c></b><b y=\"2\">there</b></a>";

    #[test]
    fn region_labels_nest_properly() {
        let doc = parse(DOC).unwrap();
        let root = doc.root_element();
        for n in doc.all_nodes() {
            if n != root {
                assert!(doc.is_ancestor(root, n), "root must contain {n}");
            }
            assert!(doc.start(n) < doc.end(n));
        }
    }

    #[test]
    fn parent_and_level_agree() {
        let doc = parse(DOC).unwrap();
        for n in doc.all_nodes() {
            if let Some(p) = doc.parent(n) {
                assert!(doc.is_parent(p, n));
                assert!(doc.is_ancestor(p, n));
                assert_eq!(doc.level(n), doc.level(p) + 1);
            } else {
                assert_eq!(n, doc.root_element());
            }
        }
    }

    #[test]
    fn tag_index_is_document_ordered() {
        let doc = parse(DOC).unwrap();
        let bs = doc.nodes_with_tag_name("b");
        assert_eq!(bs.len(), 2);
        assert!(bs[0] < bs[1]);
        assert!(doc.start(bs[0]) < doc.start(bs[1]));
    }

    #[test]
    fn attributes_are_accessible() {
        let doc = parse(DOC).unwrap();
        let root = doc.root_element();
        let x = doc.symbols().lookup("x").unwrap();
        assert_eq!(doc.attribute(root, x), Some("1"));
        let bs = doc.nodes_with_tag_name("b").to_vec();
        let y = doc.symbols().lookup("y").unwrap();
        assert_eq!(doc.attribute(bs[0], y), None);
        assert_eq!(doc.attribute(bs[1], y), Some("2"));
    }

    #[test]
    fn subtree_text_concatenates_in_order() {
        let doc = parse(DOC).unwrap();
        assert_eq!(doc.subtree_text(doc.root_element()), "hithere");
    }

    #[test]
    fn subtree_last_bounds_descendants() {
        let doc = parse(DOC).unwrap();
        let root = doc.root_element();
        assert_eq!(doc.subtree_last(root).index(), doc.node_count() - 1);
        assert_eq!(doc.descendant_count(root), doc.node_count() - 1);
        // A leaf text node has no descendants.
        let c = doc.nodes_with_tag_name("c")[0];
        let text = doc.first_child(c).unwrap();
        assert_eq!(doc.subtree_last(text), text);
    }

    #[test]
    fn node_path_is_readable_and_positional() {
        let doc = parse(DOC).unwrap();
        let bs = doc.nodes_with_tag_name("b").to_vec();
        assert_eq!(doc.node_path(doc.root_element()), "/a");
        assert_eq!(doc.node_path(bs[0]), "/a/b[1]");
        assert_eq!(doc.node_path(bs[1]), "/a/b[2]");
        let c = doc.nodes_with_tag_name("c")[0];
        assert_eq!(doc.node_path(c), "/a/b[1]/c");
        let text = doc.first_child(c).unwrap();
        assert_eq!(doc.node_path(text), "/a/b[1]/c/text()");
    }

    #[test]
    fn is_ancestor_is_irreflexive_and_antisymmetric() {
        let doc = parse(DOC).unwrap();
        for a in doc.all_nodes() {
            assert!(!doc.is_ancestor(a, a));
            for b in doc.all_nodes() {
                if doc.is_ancestor(a, b) {
                    assert!(!doc.is_ancestor(b, a));
                }
            }
        }
    }
}
