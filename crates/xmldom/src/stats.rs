//! Structural occurrence statistics.
//!
//! FleXPath's predicate penalties (Section 4.3.1) and SSO's selectivity
//! estimator (Section 6) are both defined over three document-level counts:
//!
//! * `#(t)` — number of elements with tag `t`;
//! * `#pc(t1, t2)` — number of (parent, child) element pairs tagged `(t1, t2)`;
//! * `#ad(t1, t2)` — number of (ancestor, descendant) element pairs tagged
//!   `(t1, t2)`.
//!
//! [`DocStats::compute`] collects all three in a single pass: `#ad` by
//! walking each element's ancestor chain (documents are shallow — XMark's
//! depth is ≤ 12 — so this is effectively linear).

use crate::document::{Document, NodeId};
use crate::symbols::Sym;
use std::collections::HashMap;

/// An ordered `(ancestor-side, descendant-side)` tag pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TagPair(pub Sym, pub Sym);

/// Immutable occurrence counts for one document.
#[derive(Debug, Clone, Default)]
pub struct DocStats {
    // pub(crate) so the persistent-store codec (`crate::codec`) can
    // serialize and reconstruct the maps without an intermediate copy.
    pub(crate) tag_counts: HashMap<Sym, u64>,
    pub(crate) pc_counts: HashMap<TagPair, u64>,
    pub(crate) ad_counts: HashMap<TagPair, u64>,
    pub(crate) element_total: u64,
}

impl DocStats {
    /// Collects statistics from `doc` in one pass.
    pub fn compute(doc: &Document) -> Self {
        let mut stats = DocStats::default();
        let mut anc_tags: Vec<Sym> = Vec::with_capacity(32);
        // `anc_stack` mirrors the element ancestor chain of the node being
        // visited; document order visitation keeps it consistent.
        let mut anc_stack: Vec<NodeId> = Vec::with_capacity(32);
        for n in doc.all_nodes() {
            let Some(tag) = doc.tag(n) else { continue };
            // Pop ancestors that do not contain `n`.
            while let Some(&top) = anc_stack.last() {
                if doc.is_ancestor(top, n) {
                    break;
                }
                anc_stack.pop();
                anc_tags.pop();
            }
            stats.element_total += 1;
            *stats.tag_counts.entry(tag).or_insert(0) += 1;
            // `anc_tags` parallels `anc_stack`, so its last entry is the
            // parent's tag — no re-lookup (or unwrap) needed.
            if let Some(&ptag) = anc_tags.last() {
                *stats.pc_counts.entry(TagPair(ptag, tag)).or_insert(0) += 1;
            }
            for &atag in &anc_tags {
                *stats.ad_counts.entry(TagPair(atag, tag)).or_insert(0) += 1;
            }
            anc_stack.push(n);
            anc_tags.push(tag);
        }
        stats
    }

    /// `#(t)`: number of elements tagged `t`.
    pub fn tag_count(&self, t: Sym) -> u64 {
        self.tag_counts.get(&t).copied().unwrap_or(0)
    }

    /// `#pc(t1, t2)`: parent-child pairs.
    pub fn pc_count(&self, parent: Sym, child: Sym) -> u64 {
        self.pc_counts
            .get(&TagPair(parent, child))
            .copied()
            .unwrap_or(0)
    }

    /// `#ad(t1, t2)`: ancestor-descendant pairs.
    pub fn ad_count(&self, anc: Sym, desc: Sym) -> u64 {
        self.ad_counts
            .get(&TagPair(anc, desc))
            .copied()
            .unwrap_or(0)
    }

    /// Total number of elements in the document.
    pub fn element_total(&self) -> u64 {
        self.element_total
    }

    /// Fraction of `parent`-tagged elements that have at least `1` expected
    /// `child` below them as a direct child, under the paper's uniformity
    /// assumption: `#pc(p, c) / #(p)` (may exceed 1 when children repeat).
    pub fn pc_per_parent(&self, parent: Sym, child: Sym) -> f64 {
        let p = self.tag_count(parent);
        if p == 0 {
            0.0
        } else {
            self.pc_count(parent, child) as f64 / p as f64
        }
    }

    /// `#ad(a, d) / #(a)` — expected descendants of tag `d` per `a` element.
    pub fn ad_per_ancestor(&self, anc: Sym, desc: Sym) -> f64 {
        let a = self.tag_count(anc);
        if a == 0 {
            0.0
        } else {
            self.ad_count(anc, desc) as f64 / a as f64
        }
    }

    /// Iterates all distinct tags that occur in the document.
    pub fn tags(&self) -> impl Iterator<Item = Sym> + '_ {
        self.tag_counts.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn sym(doc: &Document, name: &str) -> Sym {
        doc.symbols().lookup(name).unwrap()
    }

    #[test]
    fn counts_match_hand_computation() {
        // a
        // ├── b ── c
        // └── b ── b ── c
        let doc = parse("<a><b><c/></b><b><b><c/></b></b></a>").unwrap();
        let s = DocStats::compute(&doc);
        let (a, b, c) = (sym(&doc, "a"), sym(&doc, "b"), sym(&doc, "c"));
        assert_eq!(s.tag_count(a), 1);
        assert_eq!(s.tag_count(b), 3);
        assert_eq!(s.tag_count(c), 2);
        assert_eq!(s.element_total(), 6);
        assert_eq!(s.pc_count(a, b), 2);
        assert_eq!(s.pc_count(b, c), 2);
        assert_eq!(s.pc_count(b, b), 1);
        assert_eq!(s.pc_count(a, c), 0);
        assert_eq!(s.ad_count(a, b), 3);
        assert_eq!(s.ad_count(a, c), 2);
        assert_eq!(s.ad_count(b, c), 3); // (b1,c1), (b2,c2) via b3, (b3,c2)
        assert_eq!(s.ad_count(b, b), 1);
    }

    #[test]
    fn pc_is_bounded_by_ad() {
        let doc = parse("<r><x><y/><y><x><y/></x></y></x><x/><z><x><z/></x></z></r>").unwrap();
        let s = DocStats::compute(&doc);
        let tags: Vec<Sym> = s.tags().collect();
        for &t1 in &tags {
            for &t2 in &tags {
                assert!(
                    s.pc_count(t1, t2) <= s.ad_count(t1, t2),
                    "pc must imply ad for pair ({t1}, {t2})"
                );
            }
        }
    }

    #[test]
    fn ad_count_bounded_by_product_of_tag_counts() {
        let doc = parse("<r><a><b/><b/></a><a><b/></a></r>").unwrap();
        let s = DocStats::compute(&doc);
        let (a, b) = (sym(&doc, "a"), sym(&doc, "b"));
        assert!(s.ad_count(a, b) <= s.tag_count(a) * s.tag_count(b));
        assert_eq!(s.ad_count(a, b), 3);
    }

    #[test]
    fn text_nodes_are_ignored() {
        let doc = parse("<a>text<b>more</b></a>").unwrap();
        let s = DocStats::compute(&doc);
        assert_eq!(s.element_total(), 2);
    }

    #[test]
    fn unknown_tags_count_zero() {
        let doc = parse("<a/>").unwrap();
        let s = DocStats::compute(&doc);
        assert_eq!(s.tag_count(Sym(99)), 0);
        assert_eq!(s.pc_count(Sym(0), Sym(99)), 0);
    }

    #[test]
    fn per_parent_fractions() {
        // 2 a's; 3 b-children overall → 1.5 b per a.
        let doc = parse("<r><a><b/><b/></a><a><b/></a></r>").unwrap();
        let s = DocStats::compute(&doc);
        let (a, b) = (sym(&doc, "a"), sym(&doc, "b"));
        assert!((s.pc_per_parent(a, b) - 1.5).abs() < 1e-12);
        assert!((s.ad_per_ancestor(a, b) - 1.5).abs() < 1e-12);
    }
}
