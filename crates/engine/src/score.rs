//! Ranking schemes, predicate weights, and data-derived predicate penalties
//! (paper Section 4).
//!
//! The structural score of an answer to a relaxation `Q'` of `Q` is
//!
//! ```text
//! ss  =  Σᵢ w(pᵢ)  −  Σ_{p ∈ S} π(p)
//! ```
//!
//! where `pᵢ` ranges over the structural predicates of the *original* query,
//! `S = close(Q) − close(Q')` is the set of dropped closure predicates, and
//! `π` is the penalty model of Section 4.3.1:
//!
//! * drop `pc(i,j)` (keeping `ad`):  `#pc(tᵢ,tⱼ) / #ad(tᵢ,tⱼ) × w`
//! * drop `ad(i,j)`:                 `#ad(tᵢ,tⱼ) / (#(tᵢ)·#(tⱼ)) × w`
//! * drop `contains(i,E)` (promote to parent `l`):
//!   `#contains(tᵢ,E) / #contains(t_l,E) × w`
//!
//! Because each predicate's penalty depends only on the predicate (and the
//! data), any aggregate of the dropped multiset is **order invariant**
//! (Theorem 3), and since penalties are non-negative, relaxing can never
//! raise a structural score (**relevance**, property 1).

use crate::context::EngineContext;
use flexpath_ftsearch::{Budget, FtExpr};
use flexpath_tpq::{Predicate, Tpq, Var};
use std::collections::BTreeMap;

/// Per-predicate weights `w_Q`. The paper fixes `w(contains) = 1` and lets
/// structural weights be user-specified; `uniform()` (the default, used by
/// the experiments) gives every structural and `contains` predicate weight 1.
#[derive(Debug, Clone)]
pub struct WeightAssignment {
    default_structural: f64,
    overrides: BTreeMap<Predicate, f64>,
}

impl Default for WeightAssignment {
    fn default() -> Self {
        Self::uniform()
    }
}

impl WeightAssignment {
    /// Unit weight for every predicate.
    pub fn uniform() -> Self {
        WeightAssignment {
            default_structural: 1.0,
            overrides: BTreeMap::new(),
        }
    }

    /// Uniform weight `w` for structural predicates (contains stays 1).
    pub fn structural(w: f64) -> Self {
        WeightAssignment {
            default_structural: w,
            overrides: BTreeMap::new(),
        }
    }

    /// Overrides the weight of one specific predicate.
    pub fn with_override(mut self, pred: Predicate, weight: f64) -> Self {
        self.overrides.insert(pred, weight);
        self
    }

    /// Weight of a predicate. `contains` predicates default to 1 per the
    /// paper ("For the contains predicate, we assume a weight of 1");
    /// non-structural value predicates carry no weight.
    pub fn weight(&self, pred: &Predicate) -> f64 {
        if let Some(&w) = self.overrides.get(pred) {
            return w;
        }
        match pred {
            Predicate::Pc(..) | Predicate::Ad(..) => self.default_structural,
            Predicate::Contains(..) => 1.0,
            Predicate::Tag(..) | Predicate::Attr(..) => 0.0,
        }
    }
}

/// The data-derived penalty model for one (query, document) pair.
pub struct PenaltyModel {
    /// Tag of each original query variable (`None` = wildcard).
    var_tags: BTreeMap<Var, Option<Box<str>>>,
    /// Original query parent of each variable.
    var_parent: BTreeMap<Var, Var>,
    weights: WeightAssignment,
}

impl PenaltyModel {
    /// Builds the model for `original` (variable tags and parents are read
    /// from the *original* query — penalties are properties of the original
    /// closure, independent of how far relaxation has progressed).
    pub fn new(original: &Tpq, weights: WeightAssignment) -> Self {
        let mut var_tags = BTreeMap::new();
        let mut var_parent = BTreeMap::new();
        for (idx, node) in original.nodes().iter().enumerate() {
            var_tags.insert(node.var, node.tag.clone());
            if let Some(p) = node.parent {
                var_parent.insert(node.var, original.node(p).var);
            }
            let _ = idx;
        }
        PenaltyModel {
            var_tags,
            var_parent,
            weights,
        }
    }

    /// The weight assignment in use.
    pub fn weights(&self) -> &WeightAssignment {
        &self.weights
    }

    /// Sum of weights over the original query's structural predicates — the
    /// structural score of an exact answer (3 for Q1 in Example 1).
    pub fn base_structural_score(&self, original: &Tpq) -> f64 {
        original
            .logical()
            .structural()
            .map(|p| self.weights.weight(p))
            .sum()
    }

    fn tag_of(&self, v: Var) -> Option<&str> {
        self.var_tags.get(&v).and_then(|t| t.as_deref())
    }

    /// Penalty `π(p)` for dropping closure predicate `p` (Section 4.3.1).
    ///
    /// Ratios are clamped to `[0, 1]` and degenerate denominators (a tag or
    /// pair absent from the document, a wildcard variable) fall back to the
    /// full predicate weight — a relaxation that cannot produce new answers
    /// earns no discount.
    pub fn penalty(&self, ctx: &EngineContext, p: &Predicate) -> f64 {
        self.penalty_budgeted(ctx, p, &Budget::unlimited())
    }

    /// [`penalty`](Self::penalty) under a resource [`Budget`]: the full-text
    /// evaluation behind a `contains` penalty charges the budget's postings
    /// meter (and a tripped evaluation is never cached). A tripped budget
    /// yields a penalty from a partial evaluation — callers stop at their
    /// next checkpoint, so the value is never used to rank answers.
    pub fn penalty_budgeted(&self, ctx: &EngineContext, p: &Predicate, budget: &Budget) -> f64 {
        let w = self.weights.weight(p);
        if w == 0.0 {
            return 0.0;
        }
        let ratio = match p {
            Predicate::Pc(x, y) => self.pc_ratio(ctx, *x, *y),
            Predicate::Ad(x, y) => self.ad_ratio(ctx, *x, *y),
            Predicate::Contains(x, e) => self.contains_ratio(ctx, *x, e, budget),
            Predicate::Tag(..) | Predicate::Attr(..) => 1.0,
        };
        ratio.clamp(0.0, 1.0) * w
    }

    fn pc_ratio(&self, ctx: &EngineContext, x: Var, y: Var) -> f64 {
        let (Some(tx), Some(ty)) = (self.tag_of(x), self.tag_of(y)) else {
            return 1.0;
        };
        let (Some(sx), Some(sy)) = (ctx.resolve_tag(tx), ctx.resolve_tag(ty)) else {
            return 1.0;
        };
        let ad = ctx.stats().ad_count(sx, sy);
        if ad == 0 {
            return 1.0;
        }
        ctx.stats().pc_count(sx, sy) as f64 / ad as f64
    }

    fn ad_ratio(&self, ctx: &EngineContext, x: Var, y: Var) -> f64 {
        let (Some(tx), Some(ty)) = (self.tag_of(x), self.tag_of(y)) else {
            return 1.0;
        };
        let (Some(sx), Some(sy)) = (ctx.resolve_tag(tx), ctx.resolve_tag(ty)) else {
            return 1.0;
        };
        let denom = ctx.stats().tag_count(sx) * ctx.stats().tag_count(sy);
        if denom == 0 {
            return 1.0;
        }
        ctx.stats().ad_count(sx, sy) as f64 / denom as f64
    }

    fn contains_ratio(&self, ctx: &EngineContext, x: Var, e: &FtExpr, budget: &Budget) -> f64 {
        let Some(l) = self.var_parent.get(&x) else {
            return 1.0; // contains at the root is never promotable
        };
        let (Some(tx), Some(tl)) = (self.tag_of(x), self.tag_of(*l)) else {
            return 1.0;
        };
        let (Some(sx), Some(sl)) = (ctx.resolve_tag(tx), ctx.resolve_tag(tl)) else {
            return 1.0;
        };
        let eval = ctx.ft_eval_budgeted(e, budget);
        let denom = eval.count_for_tag(ctx.doc(), sl);
        if denom == 0 {
            return 1.0;
        }
        eval.count_for_tag(ctx.doc(), sx) as f64 / denom as f64
    }

    /// Total penalty of a dropped-predicate set (the `Σ_{p∈S} π(p)` term).
    pub fn total_penalty<'a>(
        &self,
        ctx: &EngineContext,
        dropped: impl IntoIterator<Item = &'a Predicate>,
    ) -> f64 {
        dropped.into_iter().map(|p| self.penalty(ctx, p)).sum()
    }
}

/// How structural and keyword scores combine (paper Section 4.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RankingScheme {
    /// Score is the pair `(ss, ks)`, lexicographic.
    StructureFirst,
    /// Score is the pair `(ks, ss)`, lexicographic.
    KeywordFirst,
    /// Score is `ks + ss`.
    Combined,
}

/// An answer's two-component score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnswerScore {
    /// Structural score.
    pub ss: f64,
    /// Keyword score.
    pub ks: f64,
}

impl AnswerScore {
    /// Sort key under `scheme` — higher is better; compare with
    /// [`AnswerScore::cmp_under`].
    pub fn key(&self, scheme: RankingScheme) -> (f64, f64) {
        match scheme {
            RankingScheme::StructureFirst => (self.ss, self.ks),
            RankingScheme::KeywordFirst => (self.ks, self.ss),
            RankingScheme::Combined => (self.ss + self.ks, 0.0),
        }
    }

    /// Total order under `scheme` (descending = better first is `reverse`).
    pub fn cmp_under(&self, other: &AnswerScore, scheme: RankingScheme) -> std::cmp::Ordering {
        let (a1, a2) = self.key(scheme);
        let (b1, b2) = other.key(scheme);
        a1.total_cmp(&b1).then(a2.total_cmp(&b2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexpath_tpq::TpqBuilder;
    use flexpath_xmldom::parse;

    fn ctx(xml: &str) -> EngineContext {
        EngineContext::new(parse(xml).unwrap())
    }

    fn q_section() -> Tpq {
        let mut b = TpqBuilder::new("article");
        let s = b.child(0, "section");
        let p = b.child(s, "paragraph");
        b.add_contains(p, FtExpr::term("gold"));
        b.build()
    }

    #[test]
    fn uniform_weights_match_paper_defaults() {
        let w = WeightAssignment::uniform();
        assert_eq!(w.weight(&Predicate::Pc(Var(1), Var(2))), 1.0);
        assert_eq!(w.weight(&Predicate::Ad(Var(1), Var(2))), 1.0);
        assert_eq!(
            w.weight(&Predicate::Contains(Var(1), FtExpr::term("x"))),
            1.0
        );
        assert_eq!(w.weight(&Predicate::Tag(Var(1), "a".into())), 0.0);
    }

    #[test]
    fn base_structural_score_counts_original_edges() {
        let q = q_section();
        let m = PenaltyModel::new(&q, WeightAssignment::uniform());
        assert_eq!(m.base_structural_score(&q), 2.0); // two pc edges
    }

    #[test]
    fn pc_penalty_is_pc_over_ad_ratio() {
        // 3 (section, paragraph) ad pairs, 2 of them pc.
        let c = ctx("<article><section><paragraph>gold</paragraph>\
             <wrap><paragraph>gold</paragraph></wrap>\
             <paragraph>x</paragraph></section></article>");
        let q = q_section();
        let m = PenaltyModel::new(&q, WeightAssignment::uniform());
        let pi = m.penalty(&c, &Predicate::Pc(Var(2), Var(3)));
        assert!((pi - 2.0 / 3.0).abs() < 1e-12, "got {pi}");
    }

    #[test]
    fn ad_penalty_uses_tag_count_product() {
        // #ad(article, paragraph) = 2, #(article) = 1, #(paragraph) = 2 → 1.0
        let c = ctx("<article><section><paragraph>gold</paragraph><paragraph>x</paragraph></section></article>");
        let q = q_section();
        let m = PenaltyModel::new(&q, WeightAssignment::uniform());
        let pi = m.penalty(&c, &Predicate::Ad(Var(1), Var(3)));
        assert!((pi - 1.0).abs() < 1e-12, "got {pi}");
    }

    #[test]
    fn contains_penalty_is_count_ratio_to_parent() {
        // 1 paragraph satisfies, 2 sections satisfy → ratio 1/2.
        let c = ctx("<article><section><paragraph>gold</paragraph></section>\
             <section>gold<paragraph>x</paragraph></section></article>");
        let q = q_section();
        let m = PenaltyModel::new(&q, WeightAssignment::uniform());
        let pi = m.penalty(&c, &Predicate::Contains(Var(3), FtExpr::term("gold")));
        assert!((pi - 0.5).abs() < 1e-12, "got {pi}");
    }

    #[test]
    fn degenerate_statistics_fall_back_to_full_weight() {
        let c = ctx("<article><other/></article>");
        let q = q_section();
        let m = PenaltyModel::new(&q, WeightAssignment::uniform());
        // No (section, paragraph) pairs at all → full weight.
        assert_eq!(m.penalty(&c, &Predicate::Pc(Var(2), Var(3))), 1.0);
        assert_eq!(m.penalty(&c, &Predicate::Ad(Var(1), Var(3))), 1.0);
        assert_eq!(
            m.penalty(&c, &Predicate::Contains(Var(3), FtExpr::term("gold"))),
            1.0
        );
    }

    #[test]
    fn penalties_are_bounded_by_weights() {
        let c = ctx("<article><section><paragraph>gold</paragraph></section></article>");
        let q = q_section();
        let m = PenaltyModel::new(&q, WeightAssignment::uniform());
        for p in q.closure().iter() {
            let pi = m.penalty(&c, p);
            assert!(
                (0.0..=m.weights().weight(p)).contains(&pi),
                "penalty of {p} out of range: {pi}"
            );
        }
    }

    #[test]
    fn weight_overrides_scale_penalties() {
        let c = ctx("<article><section><paragraph>gold</paragraph></section></article>");
        let q = q_section();
        let pred = Predicate::Pc(Var(1), Var(2));
        let m = PenaltyModel::new(
            &q,
            WeightAssignment::uniform().with_override(pred.clone(), 5.0),
        );
        let pi = m.penalty(&c, &pred);
        // ratio = 1/1 (only pc pairs), weight 5.
        assert!((pi - 5.0).abs() < 1e-12, "got {pi}");
    }

    #[test]
    fn total_penalty_is_order_invariant() {
        // Theorem 3: the aggregate over a multiset cannot depend on order.
        let c = ctx("<article><section><paragraph>gold</paragraph></section>\
             <section><wrap><paragraph>gold</paragraph></wrap></section></article>");
        let q = q_section();
        let m = PenaltyModel::new(&q, WeightAssignment::uniform());
        let preds: Vec<Predicate> = q.closure().iter().cloned().collect();
        let forward = m.total_penalty(&c, preds.iter());
        let backward = m.total_penalty(&c, preds.iter().rev());
        assert!((forward - backward).abs() < 1e-12);
    }

    #[test]
    fn ranking_scheme_orderings() {
        let a = AnswerScore { ss: 3.0, ks: 0.1 };
        let b = AnswerScore { ss: 2.0, ks: 0.9 };
        use std::cmp::Ordering::*;
        assert_eq!(a.cmp_under(&b, RankingScheme::StructureFirst), Greater);
        assert_eq!(a.cmp_under(&b, RankingScheme::KeywordFirst), Less);
        assert_eq!(a.cmp_under(&b, RankingScheme::Combined), Greater); // 3.1 > 2.9
        let c = AnswerScore { ss: 3.0, ks: 0.2 };
        assert_eq!(a.cmp_under(&c, RankingScheme::StructureFirst), Less); // ks breaks tie
    }
}
