//! Baseline evaluation strategies from the paper's related work
//! (Section 7), implemented for comparison with DPO/SSO/Hybrid:
//!
//! * **Rewriting enumeration** (`rewrite_enumeration_topk`) — the
//!   [Delobel-Rousset / Schlieder]-style strategy: enumerate the *entire*
//!   relaxation space up front, score every relaxed query, and evaluate
//!   them one by one in score order. DPO's contribution over this baseline
//!   is penalty-guided laziness: it only generates the relaxations the
//!   top-K answer set actually needs.
//!
//! * **Full encoding** (`full_encoding_topk`) — the [Amer-Yahia et al.,
//!   EDBT 2002] plan-based strategy the paper refines: *all* possible
//!   relaxations are encoded in one plan ("thereby resulting in large
//!   intermediate query results"). SSO's contribution is selectivity-guided
//!   prefix choice.
//!
//! * **Data relaxation** (`data_relaxation_topk`) — the APPROXML strategy:
//!   materialize a closure of the document graph ("inserting shortcut edges
//!   between each pair of nodes in the same path") and evaluate against it.
//!   The paper notes it "was shown to quickly fail with large databases";
//!   [`ExecStats::shortcut_pairs`] exposes the materialization volume that
//!   causes exactly that failure mode.

use crate::context::EngineContext;
use crate::encode::EncodedQuery;
use crate::exec::evaluate_encoded;
use crate::schedule::build_schedule;
use crate::score::{AnswerScore, PenaltyModel};
use crate::structural_join::stack_tree_desc;
use crate::topk::{sort_answers, Answer, ExecStats, TopKRequest, TopKResult};
use flexpath_tpq::enumerate_space;
use std::collections::HashSet;

/// Rewriting-enumeration baseline: materialize the relaxation space, order
/// the relaxed queries by the structural score of their answers, evaluate
/// each exactly until K answers accumulate.
///
/// `max_space` bounds the enumeration (the space is exponential in query
/// size — the very reason the paper's algorithms avoid materializing it).
pub fn rewrite_enumeration_topk(
    ctx: &EngineContext,
    request: &TopKRequest,
    max_space: usize,
) -> TopKResult {
    let model = PenaltyModel::new(&request.query, request.weights.clone());
    let mut stats = ExecStats::default();
    let space = enumerate_space(&request.query, max_space);
    stats.relaxations_used = space.len() - 1;

    // Score every entry by its dropped-predicate penalties, best first.
    let base = model.base_structural_score(&request.query);
    let mut scored: Vec<(f64, usize)> = space
        .entries
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let penalty: f64 = e.dropped.iter().map(|p| model.penalty(ctx, p)).sum();
            (base - penalty, i)
        })
        .collect();
    scored.sort_by(|a, b| b.0.total_cmp(&a.0));

    let mut answers: Vec<Answer> = Vec::new();
    let mut seen: HashSet<flexpath_xmldom::NodeId> = HashSet::new();
    for (ss, idx) in scored {
        if answers.len() >= request.k {
            break;
        }
        let entry = &space.entries[idx];
        let enc = EncodedQuery::exact(ctx, &model, &entry.tpq);
        stats.evaluations += 1;
        evaluate_encoded(ctx, &enc, request.scheme, |a| {
            stats.intermediate_answers += 1;
            if seen.insert(a.node) {
                answers.push(Answer {
                    node: a.node,
                    score: AnswerScore { ss, ks: a.score.ks },
                    satisfied: a.satisfied,
                    relaxation_level: entry.ops.len(),
                });
            }
        });
    }
    sort_answers(&mut answers, request.scheme);
    answers.truncate(request.k);
    TopKResult::complete(answers, stats)
}

/// Full-encoding baseline: the entire relaxation schedule is encoded in one
/// plan regardless of K — no selectivity estimation, no pruning benefit
/// from stopping earlier.
pub fn full_encoding_topk(ctx: &EngineContext, request: &TopKRequest) -> TopKResult {
    let model = PenaltyModel::new(&request.query, request.weights.clone());
    let schedule = build_schedule(ctx, &model, &request.query, request.max_relaxation_steps);
    let mut stats = ExecStats {
        relaxations_used: schedule.len(),
        evaluations: 1,
        ..ExecStats::default()
    };
    let enc = EncodedQuery::build(ctx, &model, &request.query, &schedule);
    let mut answers: Vec<Answer> = Vec::new();
    evaluate_encoded(ctx, &enc, request.scheme, |a| {
        stats.intermediate_answers += 1;
        answers.push(a);
    });
    sort_answers(&mut answers, request.scheme);
    answers.truncate(request.k);
    TopKResult::complete(answers, stats)
}

/// Data-relaxation baseline (APPROXML): materialize ancestor-descendant
/// shortcut edges for every tag pair of the query (the "closure of the
/// document graph", restricted to the tags the query can touch), then
/// answer the fully relaxed query. The shortcut volume is the approach's
/// scaling hazard and is reported in [`ExecStats::shortcut_pairs`].
pub fn data_relaxation_topk(ctx: &EngineContext, request: &TopKRequest) -> TopKResult {
    let model = PenaltyModel::new(&request.query, request.weights.clone());
    let mut stats = ExecStats::default();

    // Materialize shortcut edges between every pair of query tags related
    // by containment — this is the data-side closure.
    let tags: Vec<_> = request
        .query
        .nodes()
        .iter()
        .filter_map(|n| n.tag.as_deref())
        .filter_map(|t| ctx.resolve_tag(t))
        .collect();
    let mut shortcuts: u64 = 0;
    // lint:allow(fallibility): baselines run on resident contexts built by
    // the bench/test harness; a lazy decode fault here is a harness bug,
    // and the accessor's loud panic is the right surface for it.
    let doc = ctx.doc();
    for &a in &tags {
        for &d in &tags {
            let anc_list = doc.nodes_with_tag(a);
            let desc_list = doc.nodes_with_tag(d);
            let pairs = stack_tree_desc(doc, anc_list, desc_list);
            shortcuts += pairs.len() as u64;
        }
    }
    stats.shortcut_pairs = shortcuts;

    // With the data closure in place every structural edge is satisfiable
    // transitively: evaluate the fully relaxed query.
    let schedule = build_schedule(ctx, &model, &request.query, request.max_relaxation_steps);
    stats.relaxations_used = schedule.len();
    stats.evaluations = 1;
    let enc = EncodedQuery::build(ctx, &model, &request.query, &schedule);
    let mut answers: Vec<Answer> = Vec::new();
    evaluate_encoded(ctx, &enc, request.scheme, |a| {
        stats.intermediate_answers += 1;
        answers.push(a);
    });
    sort_answers(&mut answers, request.scheme);
    answers.truncate(request.k);
    TopKResult::complete(answers, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid::hybrid_topk;
    use flexpath_ftsearch::FtExpr;
    use flexpath_tpq::TpqBuilder;
    use flexpath_xmldom::parse;

    const ARTICLES: &str = "<site>\
        <article id=\"a0\"><section><algorithm>x</algorithm>\
          <paragraph>XML streaming</paragraph></section></article>\
        <article id=\"a1\"><section><title>XML streaming</title>\
          <algorithm>y</algorithm><paragraph>other</paragraph></section></article>\
        <article id=\"a2\"><section><wrap><paragraph>XML streaming</paragraph></wrap>\
          </section><algorithm>z</algorithm></article>\
        <article id=\"a3\"><note>XML streaming</note></article>\
        </site>";

    fn q1() -> flexpath_tpq::Tpq {
        let mut b = TpqBuilder::new("article");
        let s = b.child(0, "section");
        let _a = b.child(s, "algorithm");
        let p = b.child(s, "paragraph");
        b.add_contains(p, FtExpr::all_of(&["XML", "streaming"]));
        b.build()
    }

    #[test]
    fn rewrite_enumeration_finds_the_same_answer_set() {
        let ctx = EngineContext::new(parse(ARTICLES).unwrap());
        let req = TopKRequest::new(q1(), 4);
        let baseline = rewrite_enumeration_topk(&ctx, &req, 10_000);
        let hybrid = hybrid_topk(&ctx, &req);
        let mut a = baseline.nodes();
        let mut b = hybrid.nodes();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // …but at a much higher evaluation count.
        assert!(
            baseline.stats.evaluations > hybrid.stats.evaluations,
            "enumeration must evaluate more queries ({} vs {})",
            baseline.stats.evaluations,
            hybrid.stats.evaluations
        );
    }

    #[test]
    fn full_encoding_matches_hybrid_answers_without_estimates() {
        let ctx = EngineContext::new(parse(ARTICLES).unwrap());
        let req = TopKRequest::new(q1(), 4);
        let fe = full_encoding_topk(&ctx, &req);
        let hybrid = hybrid_topk(&ctx, &req);
        assert_eq!(fe.nodes(), hybrid.nodes());
        for (a, b) in fe.answers.iter().zip(hybrid.answers.iter()) {
            assert!((a.score.ss - b.score.ss).abs() < 1e-9);
        }
        // Full encoding always uses the whole schedule.
        assert!(fe.stats.relaxations_used >= hybrid.stats.relaxations_used);
    }

    #[test]
    fn data_relaxation_reports_shortcut_volume() {
        let ctx = EngineContext::new(parse(ARTICLES).unwrap());
        let req = TopKRequest::new(q1(), 4);
        let dr = data_relaxation_topk(&ctx, &req);
        assert!(
            dr.stats.shortcut_pairs > 0,
            "closure must materialize pairs"
        );
        let hybrid = hybrid_topk(&ctx, &req);
        let mut a = dr.nodes();
        let mut b = hybrid.nodes();
        a.sort();
        b.sort();
        assert_eq!(a, b, "same answers despite the different strategy");
    }

    #[test]
    fn shortcut_volume_grows_superlinearly_with_recursion() {
        // Recursive tags are the killer for data relaxation: parlist chains
        // of depth d materialize O(d²) pairs.
        let shallow = EngineContext::new(parse("<r><p><p/></p></r>").unwrap());
        let deep =
            EngineContext::new(parse("<r><p><p><p><p><p><p/></p></p></p></p></p></r>").unwrap());
        let mut b = TpqBuilder::new("p");
        b.child(0, "p");
        let q = b.build();
        let req = TopKRequest::new(q, 5);
        let s = data_relaxation_topk(&shallow, &req);
        let d = data_relaxation_topk(&deep, &req);
        // Depth 2 → 1 pair; depth 6 → 15 pairs: ×15 for ×3 depth.
        assert!(d.stats.shortcut_pairs >= s.stats.shortcut_pairs * 10);
    }
}
