//! Typed errors for input-reachable failure paths in the engine facade.
//! (Engineering surface with no direct paper analogue — the paper's
//! Section 6 prototype assumes well-formed inputs.)
//!
//! Every way user-supplied input (documents, collection parts) can be
//! malformed surfaces as an [`EngineError`] instead of a panic; the
//! `no_panics` suite in the workspace tests enforces that the library
//! targets stay free of `unwrap`/`expect` on such paths.

use crate::context::SourceError;
use flexpath_xmldom::ParseError;

/// An error raised while building or querying an engine session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A document (or collection part) failed to parse.
    Parse(ParseError),
    /// A lazily-backed context part (document / stats / index) could not
    /// be materialized from its store — corruption, I/O failure, or a
    /// tripped load budget discovered at first touch.
    Store(SourceError),
    /// A collection part contains a DOCTYPE declaration, which the
    /// collection gluer forbids (parts are embedded verbatim under a
    /// synthetic root, where a DTD would be ill-formed and is a classic
    /// entity-expansion vector).
    DoctypeForbidden {
        /// Zero-based index of the offending part.
        part: usize,
    },
    /// A collection part is not a single well-formed element (empty, bare
    /// text, or multiple roots), so it cannot be embedded under the
    /// synthetic collection root.
    NotSingleElement {
        /// Zero-based index of the offending part.
        part: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "parse error: {e}"),
            EngineError::Store(e) => write!(f, "store-backed session failed: {e}"),
            EngineError::DoctypeForbidden { part } => {
                write!(f, "collection part {part} contains a DOCTYPE declaration")
            }
            EngineError::NotSingleElement { part } => write!(
                f,
                "collection part {part} is not a single well-formed element"
            ),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Parse(e) => Some(e),
            EngineError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<SourceError> for EngineError {
    fn from(e: SourceError) -> Self {
        EngineError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let parse_err = flexpath_xmldom::parse("<a>").unwrap_err();
        let e = EngineError::from(parse_err);
        assert!(e.to_string().starts_with("parse error:"));
        assert!(std::error::Error::source(&e).is_some());
        let d = EngineError::DoctypeForbidden { part: 3 };
        assert!(d.to_string().contains("part 3"));
        assert!(std::error::Error::source(&d).is_none());
    }
}
