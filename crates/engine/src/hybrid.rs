//! Hybrid — SSO's single pass + DPO's no-resort property (paper
//! Section 5.2.3, Algorithm 2).
//!
//! "The key idea behind Hybrid is to create buckets of intermediate results
//! … where each bucket corresponds to a set of predicates. Answers in a
//! bucket satisfy the same set of predicates and so have the same score.
//! Within each bucket, answers are sorted on their node id. Since this sort
//! order is preserved by the join algorithm we use, no additional sorting
//! is necessary."
//!
//! Buckets are keyed on the satisfied-predicate bitset the evaluator
//! computes per answer. Answers stream in document order, so each bucket's
//! `Vec` push keeps node-id order for free —
//! [`ExecStats::sorted_insert_shifts`] stays at zero. (Since PR 7 the same
//! no-resort property holds for SSO too, via the generalized
//! [`TopKBuckets`](crate::order::TopKBuckets) structure that this
//! algorithm's bucket trick inspired; the paper's Fig. 13 contrast is
//! preserved historically in PERFORMANCE.md.) Pruning happens per answer
//! against the current K-th structural score — maintained by
//! [`PruneFloor`](crate::order::PruneFloor) — plus `maxScoreGrowth` (for
//! Combined, the keyword headroom `m`).

use crate::context::EngineContext;
use crate::dpo::record_common_root;
use crate::encode::EncodedQuery;
use crate::exec::{evaluate_encoded_budgeted, evaluate_encoded_parallel};
use crate::governor::{reason_key, CheckpointSite, Completeness, ExhaustReason};
use crate::metrics::{self, Tracer};
use crate::order::PruneFloor;
use crate::schedule::build_schedule_reported;
use crate::score::{PenaltyModel, RankingScheme};
use crate::sso::choose_prefix;
use crate::topk::{sort_answers, Answer, ExecStats, TopKRequest, TopKResult};
use std::collections::BTreeMap;
use std::time::Instant;

/// Runs the Hybrid top-K algorithm under the request's resource limits.
///
/// Like SSO, a budget-tripped Hybrid run returns *best-effort* answers
/// (the surviving buckets at the moment the budget tripped), not a
/// guaranteed rank prefix of the unbounded run.
pub fn hybrid_topk(ctx: &EngineContext, request: &TopKRequest) -> TopKResult {
    // lint:allow(determinism): wall-clock feeds only duration stats, which
    // the trace/counter fingerprints exclude.
    let started = Instant::now();
    let mut tracer = if request.collect_trace {
        Tracer::enabled("hybrid")
    } else {
        Tracer::disabled()
    };
    let cache_before = tracer.is_enabled().then(|| ctx.ft_cache_stats());
    let budget = request.limits.budget(request.cancel.clone());
    let model = PenaltyModel::new(&request.query, request.weights.clone());
    tracer.begin("schedule");
    let (mut schedule, sched_report) = build_schedule_reported(
        ctx,
        &model,
        &request.query,
        request.max_relaxation_steps,
        &budget,
        &request.parallel,
    );
    let mut truncated_steps = 0usize;
    if let Some(cap) = request.limits.max_relaxations_enumerated {
        if schedule.len() > cap {
            truncated_steps = schedule.len() - cap;
            schedule.truncate(cap);
        }
    }
    if tracer.is_enabled() {
        tracer.add("schedule.steps", schedule.len() as u64);
        tracer.add("schedule.truncated", truncated_steps as u64);
        tracer.add("schedule.ops_scored", sched_report.ops_scored);
        tracer.add("governor.checkpoint.schedule", sched_report.checkpoints);
    }
    tracer.end();
    let base_ss = model.base_structural_score(&request.query);

    let mut stats = ExecStats::default();
    tracer.begin("choose_prefix");
    let (mut prefix, est) = choose_prefix(ctx, request, &schedule, base_ss, &budget);
    stats.estimated_answers = est;
    if tracer.is_enabled() {
        tracer.add("prefix.steps", prefix as u64);
        tracer.add("prefix.estimated_answers", est.max(0.0) as u64);
    }
    tracer.end();
    // Keyword headroom: an answer can gain at most `m` from ks (each
    // contains predicate is weighted 1 and IR scores are ≤ 1).
    let max_growth = match request.scheme {
        RankingScheme::Combined | RankingScheme::KeywordFirst => {
            request.query.contains_count() as f64
        }
        RankingScheme::StructureFirst => 0.0,
    };

    // BTreeMap so the bucket concatenation below visits equal-ss buckets in
    // key order — the stable sort then yields one deterministic ranking.
    let mut buckets: BTreeMap<u64, Vec<Answer>> = BTreeMap::new();
    loop {
        if budget.check_now() {
            break;
        }
        tracer.begin(&format!("pass[{}]", stats.restarts));
        let pass_intermediates = stats.intermediate_answers;
        let pass_pruned = stats.pruned;
        // Estimate for this pass's encoded prefix endpoint (skew telemetry;
        // see sso.rs — unbudgeted and deterministic by construction).
        let pass_est = if prefix == 0 {
            crate::selectivity::estimate_cardinality(ctx, &request.query)
        } else {
            crate::selectivity::estimate_cardinality(ctx, &schedule[prefix - 1].query)
        };
        let enc = EncodedQuery::build_full_budgeted(
            ctx,
            &model,
            &request.query,
            &schedule[..prefix],
            request.hierarchy.as_ref(),
            request.attr_relaxation,
            &budget,
        );
        stats.relaxations_used = prefix;
        stats.evaluations += 1;
        buckets.clear();
        let mut total_kept = 0usize;
        // Min-heap of the top-K structural scores seen so far: its minimum
        // is the pruning floor, maintained in O(log K) per answer — no
        // score sorting of intermediate results ever happens. (`floor()`
        // is None when k = 0: the heap never fills, and nothing can be
        // pruned against an empty floor.)
        let mut top_ss = PruneFloor::new(request.k);
        let mut feed = |a: Answer| {
            stats.intermediate_answers += 1;
            if let Some(floor) = top_ss.floor() {
                if a.score.ss + max_growth < floor {
                    stats.pruned += 1;
                    return;
                }
            }
            top_ss.observe(a.score.ss);
            buckets.entry(a.satisfied).or_default().push(a);
            total_kept += 1;
        };
        let candidates = if request.parallel.is_parallel() {
            // Candidates are evaluated on worker threads; the concatenated
            // per-chunk answers replay the sequential document-order stream
            // through the same pruning/bucketing closure, so buckets keep
            // their node-id order (the no-resort property survives).
            let (collected, eval_stats) =
                evaluate_encoded_parallel(ctx, &enc, request.scheme, &budget, &request.parallel);
            for a in collected {
                feed(a);
            }
            eval_stats.candidates_examined
        } else {
            evaluate_encoded_budgeted(ctx, &enc, request.scheme, &budget, feed).candidates_examined
        };
        let pass_observed = (stats.intermediate_answers - pass_intermediates) as u64;
        if tracer.is_enabled() {
            tracer.add("pass.prefix", prefix as u64);
            tracer.add("pass.candidates", candidates);
            tracer.add("pass.estimated", pass_est.max(0.0) as u64);
            tracer.add("pass.intermediates", pass_observed);
            tracer.add("pass.pruned", (stats.pruned - pass_pruned) as u64);
            tracer.add("pass.buckets", buckets.len() as u64);
            tracer.add("governor.checkpoint.hybrid_pass", 1);
            tracer.add("governor.checkpoint.candidate_loop", candidates);
        }
        tracer.end();
        stats.estimated_answers = pass_est;
        stats.observed_answers = pass_observed;
        if budget.tripped().is_some() {
            // Keep the best-effort buckets scanned so far; no restart. The
            // partial intermediate count is not an observed answer universe,
            // so tripped passes stay out of the skew histograms.
            stats.buckets = buckets.len();
            break;
        }
        metrics::global().record_skew("hybrid", pass_est, pass_observed);
        if total_kept < request.k && prefix < schedule.len() {
            // Deficit-driven restart, mirroring SSO (see sso.rs).
            let deficit = (request.k - total_kept) as f64;
            let mut gained = 0.0;
            // Geometric advance: each successive restart at least doubles
            // the number of newly encoded steps, bounding restarts at
            // O(log |schedule|) even under persistent overestimates.
            let min_steps = 1usize << stats.restarts.min(6);
            let mut steps_taken = 0usize;
            while prefix < schedule.len() && (steps_taken < min_steps || gained < 2.0 * deficit) {
                steps_taken += 1;
                gained += crate::selectivity::estimate_cardinality_budgeted(
                    ctx,
                    &schedule[prefix].query,
                    &budget,
                );
                prefix += 1;
            }
            stats.restarts += 1;
            continue;
        }
        stats.buckets = buckets.len();
        break;
    }

    // Buckets are ordered by score "since each bucket is uniquely identified
    // by the set of structural predicates satisfied": concatenate buckets
    // best-ss-first, then rank the (small) survivor set under the scheme.
    let mut answers: Vec<Answer> = Vec::new();
    let mut keyed: Vec<(f64, Vec<Answer>)> =
        buckets.into_values().map(|v| (v[0].score.ss, v)).collect();
    keyed.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut taken = 0usize;
    // lint:allow(governor): post-search concatenation of surviving buckets —
    // every answer here was already charged to the budget when produced.
    for (ss, bucket) in keyed {
        // Buckets that can no longer contribute are dropped wholesale
        // ("pruning of intermediate answers translates to elimination of
        // buckets").
        if taken >= request.k {
            let worst_kept = answers
                .iter()
                .map(|a| a.score.ss)
                .fold(f64::INFINITY, f64::min);
            if ss + max_growth < worst_kept {
                break;
            }
        }
        taken += bucket.len();
        answers.extend(bucket);
    }
    sort_answers(&mut answers, request.scheme);
    answers.truncate(request.k);
    let completeness = if let Some(reason) = budget.tripped() {
        Completeness::Exhausted {
            reason,
            relaxations_explored: stats.relaxations_used,
            relaxations_remaining_estimate: schedule.len() - stats.relaxations_used
                + truncated_steps,
        }
    } else if truncated_steps > 0 && answers.len() < request.k {
        Completeness::Exhausted {
            reason: ExhaustReason::RelaxationBudget,
            relaxations_explored: stats.relaxations_used,
            relaxations_remaining_estimate: truncated_steps,
        }
    } else {
        Completeness::Complete
    };
    if tracer.is_enabled() {
        tracer.add_root("evaluations", stats.evaluations as u64);
        tracer.add_root("restarts", stats.restarts as u64);
        tracer.add_root("buckets", stats.buckets as u64);
        record_common_root(&mut tracer, ctx, cache_before, &budget);
        if let Some(reason) = completeness.exhaust_reason() {
            let site = CheckpointSite::for_reason(reason, CheckpointSite::HybridPass);
            tracer.record_trip(site.name(), reason_key(reason));
        }
    }
    let reg = metrics::global();
    reg.add("engine.query.count", 1);
    reg.add("engine.query.hybrid", 1);
    reg.observe_duration("engine.query_duration", started.elapsed());
    TopKResult {
        answers,
        stats,
        completeness,
        trace: None,
    }
    .with_trace(tracer.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sso::sso_topk;
    use flexpath_ftsearch::FtExpr;
    use flexpath_tpq::TpqBuilder;
    use flexpath_xmldom::parse;

    const ARTICLES: &str = "<site>\
        <article id=\"a0\"><section><algorithm>x</algorithm>\
          <paragraph>XML streaming</paragraph></section></article>\
        <article id=\"a1\"><section><title>XML streaming</title>\
          <algorithm>y</algorithm><paragraph>other</paragraph></section></article>\
        <article id=\"a2\"><section><wrap><paragraph>XML streaming</paragraph></wrap>\
          </section><algorithm>z</algorithm></article>\
        <article id=\"a3\"><note>XML streaming</note></article>\
        <article id=\"a4\"><section><paragraph>nothing here</paragraph></section></article>\
        </site>";

    fn q1() -> flexpath_tpq::Tpq {
        let mut b = TpqBuilder::new("article");
        let s = b.child(0, "section");
        let _a = b.child(s, "algorithm");
        let p = b.child(s, "paragraph");
        b.add_contains(p, FtExpr::all_of(&["XML", "streaming"]));
        b.build()
    }

    #[test]
    fn hybrid_agrees_with_sso_exactly() {
        // Hybrid and SSO encode the same relaxations and compute the same
        // per-answer scores; only the intermediate bookkeeping differs.
        let ctx = EngineContext::new(parse(ARTICLES).unwrap());
        for k in [1, 2, 3, 4, 10] {
            for scheme in [
                RankingScheme::StructureFirst,
                RankingScheme::KeywordFirst,
                RankingScheme::Combined,
            ] {
                let req = TopKRequest::new(q1(), k).with_scheme(scheme);
                let h = hybrid_topk(&ctx, &req);
                let s = sso_topk(&ctx, &req);
                assert_eq!(h.nodes(), s.nodes(), "k={k} scheme={scheme:?}");
                for (a, b) in h.answers.iter().zip(s.answers.iter()) {
                    assert!((a.score.ss - b.score.ss).abs() < 1e-9);
                    assert!((a.score.ks - b.score.ks).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn hybrid_never_sorts_intermediate_results() {
        let ctx = EngineContext::new(parse(ARTICLES).unwrap());
        let r = hybrid_topk(&ctx, &TopKRequest::new(q1(), 4));
        assert_eq!(r.stats.sorted_insert_shifts, 0);
        assert!(r.stats.buckets >= 1);
    }

    #[test]
    fn buckets_group_answers_by_satisfied_set() {
        let ctx = EngineContext::new(parse(ARTICLES).unwrap());
        let r = hybrid_topk(&ctx, &TopKRequest::new(q1(), 4));
        // a0..a3 all satisfy different predicate subsets here, so buckets
        // number between 1 and 4 and answers total 4.
        assert_eq!(r.answers.len(), 4);
        assert!(r.stats.buckets >= 2, "expected multiple score classes");
    }

    #[test]
    fn hybrid_on_xmark_agrees_with_sso() {
        let doc = flexpath_xmark::generate(&flexpath_xmark::XmarkConfig::sized(48 * 1024, 21));
        let ctx = EngineContext::new(doc);
        let q = flexpath_tpq::parse_query("//item[./description/parlist and ./mailbox/mail/text]")
            .unwrap();
        for k in [5, 20] {
            let req = TopKRequest::new(q.clone(), k);
            let h = hybrid_topk(&ctx, &req);
            let s = sso_topk(&ctx, &req);
            assert_eq!(h.answers.len(), s.answers.len(), "k={k}");
            // Score multisets agree (ordering of exact ties may differ
            // pre-sort, but sort_answers ties on node id, so full equality).
            assert_eq!(h.nodes(), s.nodes(), "k={k}");
        }
    }

    #[test]
    fn combined_scheme_respects_keyword_headroom() {
        let ctx = EngineContext::new(parse(ARTICLES).unwrap());
        let req = TopKRequest::new(q1(), 2).with_scheme(RankingScheme::Combined);
        let h = hybrid_topk(&ctx, &req);
        let s = sso_topk(&ctx, &req);
        assert_eq!(h.nodes(), s.nodes());
    }
}
