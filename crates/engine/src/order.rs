//! Score-order maintenance for top-K intermediate answers.
//!
//! The paper's Section 6 experiments (Fig. 13–16) trace SSO's cost to one
//! structural tension: "the algorithm used to evaluate the structural join
//! expects its result to be sorted on node identifiers while pruning …
//! requires their sorting on scores." A score-sorted `Vec` resolves that
//! tension by paying for it — every insert binary-searches a position and
//! shifts the tail (the historical [`ExecStats::sorted_insert_shifts`]
//! counter, which reached 753 k shifted elements on the 10 MB workload).
//!
//! This module resolves it the way Hybrid does, generalized to *any*
//! ranking scheme: answers with equal ranking keys land in the same bucket
//! of a [`TopKBuckets`], and since the structural join streams answers in
//! document order, each bucket's `Vec` push preserves node-id order for
//! free. Buckets live in a `BTreeMap` keyed by [`ScoreKey`] (the scheme's
//! `(primary, secondary)` key under `f64::total_cmp`), so "sorted on
//! scores" becomes a property of the map rather than work performed per
//! answer: inserts are O(log #buckets) with **zero** element shifts, and
//! [`TopKBuckets::into_ranked`] emits the same sequence the shifting
//! implementation produced — best key first, arrival (= document) order
//! within a key — byte for byte.
//!
//! Pruning uses a cached *floor*: the key of the K-th best answer held.
//! An incoming answer with `key ≤ floor` can never enter the top K
//! (scores of held answers only improve as more arrive) and is rejected
//! without touching the map, exactly matching the `Vec` implementation's
//! "cannot beat the current K-th score" test. Whole buckets strictly
//! below the floor bucket are evicted wholesale — the paper's "pruning of
//! intermediate answers translates to elimination of buckets".
//!
//! [`PruneFloor`] is the scalar sibling used by Hybrid: a min-heap over
//! the top-K *structural* scores whose minimum is the `maxScoreGrowth`
//! pruning threshold (Section 5.2.3).
//!
//! Everything here is deterministic: `BTreeMap` iteration order is defined
//! by `ScoreKey`'s total order, and no wall-clock or hash state is
//! consulted (this module is covered by `flexpath-lint`'s determinism
//! rule).
//!
//! [`ExecStats::sorted_insert_shifts`]: crate::topk::ExecStats::sorted_insert_shifts

use crate::score::{AnswerScore, RankingScheme};
use crate::topk::Answer;
use std::cmp::{Ordering, Reverse};
use std::collections::{BTreeMap, BinaryHeap};

/// An `f64` with the total order of [`f64::total_cmp`], usable as a heap
/// or map key. NaNs sort above +∞; the engine never produces them, but the
/// order stays total (and deterministic) even if one slips through.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TotalF64(pub f64);

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// An answer's ranking key under a fixed [`RankingScheme`], totally
/// ordered to agree exactly with [`AnswerScore::cmp_under`]: primary
/// component first, `total_cmp` on each. Higher keys rank better.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ScoreKey {
    primary: TotalF64,
    secondary: TotalF64,
}

impl ScoreKey {
    /// Builds the key `scheme` assigns to `score` (see
    /// [`AnswerScore::key`]).
    pub fn new(score: &AnswerScore, scheme: RankingScheme) -> Self {
        let (primary, secondary) = score.key(scheme);
        ScoreKey {
            primary: TotalF64(primary),
            secondary: TotalF64(secondary),
        }
    }
}

/// What [`TopKBuckets::offer`] decided for one answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// The answer entered its score bucket (it may still be displaced by
    /// later, better answers).
    Kept,
    /// The answer cannot enter the current top K and was discarded.
    Pruned,
}

/// Bucketized top-K order maintenance: a drop-in replacement for the
/// score-sorted intermediate `Vec` that performs no element shifts.
///
/// Contract (matched against the shifting implementation element for
/// element, see `tests/order_maintenance.rs`):
///
/// * [`offer`](TopKBuckets::offer) prunes an answer iff at least K answers
///   are held and the answer's key is ≤ the K-th best held key — the same
///   decision, in the same arrival order, as the `Vec` implementation's
///   binary-search-and-compare against `list[k-1]`.
/// * [`into_ranked`](TopKBuckets::into_ranked) emits answers best key
///   first, ties in arrival order, truncated to K — byte-identical to the
///   sorted `Vec` after its final `truncate(k)`.
/// * [`len`](TopKBuckets::len) agrees with the `Vec`'s length whenever it
///   matters: below K the counts are equal (eviction only begins once K
///   answers are held), so `len() < k` restart checks behave identically.
#[derive(Debug)]
pub struct TopKBuckets {
    k: usize,
    scheme: RankingScheme,
    /// Answers grouped by ranking key; within a bucket, arrival order
    /// (document order when fed from the structural join).
    buckets: BTreeMap<ScoreKey, Vec<Answer>>,
    /// Live answers across all buckets.
    held: usize,
    /// Key of the K-th best held answer once `held ≥ k` — the pruning
    /// threshold. `None` until K answers are held (nothing can be pruned).
    floor: Option<ScoreKey>,
    /// Answers admitted and later discarded by whole-bucket eviction.
    evicted: u64,
}

impl TopKBuckets {
    /// An empty structure targeting the best `k` answers under `scheme`.
    pub fn new(k: usize, scheme: RankingScheme) -> Self {
        TopKBuckets {
            k,
            scheme,
            buckets: BTreeMap::new(),
            held: 0,
            floor: None,
            evicted: 0,
        }
    }

    /// Offers one answer. Returns [`Offer::Pruned`] iff the answer cannot
    /// enter the current top K (K answers held and `key ≤ floor`); callers
    /// count those for [`ExecStats::pruned`].
    ///
    /// With `k == 0` every answer is pruned — an empty result needs no
    /// intermediates.
    ///
    /// [`ExecStats::pruned`]: crate::topk::ExecStats::pruned
    pub fn offer(&mut self, answer: Answer) -> Offer {
        if self.k == 0 {
            return Offer::Pruned;
        }
        let key = ScoreKey::new(&answer.score, self.scheme);
        if let Some(floor) = self.floor {
            if key <= floor {
                return Offer::Pruned;
            }
        }
        self.buckets.entry(key).or_default().push(answer);
        self.held += 1;
        if self.held >= self.k {
            self.refresh_floor();
        }
        Offer::Kept
    }

    /// Recomputes the K-th best key and evicts buckets strictly below it.
    ///
    /// Eviction is safe: the floor only rises as answers arrive, so a
    /// bucket entirely below the current floor bucket can never re-enter
    /// the top K; and the surviving buckets hold ≥ K answers by
    /// construction, so `len()` never drops below K here.
    fn refresh_floor(&mut self) {
        let mut covered = 0usize;
        let mut floor = None;
        for (key, bucket) in self.buckets.iter().rev() {
            covered += bucket.len();
            if covered >= self.k {
                floor = Some(*key);
                break;
            }
        }
        self.floor = floor;
        let Some(floor) = floor else { return };
        let worse_exists = self
            .buckets
            .keys()
            .next()
            .is_some_and(|lowest| *lowest < floor);
        if !worse_exists {
            return;
        }
        let kept = self.buckets.split_off(&floor);
        let dropped = std::mem::replace(&mut self.buckets, kept);
        let dropped_answers: usize = dropped.values().map(Vec::len).sum();
        self.held -= dropped_answers;
        self.evicted += dropped_answers as u64;
    }

    /// Live answers currently held. Below K this equals the number of
    /// non-pruned offers; at or above K it stays ≥ K (eviction never cuts
    /// into the top K), so `len() < k` means exactly what it meant for the
    /// sorted `Vec`.
    pub fn len(&self) -> usize {
        self.held
    }

    /// `true` when no answers are held.
    pub fn is_empty(&self) -> bool {
        self.held == 0
    }

    /// Distinct ranking keys currently holding answers — the bucket count
    /// surfaced as [`ExecStats::buckets`].
    ///
    /// [`ExecStats::buckets`]: crate::topk::ExecStats::buckets
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Answers admitted and later discarded by whole-bucket eviction since
    /// the last [`clear`](TopKBuckets::clear).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Resets to empty (a restart re-evaluates the extended plan from
    /// scratch). Counters reset too: each pass reports its own eviction
    /// tally.
    pub fn clear(&mut self) {
        self.buckets.clear();
        self.held = 0;
        self.floor = None;
        self.evicted = 0;
    }

    /// Consumes the structure and emits the ranked answers: best key
    /// first, arrival order within a key, truncated to K. This is exactly
    /// the sequence the score-sorted `Vec` held after `truncate(k)`.
    pub fn into_ranked(self) -> Vec<Answer> {
        let mut out = Vec::with_capacity(self.held.min(self.k));
        'emit: for bucket in self.buckets.into_values().rev() {
            for answer in bucket {
                if out.len() == self.k {
                    break 'emit;
                }
                out.push(answer);
            }
        }
        out
    }
}

/// Min-heap pruning floor over the best K scalar scores observed —
/// Hybrid's `maxScoreGrowth` threshold (paper Section 5.2.3): once K
/// structural scores have been seen, the smallest of the best K is the
/// bar an incoming answer (plus its keyword headroom) must clear.
#[derive(Debug)]
pub struct PruneFloor {
    k: usize,
    heap: BinaryHeap<Reverse<TotalF64>>,
}

impl PruneFloor {
    /// A floor over the best `k` observations.
    pub fn new(k: usize) -> Self {
        PruneFloor {
            k,
            heap: BinaryHeap::new(),
        }
    }

    /// The current threshold: the K-th best value observed, once K values
    /// have been observed. `None` before that (and always for `k == 0` —
    /// an empty top list prunes nothing, it is handled by the caller's
    /// `k == 0` emptiness).
    pub fn floor(&self) -> Option<f64> {
        if self.k == 0 || self.heap.len() < self.k {
            return None;
        }
        self.heap.peek().map(|Reverse(TotalF64(v))| *v)
    }

    /// Records one observation in O(log K); values below the current floor
    /// leave it unchanged.
    pub fn observe(&mut self, value: f64) {
        if self.k == 0 {
            return;
        }
        self.heap.push(Reverse(TotalF64(value)));
        if self.heap.len() > self.k {
            self.heap.pop();
        }
    }

    /// Forgets all observations.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answer(node: u32, ss: f64, ks: f64) -> Answer {
        Answer {
            node: flexpath_xmldom::NodeId(node),
            score: AnswerScore { ss, ks },
            satisfied: 0,
            relaxation_level: 0,
        }
    }

    #[test]
    fn emits_best_first_with_arrival_order_ties() {
        let mut b = TopKBuckets::new(10, RankingScheme::StructureFirst);
        for (node, ss) in [(0, 0.5), (1, 0.9), (2, 0.5), (3, 0.7)] {
            assert_eq!(b.offer(answer(node, ss, 0.0)), Offer::Kept);
        }
        let nodes: Vec<u32> = b.into_ranked().iter().map(|a| a.node.0).collect();
        // 0.9, 0.7, then the two 0.5s in arrival order.
        assert_eq!(nodes, vec![1, 3, 0, 2]);
    }

    #[test]
    fn prunes_at_or_below_the_kth_key() {
        let mut b = TopKBuckets::new(2, RankingScheme::StructureFirst);
        assert_eq!(b.offer(answer(0, 0.9, 0.0)), Offer::Kept);
        assert_eq!(b.offer(answer(1, 0.8, 0.0)), Offer::Kept);
        // Equal to the 2nd-best key → pruned (ties cannot displace).
        assert_eq!(b.offer(answer(2, 0.8, 0.0)), Offer::Pruned);
        // Better → kept; the old 2nd now sits below the floor.
        assert_eq!(b.offer(answer(3, 0.85, 0.0)), Offer::Kept);
        assert_eq!(b.offer(answer(4, 0.8, 0.0)), Offer::Pruned);
        let nodes: Vec<u32> = b.into_ranked().iter().map(|a| a.node.0).collect();
        assert_eq!(nodes, vec![0, 3]);
    }

    #[test]
    fn eviction_drops_whole_buckets_but_never_the_top_k() {
        let mut b = TopKBuckets::new(2, RankingScheme::StructureFirst);
        b.offer(answer(0, 0.1, 0.0));
        b.offer(answer(1, 0.2, 0.0));
        b.offer(answer(2, 0.3, 0.0));
        b.offer(answer(3, 0.4, 0.0));
        // 0.1 and 0.2 fell strictly below the floor bucket and are gone.
        assert_eq!(b.evicted(), 2);
        assert!(b.len() >= 2);
        let nodes: Vec<u32> = b.into_ranked().iter().map(|a| a.node.0).collect();
        assert_eq!(nodes, vec![3, 2]);
    }

    #[test]
    fn len_below_k_counts_every_kept_offer() {
        let mut b = TopKBuckets::new(5, RankingScheme::Combined);
        assert!(b.is_empty());
        b.offer(answer(0, 0.5, 0.5));
        b.offer(answer(1, 0.5, 0.5));
        assert_eq!(b.len(), 2);
        assert_eq!(b.bucket_count(), 1);
    }

    #[test]
    fn k_zero_prunes_everything() {
        let mut b = TopKBuckets::new(0, RankingScheme::StructureFirst);
        assert_eq!(b.offer(answer(0, 1.0, 1.0)), Offer::Pruned);
        assert!(b.into_ranked().is_empty());
    }

    #[test]
    fn clear_resets_state_and_counters() {
        let mut b = TopKBuckets::new(1, RankingScheme::StructureFirst);
        b.offer(answer(0, 0.1, 0.0));
        b.offer(answer(1, 0.2, 0.0));
        assert!(b.evicted() > 0);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.evicted(), 0);
        assert_eq!(b.bucket_count(), 0);
        assert_eq!(b.offer(answer(2, 0.05, 0.0)), Offer::Kept);
        assert_eq!(b.into_ranked().len(), 1);
    }

    #[test]
    fn score_key_order_matches_cmp_under() {
        let scores = [
            AnswerScore { ss: 0.2, ks: 0.9 },
            AnswerScore { ss: 0.9, ks: 0.2 },
            AnswerScore { ss: 0.9, ks: 0.9 },
            AnswerScore { ss: 0.0, ks: 0.0 },
            AnswerScore { ss: 0.55, ks: 0.55 },
        ];
        for scheme in [
            RankingScheme::StructureFirst,
            RankingScheme::KeywordFirst,
            RankingScheme::Combined,
        ] {
            for a in &scores {
                for b in &scores {
                    assert_eq!(
                        ScoreKey::new(a, scheme).cmp(&ScoreKey::new(b, scheme)),
                        a.cmp_under(b, scheme),
                        "{scheme:?}: {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn prune_floor_tracks_kth_best() {
        let mut f = PruneFloor::new(3);
        assert_eq!(f.floor(), None);
        f.observe(0.5);
        f.observe(0.1);
        assert_eq!(f.floor(), None);
        f.observe(0.9);
        assert_eq!(f.floor(), Some(0.1));
        f.observe(0.7);
        assert_eq!(f.floor(), Some(0.5));
        f.observe(0.01);
        assert_eq!(f.floor(), Some(0.5));
        f.clear();
        assert_eq!(f.floor(), None);
    }

    #[test]
    fn prune_floor_k_zero_never_fires() {
        let mut f = PruneFloor::new(0);
        f.observe(1.0);
        assert_eq!(f.floor(), None);
    }
}
