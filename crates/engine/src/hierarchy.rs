//! Type-hierarchy tag relaxation — the first "other relaxation" of paper
//! Section 3.4: *"if we have a type hierarchy associated with element
//! types, then we can relax a query by replacing a tag with a tag
//! associated with a supertype: e.g., in Q1, replace `$1.tag = article`
//! with `$1.tag = publication` if the type hierarchy says article is a
//! subtype of publication."*
//!
//! The paper leaves this orthogonal to the four structural operators; we
//! implement it the same way: when a [`TagHierarchy`] is attached to a
//! request, every query node whose tag belongs to a declared type may also
//! match its *sibling* tags (the other subtypes), with the tag-equality
//! predicate becoming one more relaxable bit. Its penalty follows the
//! paper's context-loss pattern:
//!
//! ```text
//! π(tag(i) = t) = #(t) / Σ_{m ∈ members(type(t))} #(m)  ×  w
//! ```
//!
//! — the closer the subtype dominates its type, the less a relaxation to
//! the supertype can add, so the heavier the penalty.

use std::collections::HashMap;

/// A flat type hierarchy: named supertypes with concrete member tags.
#[derive(Debug, Clone, Default)]
pub struct TagHierarchy {
    supertype_of: HashMap<Box<str>, Box<str>>,
    members: HashMap<Box<str>, Vec<Box<str>>>,
    weight: f64,
}

impl TagHierarchy {
    /// An empty hierarchy with unit tag-predicate weight.
    pub fn new() -> Self {
        TagHierarchy {
            supertype_of: HashMap::new(),
            members: HashMap::new(),
            weight: 1.0,
        }
    }

    /// Sets the weight of relaxed tag predicates (default 1.0).
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Declares `supertype` with the given member tags. A tag may belong to
    /// at most one type; re-declaring moves it.
    pub fn add_type(&mut self, supertype: &str, members: &[&str]) -> &mut Self {
        let entry = self.members.entry(supertype.into()).or_default();
        for m in members {
            self.supertype_of.insert((*m).into(), supertype.into());
            if !entry.iter().any(|e| &**e == *m) {
                entry.push((*m).into());
            }
        }
        self
    }

    /// The supertype of `tag`, if declared.
    pub fn supertype(&self, tag: &str) -> Option<&str> {
        self.supertype_of.get(tag).map(|s| s.as_ref())
    }

    /// All member tags of `tag`'s type (including `tag` itself), or `None`
    /// when the tag is not part of any declared type.
    pub fn siblings(&self, tag: &str) -> Option<&[Box<str>]> {
        let sup = self.supertype_of.get(tag)?;
        self.members.get(sup).map(|v| v.as_slice())
    }

    /// Weight for relaxed tag predicates.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Whether any types are declared.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declares_and_looks_up_types() {
        let mut h = TagHierarchy::new();
        h.add_type("publication", &["article", "book", "thesis"]);
        assert_eq!(h.supertype("article"), Some("publication"));
        assert_eq!(h.supertype("unrelated"), None);
        let sib = h.siblings("book").unwrap();
        assert_eq!(sib.len(), 3);
        assert!(sib.iter().any(|s| &**s == "article"));
        assert!(h.siblings("unrelated").is_none());
    }

    #[test]
    fn redeclaration_does_not_duplicate_members() {
        let mut h = TagHierarchy::new();
        h.add_type("t", &["a", "b"]);
        h.add_type("t", &["b", "c"]);
        assert_eq!(h.siblings("a").unwrap().len(), 3);
    }

    #[test]
    fn weight_configuration() {
        let h = TagHierarchy::new().with_weight(0.5);
        assert_eq!(h.weight(), 0.5);
        assert!(h.is_empty());
    }
}
