//! Shared evaluation context: document, statistics, inverted index, and a
//! cache of full-text evaluations.
//!
//! Everything FleXPath's penalties and estimates need is precomputed here
//! once per document (the paper: "we first do intensive pre-processing of
//! the document in order to obtain counts of the various types of nodes and
//! edges").
//!
//! Two backing modes exist. An **owned** context holds the decoded parts
//! directly (the parse/build path and the eager store path). A **lazy**
//! context borrows them on demand from a [`ContextSource`] — the
//! memory-mapped store — which decodes each part at most once, on first
//! touch, and reports failures as typed [`SourceError`]s. Callers that can
//! observe a lazy source (the session layer, the server) materialize the
//! parts they need up front via [`EngineContext::ensure_ready`] and handle
//! the error; after that, the infallible accessors are guaranteed to
//! succeed and the hot paths stay branch-light.

use flexpath_ftsearch::{
    Budget, CacheStats, FtEval, FtExpr, InvertedIndex, ScoringModel, ShardedCache,
};
use flexpath_xmldom::{DocStats, Document, NodeId, Sym};
use std::sync::Arc;

/// Why a lazily-backed context part could not be produced. Carried by
/// [`SourceError`]; mirrors the store's error taxonomy without depending
/// on the store crate (the dependency points the other way).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceErrorKind {
    /// The part's bytes failed checksum verification on first touch.
    Checksum,
    /// The part's bytes decoded to an inconsistent structure, were
    /// truncated, or were missing entirely.
    Corrupt,
    /// The underlying file or mapping failed at the I/O level.
    Io,
    /// The governor budget tripped while charging the load.
    Budget(crate::governor::ExhaustReason),
}

/// A typed failure while materializing a context part from its source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceError {
    /// Which part could not be produced: `"document"`, `"stats"`, or
    /// `"index"`.
    pub part: &'static str,
    /// Failure category.
    pub kind: SourceErrorKind,
    /// Human-readable description from the underlying layer.
    pub detail: String,
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.kind {
            SourceErrorKind::Checksum => "checksum mismatch",
            SourceErrorKind::Corrupt => "corrupt data",
            SourceErrorKind::Io => "I/O failure",
            SourceErrorKind::Budget(_) => "budget exhausted",
        };
        write!(
            f,
            "cannot materialize {} ({kind}): {}",
            self.part, self.detail
        )
    }
}

impl std::error::Error for SourceError {}

/// Which parts a [`ContextSource`] has already materialized (all `true`
/// for owned contexts). Surfaced per-session by the server so operators
/// can see what a lazy open has actually paid for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceResidency {
    /// The document arena is decoded and resident.
    pub document: bool,
    /// The structural statistics are decoded and resident.
    pub stats: bool,
    /// The inverted index is decoded and resident.
    pub index: bool,
}

impl SourceResidency {
    /// Residency of a fully-materialized (owned/eager) context.
    pub fn full() -> Self {
        SourceResidency {
            document: true,
            stats: true,
            index: true,
        }
    }
}

/// A provider of context parts that decodes them on demand.
///
/// Implementations (the memory-mapped `LazyStore` in `flexpath-store`)
/// own the decoded values and hand out references: the first call to a
/// `load_*` method validates and decodes that part, subsequent calls are
/// cheap cache hits. All methods must be safe to call concurrently.
pub trait ContextSource: Send + Sync {
    /// The document arena, decoding it on first call.
    fn load_document(&self) -> Result<&Document, SourceError>;
    /// The structural statistics, decoding them on first call.
    fn load_stats(&self) -> Result<&DocStats, SourceError>;
    /// The inverted index, decoding it on first call.
    fn load_index(&self) -> Result<&InvertedIndex, SourceError>;
    /// Which parts are currently materialized.
    fn residency(&self) -> SourceResidency;
}

/// The decoded parts, owned directly or borrowed from a lazy source.
///
/// The `Owned` variant is boxed: it is hundreds of bytes of inline
/// structure headers next to `Lazy`'s single fat pointer, and an
/// `EngineContext` is created once per session — one extra indirection
/// here is free, while the size skew would bloat every context on the
/// stack.
enum Parts {
    Owned(Box<OwnedParts>),
    Lazy(Box<dyn ContextSource>),
}

struct OwnedParts {
    doc: Document,
    stats: DocStats,
    index: InvertedIndex,
}

/// Owns one document plus every auxiliary structure the engine needs.
pub struct EngineContext {
    parts: Parts,
    /// Memoized full-text evaluations, keyed by expression. Sharded and
    /// lock-striped so the parallel top-K workers — and concurrent queries
    /// sharing one session — probe it without serializing on a single lock.
    ft_cache: ShardedCache<FtExpr, FtEval>,
}

/// A lazily-backed part failed *after* the session layer reported it
/// ready — a contract violation (e.g. an accessor called without
/// [`EngineContext::ensure_ready`] on a corrupt store), not an
/// input-reachable state. Keeping the diverging arm out of line keeps the
/// accessors inlinable.
#[cold]
fn source_fault(e: &SourceError) -> ! {
    // lint:allow(panic): unreachable once ensure_ready has succeeded; the
    // fallible try_* accessors are the input-facing surface.
    panic!("context part unavailable after readiness check: {e}")
}

impl EngineContext {
    /// Preprocesses `doc`: collects statistics and builds the inverted index.
    pub fn new(doc: Document) -> Self {
        let stats = DocStats::compute(&doc);
        let index = InvertedIndex::build(&doc);
        Self::from_parts(doc, stats, index)
    }

    /// Assembles a context from precomputed parts — the persistent-store
    /// load path, which skips [`DocStats::compute`] and
    /// [`InvertedIndex::build`] entirely. The caller guarantees `stats`
    /// and `index` were derived from `doc` (the store's decoders validate
    /// exactly that).
    pub fn from_parts(doc: Document, stats: DocStats, index: InvertedIndex) -> Self {
        EngineContext {
            parts: Parts::Owned(Box::new(OwnedParts { doc, stats, index })),
            ft_cache: ShardedCache::default(),
        }
    }

    /// Assembles a context over a lazy [`ContextSource`]: nothing is
    /// decoded yet. Callers must run [`EngineContext::ensure_ready`] (or
    /// use the `try_*` accessors) before the infallible accessors.
    pub fn from_source(source: Box<dyn ContextSource>) -> Self {
        EngineContext {
            parts: Parts::Lazy(source),
            ft_cache: ShardedCache::default(),
        }
    }

    /// Whether this context decodes its parts on demand.
    pub fn is_lazy(&self) -> bool {
        matches!(self.parts, Parts::Lazy(_))
    }

    /// Which parts are currently materialized (always everything for an
    /// owned context).
    pub fn residency(&self) -> SourceResidency {
        match &self.parts {
            Parts::Owned(_) => SourceResidency::full(),
            Parts::Lazy(src) => src.residency(),
        }
    }

    /// Materializes the document and statistics — plus the inverted index
    /// when `needs_index` — reporting the first failure. After `Ok(())`,
    /// the corresponding infallible accessors cannot fail.
    pub fn ensure_ready(&self, needs_index: bool) -> Result<(), SourceError> {
        self.try_doc()?;
        self.try_stats()?;
        if needs_index {
            self.try_index()?;
        }
        Ok(())
    }

    /// The document, materializing it if needed.
    pub fn try_doc(&self) -> Result<&Document, SourceError> {
        match &self.parts {
            Parts::Owned(p) => Ok(&p.doc),
            Parts::Lazy(src) => src.load_document(),
        }
    }

    /// The statistics, materializing them if needed.
    pub fn try_stats(&self) -> Result<&DocStats, SourceError> {
        match &self.parts {
            Parts::Owned(p) => Ok(&p.stats),
            Parts::Lazy(src) => src.load_stats(),
        }
    }

    /// The inverted index, materializing it if needed.
    pub fn try_index(&self) -> Result<&InvertedIndex, SourceError> {
        match &self.parts {
            Parts::Owned(p) => Ok(&p.index),
            Parts::Lazy(src) => src.load_index(),
        }
    }

    /// The document.
    pub fn doc(&self) -> &Document {
        match &self.parts {
            Parts::Owned(p) => &p.doc,
            Parts::Lazy(src) => match src.load_document() {
                Ok(doc) => doc,
                Err(e) => source_fault(&e),
            },
        }
    }

    /// Structural statistics (`#(t)`, `#pc`, `#ad`).
    pub fn stats(&self) -> &DocStats {
        match &self.parts {
            Parts::Owned(p) => &p.stats,
            Parts::Lazy(src) => match src.load_stats() {
                Ok(stats) => stats,
                Err(e) => source_fault(&e),
            },
        }
    }

    /// The inverted index.
    pub fn index(&self) -> &InvertedIndex {
        match &self.parts {
            Parts::Owned(p) => &p.index,
            Parts::Lazy(src) => match src.load_index() {
                Ok(index) => index,
                Err(e) => source_fault(&e),
            },
        }
    }

    /// Evaluates (or recalls) a full-text expression. The result is shared:
    /// the same `contains` expression appearing at several query nodes — or
    /// across relaxation rounds — is evaluated once (the "optimize repeated
    /// computation" goal of Section 1).
    pub fn ft_eval(&self, expr: &FtExpr) -> Arc<FtEval> {
        self.ft_cache
            .get_or_insert_with(expr, || self.index().evaluate(self.doc(), expr))
    }

    /// [`ft_eval`](Self::ft_eval) under a resource [`Budget`].
    ///
    /// A tripped evaluation is returned to the caller (best-effort partial
    /// matches) but never inserted into the shared cache — a later
    /// unbudgeted query must not observe a truncated evaluation.
    pub fn ft_eval_budgeted(&self, expr: &FtExpr, budget: &Budget) -> Arc<FtEval> {
        if !budget.is_limited() {
            return self.ft_eval(expr);
        }
        if let Some(hit) = self.ft_cache.get(expr) {
            return hit;
        }
        let eval = Arc::new(self.index().evaluate_budgeted(
            self.doc(),
            expr,
            ScoringModel::default(),
            budget,
        ));
        if budget.tripped().is_some() {
            return eval;
        }
        self.ft_cache.insert_if_absent(expr, eval)
    }

    /// Number of cached full-text evaluations (for tests/stats).
    pub fn ft_cache_size(&self) -> usize {
        self.ft_cache.len()
    }

    /// Hit/miss/insert/eviction counters of the full-text cache. The
    /// counters are cumulative over the context's lifetime; observability
    /// callers snapshot before and after a run and report the delta.
    pub fn ft_cache_stats(&self) -> CacheStats {
        self.ft_cache.stats()
    }

    /// Resolves a query tag name against the document's symbol table.
    pub fn resolve_tag(&self, name: &str) -> Option<Sym> {
        self.doc().symbols().lookup(name)
    }

    /// Candidate elements with tag `tag` inside the subtree of `anchor`
    /// (strict descendants), optionally restricted to direct children.
    ///
    /// Cost: one binary search into the document-ordered tag list plus the
    /// size of the result range.
    pub fn candidates_under(
        &self,
        tag: Option<Sym>,
        anchor: NodeId,
        children_only: bool,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        let doc = self.doc();
        match tag {
            Some(tag) => {
                // Both ends of the subtree range by binary search, then one
                // bulk copy — no per-element bound test on the common
                // (descendant-axis) path.
                let list = doc.nodes_with_tag(tag);
                let last = doc.subtree_last(anchor);
                let lo = list.partition_point(|&n| n <= anchor);
                let hi = lo + list[lo..].partition_point(|&n| n <= last);
                if children_only {
                    for &n in &list[lo..hi] {
                        if doc.is_parent(anchor, n) {
                            out.push(n);
                        }
                    }
                } else {
                    out.extend_from_slice(&list[lo..hi]);
                }
            }
            None => {
                // Wildcard: scan the subtree.
                for n in doc.descendants(anchor) {
                    if !doc.is_element(n) {
                        continue;
                    }
                    if !children_only || doc.is_parent(anchor, n) {
                        out.push(n);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexpath_xmldom::parse;

    fn ctx(xml: &str) -> EngineContext {
        EngineContext::new(parse(xml).unwrap())
    }

    #[test]
    fn preprocessing_populates_stats_and_index() {
        let c = ctx("<a><b>gold</b><b>silver</b></a>");
        let b = c.resolve_tag("b").unwrap();
        assert_eq!(c.stats().tag_count(b), 2);
        assert_eq!(c.index().df("gold"), 1);
    }

    #[test]
    fn ft_eval_is_cached() {
        let c = ctx("<a><b>gold</b></a>");
        let e = FtExpr::term("gold");
        let first = c.ft_eval(&e);
        let second = c.ft_eval(&e);
        assert!(std::sync::Arc::ptr_eq(&first, &second));
        assert_eq!(c.ft_cache_size(), 1);
    }

    #[test]
    fn candidates_under_descendants_and_children() {
        let c = ctx("<a><b/><c><b/><b/></c></a>");
        let root = c.doc().root_element();
        let b = c.resolve_tag("b");
        let mut out = Vec::new();
        c.candidates_under(b, root, false, &mut out);
        assert_eq!(out.len(), 3);
        c.candidates_under(b, root, true, &mut out);
        assert_eq!(out.len(), 1);
        let c_node = c.doc().nodes_with_tag_name("c")[0];
        c.candidates_under(b, c_node, true, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn wildcard_candidates_cover_all_elements() {
        let c = ctx("<a><b/><c><d/></c></a>");
        let root = c.doc().root_element();
        let mut out = Vec::new();
        c.candidates_under(None, root, false, &mut out);
        assert_eq!(out.len(), 3); // b, c, d — not the anchor itself
        c.candidates_under(None, root, true, &mut out);
        assert_eq!(out.len(), 2); // b, c
    }

    #[test]
    fn candidates_exclude_anchor_itself() {
        // Recursive tags: anchor must not match itself.
        let c = ctx("<p><p/></p>");
        let p = c.resolve_tag("p");
        let root = c.doc().root_element();
        let mut out = Vec::new();
        c.candidates_under(p, root, false, &mut out);
        assert_eq!(out.len(), 1);
        assert_ne!(out[0], root);
    }

    #[test]
    fn unknown_tag_resolves_to_none() {
        let c = ctx("<a/>");
        assert!(c.resolve_tag("nope").is_none());
    }
}
