//! Shared evaluation context: document, statistics, inverted index, and a
//! cache of full-text evaluations.
//!
//! Everything FleXPath's penalties and estimates need is precomputed here
//! once per document (the paper: "we first do intensive pre-processing of
//! the document in order to obtain counts of the various types of nodes and
//! edges").

use flexpath_ftsearch::{
    Budget, CacheStats, FtEval, FtExpr, InvertedIndex, ScoringModel, ShardedCache,
};
use flexpath_xmldom::{DocStats, Document, NodeId, Sym};
use std::sync::Arc;

/// Owns one document plus every auxiliary structure the engine needs.
pub struct EngineContext {
    doc: Document,
    stats: DocStats,
    index: InvertedIndex,
    /// Memoized full-text evaluations, keyed by expression. Sharded and
    /// lock-striped so the parallel top-K workers — and concurrent queries
    /// sharing one session — probe it without serializing on a single lock.
    ft_cache: ShardedCache<FtExpr, FtEval>,
}

impl EngineContext {
    /// Preprocesses `doc`: collects statistics and builds the inverted index.
    pub fn new(doc: Document) -> Self {
        let stats = DocStats::compute(&doc);
        let index = InvertedIndex::build(&doc);
        Self::from_parts(doc, stats, index)
    }

    /// Assembles a context from precomputed parts — the persistent-store
    /// load path, which skips [`DocStats::compute`] and
    /// [`InvertedIndex::build`] entirely. The caller guarantees `stats`
    /// and `index` were derived from `doc` (the store's decoders validate
    /// exactly that).
    pub fn from_parts(doc: Document, stats: DocStats, index: InvertedIndex) -> Self {
        EngineContext {
            doc,
            stats,
            index,
            ft_cache: ShardedCache::default(),
        }
    }

    /// The document.
    pub fn doc(&self) -> &Document {
        &self.doc
    }

    /// Structural statistics (`#(t)`, `#pc`, `#ad`).
    pub fn stats(&self) -> &DocStats {
        &self.stats
    }

    /// The inverted index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// Evaluates (or recalls) a full-text expression. The result is shared:
    /// the same `contains` expression appearing at several query nodes — or
    /// across relaxation rounds — is evaluated once (the "optimize repeated
    /// computation" goal of Section 1).
    pub fn ft_eval(&self, expr: &FtExpr) -> Arc<FtEval> {
        self.ft_cache
            .get_or_insert_with(expr, || self.index.evaluate(&self.doc, expr))
    }

    /// [`ft_eval`](Self::ft_eval) under a resource [`Budget`].
    ///
    /// A tripped evaluation is returned to the caller (best-effort partial
    /// matches) but never inserted into the shared cache — a later
    /// unbudgeted query must not observe a truncated evaluation.
    pub fn ft_eval_budgeted(&self, expr: &FtExpr, budget: &Budget) -> Arc<FtEval> {
        if !budget.is_limited() {
            return self.ft_eval(expr);
        }
        if let Some(hit) = self.ft_cache.get(expr) {
            return hit;
        }
        let eval = Arc::new(self.index.evaluate_budgeted(
            &self.doc,
            expr,
            ScoringModel::default(),
            budget,
        ));
        if budget.tripped().is_some() {
            return eval;
        }
        self.ft_cache.insert_if_absent(expr, eval)
    }

    /// Number of cached full-text evaluations (for tests/stats).
    pub fn ft_cache_size(&self) -> usize {
        self.ft_cache.len()
    }

    /// Hit/miss/insert/eviction counters of the full-text cache. The
    /// counters are cumulative over the context's lifetime; observability
    /// callers snapshot before and after a run and report the delta.
    pub fn ft_cache_stats(&self) -> CacheStats {
        self.ft_cache.stats()
    }

    /// Resolves a query tag name against the document's symbol table.
    pub fn resolve_tag(&self, name: &str) -> Option<Sym> {
        self.doc.symbols().lookup(name)
    }

    /// Candidate elements with tag `tag` inside the subtree of `anchor`
    /// (strict descendants), optionally restricted to direct children.
    ///
    /// Cost: one binary search into the document-ordered tag list plus the
    /// size of the result range.
    pub fn candidates_under(
        &self,
        tag: Option<Sym>,
        anchor: NodeId,
        children_only: bool,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        match tag {
            Some(tag) => {
                // Both ends of the subtree range by binary search, then one
                // bulk copy — no per-element bound test on the common
                // (descendant-axis) path.
                let list = self.doc.nodes_with_tag(tag);
                let last = self.doc.subtree_last(anchor);
                let lo = list.partition_point(|&n| n <= anchor);
                let hi = lo + list[lo..].partition_point(|&n| n <= last);
                if children_only {
                    for &n in &list[lo..hi] {
                        if self.doc.is_parent(anchor, n) {
                            out.push(n);
                        }
                    }
                } else {
                    out.extend_from_slice(&list[lo..hi]);
                }
            }
            None => {
                // Wildcard: scan the subtree.
                for n in self.doc.descendants(anchor) {
                    if !self.doc.is_element(n) {
                        continue;
                    }
                    if !children_only || self.doc.is_parent(anchor, n) {
                        out.push(n);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexpath_xmldom::parse;

    fn ctx(xml: &str) -> EngineContext {
        EngineContext::new(parse(xml).unwrap())
    }

    #[test]
    fn preprocessing_populates_stats_and_index() {
        let c = ctx("<a><b>gold</b><b>silver</b></a>");
        let b = c.resolve_tag("b").unwrap();
        assert_eq!(c.stats().tag_count(b), 2);
        assert_eq!(c.index().df("gold"), 1);
    }

    #[test]
    fn ft_eval_is_cached() {
        let c = ctx("<a><b>gold</b></a>");
        let e = FtExpr::term("gold");
        let first = c.ft_eval(&e);
        let second = c.ft_eval(&e);
        assert!(std::sync::Arc::ptr_eq(&first, &second));
        assert_eq!(c.ft_cache_size(), 1);
    }

    #[test]
    fn candidates_under_descendants_and_children() {
        let c = ctx("<a><b/><c><b/><b/></c></a>");
        let root = c.doc().root_element();
        let b = c.resolve_tag("b");
        let mut out = Vec::new();
        c.candidates_under(b, root, false, &mut out);
        assert_eq!(out.len(), 3);
        c.candidates_under(b, root, true, &mut out);
        assert_eq!(out.len(), 1);
        let c_node = c.doc().nodes_with_tag_name("c")[0];
        c.candidates_under(b, c_node, true, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn wildcard_candidates_cover_all_elements() {
        let c = ctx("<a><b/><c><d/></c></a>");
        let root = c.doc().root_element();
        let mut out = Vec::new();
        c.candidates_under(None, root, false, &mut out);
        assert_eq!(out.len(), 3); // b, c, d — not the anchor itself
        c.candidates_under(None, root, true, &mut out);
        assert_eq!(out.len(), 2); // b, c
    }

    #[test]
    fn candidates_exclude_anchor_itself() {
        // Recursive tags: anchor must not match itself.
        let c = ctx("<p><p/></p>");
        let p = c.resolve_tag("p");
        let root = c.doc().root_element();
        let mut out = Vec::new();
        c.candidates_under(p, root, false, &mut out);
        assert_eq!(out.len(), 1);
        assert_ne!(out[0], root);
    }

    #[test]
    fn unknown_tag_resolves_to_none() {
        let c = ctx("<a/>");
        assert!(c.resolve_tag("nope").is_none());
    }
}
