//! The penalty-ordered relaxation schedule.
//!
//! All three algorithms walk the *same* sequence of relaxations: "computes
//! its closure and sorts its predicates by increasing penalty order …
//! \[then\] drops the predicate with the lowest penalty" (Section 5.1.1).
//! Predicate dropping is achieved through the operators of Section 3.5
//! (paper footnote 6), so the schedule is built greedily: at each state,
//! apply the applicable operator whose dropped-predicate set has the lowest
//! total penalty.
//!
//! Each step records the *new* predicates it drops relative to the original
//! closure — penalties are properties of the original query, so the score
//! of answers admitted at step `i` is `base − Σ_{j ≤ i} penalty(j)`,
//! independent of derivation order (Theorem 3).

use crate::context::EngineContext;
use crate::parallel::{fan_out, ParallelConfig};
use crate::score::PenaltyModel;
use flexpath_ftsearch::Budget;
use flexpath_tpq::{applicable_ops, closure_of, relaxation_step, Predicate, RelaxOp, Tpq};

/// One scheduled relaxation step.
#[derive(Debug, Clone)]
pub struct ScheduledStep {
    /// Operator applied at this step.
    pub op: RelaxOp,
    /// The query after this step.
    pub query: Tpq,
    /// Closure predicates newly dropped by this step (relative to the
    /// original query's closure), with their penalties.
    pub new_dropped: Vec<(Predicate, f64)>,
    /// Penalty of this step (sum over `new_dropped`).
    pub step_penalty: f64,
    /// Cumulative penalty after this step.
    pub cumulative_penalty: f64,
    /// Structural score of answers first admitted by this step.
    pub ss_after: f64,
}

/// Builds the greedy penalty-ordered schedule for `original`.
///
/// Stops when no operator applies, when `max_steps` is reached, or when the
/// total count of droppable structural/contains predicates would exceed 64
/// (the encoded bitset width).
pub fn build_schedule(
    ctx: &EngineContext,
    model: &PenaltyModel,
    original: &Tpq,
    max_steps: usize,
) -> Vec<ScheduledStep> {
    build_schedule_budgeted(ctx, model, original, max_steps, &Budget::unlimited())
}

/// [`build_schedule`] under a resource [`Budget`]: checkpoints between
/// steps, returning the (valid) prefix built so far when the budget trips.
/// Schedule prefixes are always usable — each step only depends on the
/// steps before it.
pub fn build_schedule_budgeted(
    ctx: &EngineContext,
    model: &PenaltyModel,
    original: &Tpq,
    max_steps: usize,
    budget: &Budget,
) -> Vec<ScheduledStep> {
    build_schedule_parallel(
        ctx,
        model,
        original,
        max_steps,
        budget,
        &ParallelConfig::sequential(),
    )
}

/// Work counters from one schedule construction, for the observability
/// layer. Both counts come from the sequential greedy loop, so they are
/// identical at every thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScheduleBuildReport {
    /// Governor checkpoints taken (one per greedy step attempted).
    pub checkpoints: u64,
    /// Applicable operators scored across all steps.
    pub ops_scored: u64,
}

/// [`build_schedule_budgeted`] with the per-step operator evaluation fanned
/// out over worker threads.
///
/// The greedy loop itself stays sequential (step `i+1` depends on step
/// `i`'s query), but within one step every applicable operator's penalty is
/// independent — each is scored concurrently, and the winner is chosen by
/// the same rule as the sequential scan: smallest penalty, earliest
/// operator index on ties (strict `<` over the index-ordered candidate
/// list). The schedule is therefore identical at every thread count.
pub fn build_schedule_parallel(
    ctx: &EngineContext,
    model: &PenaltyModel,
    original: &Tpq,
    max_steps: usize,
    budget: &Budget,
    parallel: &ParallelConfig,
) -> Vec<ScheduledStep> {
    build_schedule_reported(ctx, model, original, max_steps, budget, parallel).0
}

/// [`build_schedule_parallel`] that also returns a [`ScheduleBuildReport`]
/// of the work performed.
pub fn build_schedule_reported(
    ctx: &EngineContext,
    model: &PenaltyModel,
    original: &Tpq,
    max_steps: usize,
    budget: &Budget,
    parallel: &ParallelConfig,
) -> (Vec<ScheduledStep>, ScheduleBuildReport) {
    let base = model.base_structural_score(original);
    let original_closure = original.closure();
    let mut steps: Vec<ScheduledStep> = Vec::new();
    let mut current = original.clone();
    let mut dropped_so_far = flexpath_tpq::PredicateSet::new();
    let mut bits_used = 0usize;
    let mut report = ScheduleBuildReport::default();

    while steps.len() < max_steps {
        report.checkpoints += 1;
        if budget.check_now() {
            break;
        }
        // Score every applicable operator (concurrently when configured);
        // pick the cheapest, first-listed on ties.
        type Candidate = (RelaxOp, Tpq, Vec<(Predicate, f64)>, f64);
        let ops = applicable_ops(&current);
        report.ops_scored += ops.len() as u64;
        let workers = parallel.workers_for_rounds(ops.len());
        let scored: Vec<Option<Candidate>> = fan_out(ops.len(), workers, |i| {
            let op = ops[i].clone();
            let Ok(step) = relaxation_step(&current, &op) else {
                return None;
            };
            // New drops relative to the ORIGINAL closure (weighted preds only).
            let after_closure = closure_of(&step.result.logical());
            let new_dropped: Vec<(Predicate, f64)> = original_closure
                .difference(&after_closure)
                .iter()
                .filter(|p| !dropped_so_far.contains(p))
                .filter(|p| model.weights().weight(p) > 0.0)
                .map(|p| (p.clone(), model.penalty_budgeted(ctx, p, budget)))
                .collect();
            if new_dropped.is_empty() {
                // The operator did not weaken the query w.r.t. the original
                // closure (e.g. a no-op diamond); skip it.
                return None;
            }
            let penalty: f64 = new_dropped.iter().map(|(_, pi)| pi).sum();
            Some((op, step.result, new_dropped, penalty))
        });
        let mut best: Option<Candidate> = None;
        for candidate in scored.into_iter().flatten() {
            let better = match &best {
                None => true,
                Some((_, _, _, best_penalty)) => candidate.3 < *best_penalty,
            };
            if better {
                best = Some(candidate);
            }
        }
        let Some((op, next, new_dropped, step_penalty)) = best else {
            break;
        };
        if bits_used + new_dropped.len() > 64 {
            break;
        }
        bits_used += new_dropped.len();
        for (p, _) in &new_dropped {
            dropped_so_far.insert(p.clone());
        }
        let cumulative = steps.last().map(|s| s.cumulative_penalty).unwrap_or(0.0) + step_penalty;
        steps.push(ScheduledStep {
            op,
            query: next.clone(),
            new_dropped,
            step_penalty,
            cumulative_penalty: cumulative,
            ss_after: base - cumulative,
        });
        current = next;
    }
    (steps, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::WeightAssignment;
    use flexpath_ftsearch::FtExpr;
    use flexpath_tpq::TpqBuilder;
    use flexpath_xmldom::parse;

    fn setup(xml: &str, q: &Tpq) -> (EngineContext, PenaltyModel) {
        let ctx = EngineContext::new(parse(xml).unwrap());
        let model = PenaltyModel::new(q, WeightAssignment::uniform());
        (ctx, model)
    }

    fn q1() -> Tpq {
        let mut b = TpqBuilder::new("article");
        let s = b.child(0, "section");
        let _a = b.child(s, "algorithm");
        let p = b.child(s, "paragraph");
        b.add_contains(p, FtExpr::all_of(&["XML", "streaming"]));
        b.build()
    }

    const DOC: &str = "<site><article><section><algorithm>x</algorithm>\
        <paragraph>XML streaming</paragraph></section></article>\
        <article><section><wrap><paragraph>XML streaming</paragraph></wrap>\
        </section></article></site>";

    #[test]
    fn schedule_is_penalty_monotone_in_cumulative_score() {
        let q = q1();
        let (ctx, model) = setup(DOC, &q);
        let steps = build_schedule(&ctx, &model, &q, 64);
        assert!(!steps.is_empty());
        let mut last_ss = model.base_structural_score(&q);
        for s in &steps {
            assert!(s.step_penalty >= 0.0);
            assert!(s.ss_after <= last_ss + 1e-12, "ss must not increase");
            last_ss = s.ss_after;
        }
    }

    #[test]
    fn schedule_drops_disjoint_predicate_sets() {
        let q = q1();
        let (ctx, model) = setup(DOC, &q);
        let steps = build_schedule(&ctx, &model, &q, 64);
        let mut seen = std::collections::HashSet::new();
        for s in &steps {
            for (p, _) in &s.new_dropped {
                assert!(seen.insert(p.clone()), "predicate {p} dropped twice");
            }
        }
    }

    #[test]
    fn schedule_reaches_full_relaxation() {
        let q = q1();
        let (ctx, model) = setup(DOC, &q);
        let steps = build_schedule(&ctx, &model, &q, 64);
        // The last query should be maximally relaxed: a single node with the
        // contains predicate promoted to the root.
        let final_q = &steps.last().unwrap().query;
        assert_eq!(final_q.node_count(), 1);
        assert_eq!(final_q.node(0).contains.len(), 1);
    }

    #[test]
    fn first_step_is_the_cheapest_available() {
        let q = q1();
        let (ctx, model) = setup(DOC, &q);
        let steps = build_schedule(&ctx, &model, &q, 64);
        // Recompute all first-step penalties by hand and compare.
        let mut penalties = Vec::new();
        for op in applicable_ops(&q) {
            let step = relaxation_step(&q, &op).unwrap();
            let p: f64 = step
                .dropped
                .iter()
                .filter(|p| model.weights().weight(p) > 0.0)
                .map(|p| model.penalty(&ctx, p))
                .sum();
            penalties.push(p);
        }
        let min = penalties.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            (steps[0].step_penalty - min).abs() < 1e-12,
            "first step penalty {} ≠ min {}",
            steps[0].step_penalty,
            min
        );
    }

    #[test]
    fn max_steps_caps_the_schedule() {
        let q = q1();
        let (ctx, model) = setup(DOC, &q);
        let steps = build_schedule(&ctx, &model, &q, 2);
        assert_eq!(steps.len(), 2);
    }

    #[test]
    fn single_node_query_has_empty_schedule() {
        let q = TpqBuilder::new("article").build();
        let (ctx, model) = setup(DOC, &q);
        assert!(build_schedule(&ctx, &model, &q, 64).is_empty());
    }

    #[test]
    fn parallel_schedule_is_identical_to_sequential() {
        let q = q1();
        let (ctx, model) = setup(DOC, &q);
        let seq = build_schedule(&ctx, &model, &q, 64);
        for threads in [2, 4, 8] {
            let par = build_schedule_parallel(
                &ctx,
                &model,
                &q,
                64,
                &Budget::unlimited(),
                &ParallelConfig::with_threads(threads),
            );
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(format!("{:?}", a.op), format!("{:?}", b.op));
                assert_eq!(a.step_penalty, b.step_penalty);
                assert_eq!(a.ss_after, b.ss_after);
                assert_eq!(a.new_dropped.len(), b.new_dropped.len());
            }
        }
    }

    #[test]
    fn cumulative_penalty_accumulates() {
        let q = q1();
        let (ctx, model) = setup(DOC, &q);
        let steps = build_schedule(&ctx, &model, &q, 64);
        let mut acc = 0.0;
        for s in &steps {
            acc += s.step_penalty;
            assert!((s.cumulative_penalty - acc).abs() < 1e-9);
        }
    }
}
