//! DPO — Dynamic Penalty Order (paper Section 5.1.1).
//!
//! DPO is the *rewriting* strategy: it evaluates the user query, and while
//! fewer than K answers have been produced it applies the next-cheapest
//! relaxation step and re-evaluates. Its strengths (usable with an
//! off-the-shelf XPath engine; answers arrive already grouped by score so
//! no resorting is needed; exact answer counts, no estimates) and weakness
//! (repeated passes over the data, one evaluation per relaxation round) are
//! both faithfully reproduced.
//!
//! Recomputation avoidance (Section 5.2.2): answers found in earlier rounds
//! are remembered and skipped, so each round only surfaces the *delta* its
//! relaxation admitted.
//!
//! ## Parallel rounds
//!
//! With [`ParallelConfig::is_parallel`] set, DPO evaluates the next
//! `threads` rounds *speculatively* as one batch, one worker per round —
//! Theorem 3 makes round deltas independent of each other, so evaluating
//! round `r+1` before round `r` has committed changes nothing. The merge
//! then replays the batch strictly in round order: per-round stop conditions
//! are re-applied against the committed state, cross-round duplicates are
//! filtered exactly as the sequential loop would, and rounds past a stop
//! point are discarded as wasted speculation. Committed state is therefore
//! identical at every thread count; only the `evaluations`-style *work*
//! counters remain those of the committed rounds. If the shared budget trips
//! anywhere in a batch, the whole batch is discarded — the committed
//! answers stay an exact per-round prefix of the unbounded run, the same
//! guarantee the sequential path gives for its single aborted round.

use crate::context::EngineContext;
use crate::encode::EncodedQuery;
use crate::exec::{evaluate_encoded_budgeted, evaluate_encoded_parallel};
use crate::governor::{reason_key, CheckpointSite, Completeness, ExhaustReason};
use crate::metrics::{self, TraceSpan, Tracer};
use crate::parallel::{fan_out, ParallelConfig};
use crate::schedule::build_schedule_reported;
use crate::score::{PenaltyModel, RankingScheme};
use crate::topk::{sort_answers, Answer, ExecStats, TopKRequest, TopKResult};
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Runs the DPO top-K algorithm under the request's resource limits.
///
/// When the budget trips mid-search the partially evaluated round is
/// *discarded*: the returned answers are exactly the union of the completed
/// rounds, which by Theorem 3 is a prefix of the unbounded run's ranking
/// under structure-first order.
pub fn dpo_topk(ctx: &EngineContext, request: &TopKRequest) -> TopKResult {
    // lint:allow(determinism): wall-clock feeds only duration stats, which
    // the trace/counter fingerprints exclude.
    let started = Instant::now();
    let mut tracer = if request.collect_trace {
        Tracer::enabled("dpo")
    } else {
        Tracer::disabled()
    };
    let cache_before = tracer.is_enabled().then(|| ctx.ft_cache_stats());
    let budget = request.limits.budget(request.cancel.clone());
    let model = PenaltyModel::new(&request.query, request.weights.clone());
    tracer.begin("schedule");
    let (mut schedule, sched_report) = build_schedule_reported(
        ctx,
        &model,
        &request.query,
        request.max_relaxation_steps,
        &budget,
        &request.parallel,
    );
    // `max_relaxations_enumerated` bounds the schedule itself; remember how
    // much was cut so the completeness report can estimate remaining work.
    let mut truncated_steps = 0usize;
    if let Some(cap) = request.limits.max_relaxations_enumerated {
        if schedule.len() > cap {
            truncated_steps = schedule.len() - cap;
            schedule.truncate(cap);
        }
    }
    if tracer.is_enabled() {
        tracer.add("schedule.steps", schedule.len() as u64);
        tracer.add("schedule.truncated", truncated_steps as u64);
        tracer.add("schedule.ops_scored", sched_report.ops_scored);
        tracer.add("governor.checkpoint.schedule", sched_report.checkpoints);
    }
    tracer.end();
    let base_ss = model.base_structural_score(&request.query);
    let m = request.query.contains_count() as f64; // Combined-scheme bound

    let mut stats = ExecStats::default();
    let mut answers: Vec<Answer> = Vec::new();
    // lint:allow(determinism): membership-only dedup set — never iterated,
    // so its order cannot reach answers or fingerprints.
    let mut seen: HashSet<flexpath_xmldom::NodeId> = HashSet::new();
    // The structural score at which we had ≥ K answers (Combined pruning).
    let mut ss_at_k: Option<f64> = None;
    // Rounds whose deltas were fully committed (round 0 = the exact query).
    let mut completed_rounds = 0usize;
    // Speculatively evaluated rounds thrown away (batch-size dependent,
    // hence scheduling-dependent — traced under the `nd.` namespace).
    let mut discarded_rounds = 0usize;

    // Stop before evaluating (or committing) a round that cannot contribute
    // to the top K.
    let should_stop = |answers: &[Answer], ss_at_k: Option<f64>, round_ss: f64| -> bool {
        if answers.len() < request.k {
            return false;
        }
        match request.scheme {
            RankingScheme::StructureFirst => {
                // Later rounds have ss ≤ previous; only exact ties could
                // still matter, and the schedule's penalties are ≥ 0, so
                // a strictly lower ss ends the search.
                let kth_ss = answers.iter().map(|a| a.score.ss).fold(f64::MAX, f64::min);
                round_ss < kth_ss
            }
            RankingScheme::Combined => {
                // Section 5.1: no answer of a relaxation with
                // ss_j ≤ ss_i − m can reach the top K (ks ≤ m).
                ss_at_k.is_some_and(|ssk| round_ss <= ssk - m)
            }
            RankingScheme::KeywordFirst => {
                // "All relaxations need to be encoded": an answer with
                // the worst structural score might still lead on ks.
                false
            }
        }
    };
    let round_ss_of = |r: usize| {
        if r == 0 {
            base_ss
        } else {
            schedule[r - 1].ss_after
        }
    };

    let total_rounds = schedule.len() + 1;
    let mut next_round = 0usize;
    'rounds: while next_round < total_rounds {
        if budget.check_now() {
            break;
        }
        if should_stop(&answers, ss_at_k, round_ss_of(next_round)) {
            break;
        }
        // Speculative batch: the next `threads` rounds, one worker each
        // (one round evaluated inline when sequential). A batch of one
        // instead parallelizes *within* the round, over its candidates.
        let batch = request
            .parallel
            .workers_for_rounds(total_rounds - next_round)
            .min(total_rounds - next_round);
        let within_round = if batch == 1 {
            request.parallel
        } else {
            ParallelConfig::sequential()
        };
        // Evaluate each round of the batch against the ORIGINAL `seen` set:
        // workers dedup only within their own round; the cross-round filter
        // happens at merge time, in round order, exactly as the sequential
        // loop interleaves it.
        let evaluated: Vec<(Vec<Answer>, u64, u64, Duration)> = fan_out(batch, batch, |bi| {
            // lint:allow(determinism): per-round duration only; durations
            // are excluded from the counter fingerprint.
            let round_started = Instant::now();
            let round = next_round + bi;
            let round_query = if round == 0 {
                request.query.clone()
            } else {
                schedule[round - 1].query.clone()
            };
            let round_ss = round_ss_of(round);
            // Evaluate this round's query exactly (the off-the-shelf-engine
            // path).
            let enc = EncodedQuery::build_full_budgeted(
                ctx,
                &model,
                &round_query,
                &[],
                request.hierarchy.as_ref(),
                request.attr_relaxation,
                &budget,
            );
            let mut round_delta: Vec<Answer> = Vec::new();
            // lint:allow(determinism): membership-only dedup set — never
            // iterated; cross-round merge applies `seen` in round order.
            let mut round_seen: HashSet<flexpath_xmldom::NodeId> = HashSet::new();
            let mut intermediates = 0u64;
            let mut on_answer = |a: Answer| {
                intermediates += 1;
                if round_seen.insert(a.node) {
                    // With the hierarchy extension the per-answer score
                    // already reflects unsatisfied exact-tag predicates;
                    // carry that deficit over to the round's compile-time
                    // score.
                    let tag_deficit = enc.base_ss - a.score.ss;
                    round_delta.push(Answer {
                        node: a.node,
                        score: crate::score::AnswerScore {
                            ss: round_ss - tag_deficit,
                            ks: a.score.ks,
                        },
                        satisfied: a.satisfied,
                        relaxation_level: round,
                    });
                }
            };
            let candidates = if within_round.is_parallel() {
                let (collected, eval_stats) =
                    evaluate_encoded_parallel(ctx, &enc, request.scheme, &budget, &within_round);
                for a in collected {
                    on_answer(a);
                }
                eval_stats.candidates_examined
            } else {
                evaluate_encoded_budgeted(ctx, &enc, request.scheme, &budget, on_answer)
                    .candidates_examined
            };
            (
                round_delta,
                intermediates,
                candidates,
                round_started.elapsed(),
            )
        });
        if budget.tripped().is_some() {
            // Partial batch: discard its deltas entirely (Theorem 3 prefix
            // correctness — committed rounds depend only on their endpoint
            // queries, not on how far the aborted rounds got). Account the
            // aborted evaluation the way the sequential loop does.
            stats.evaluations += 1;
            stats.relaxations_used = next_round;
            discarded_rounds += batch;
            break;
        }
        // Commit the batch strictly in round order, re-applying the stop
        // conditions against the growing committed state.
        for (bi, (mut round_delta, intermediates, candidates, round_time)) in
            evaluated.into_iter().enumerate()
        {
            let round = next_round + bi;
            let round_ss = round_ss_of(round);
            if bi > 0 && should_stop(&answers, ss_at_k, round_ss) {
                // Wasted speculation: this round (and everything after it)
                // would never have been evaluated sequentially.
                discarded_rounds += batch - bi;
                break 'rounds;
            }
            stats.evaluations += 1;
            stats.relaxations_used = round;
            stats.intermediate_answers += intermediates as usize;
            let before_dedup = round_delta.len();
            round_delta.retain(|a| !seen.contains(&a.node));
            // Estimate-vs-actual skew for this round: the static estimator's
            // prediction for the round's (cumulatively relaxed) query against
            // the distinct answers the full evaluation just materialized.
            // Computed here on the driver thread with an *unbudgeted*
            // estimate — a pure function of document statistics and the round
            // query — so neither governor counters nor the deterministic
            // fingerprint can see a difference.
            let round_query_ref = if round == 0 {
                &request.query
            } else {
                &schedule[round - 1].query
            };
            let round_est = crate::selectivity::estimate_cardinality(ctx, round_query_ref);
            metrics::global().record_skew("dpo", round_est, before_dedup as u64);
            stats.estimated_answers = round_est;
            stats.observed_answers = before_dedup as u64;
            if tracer.is_enabled() {
                // Span attachment happens only here, at commit time and in
                // round order, so the span tree (and every non-`nd.`
                // counter) is identical at every thread count.
                let mut span = TraceSpan::new(if round == 0 {
                    "round[0] op=exact".to_string()
                } else {
                    format!("round[{round}] op={}", schedule[round - 1].op)
                });
                span.duration = round_time;
                span.add("round.candidates", candidates);
                span.add("round.intermediates", intermediates);
                span.add("round.estimated", round_est.max(0.0) as u64);
                span.add("round.observed", before_dedup as u64);
                span.add("round.admitted", round_delta.len() as u64);
                span.add(
                    "round.duplicates_pruned",
                    (before_dedup - round_delta.len()) as u64,
                );
                if round > 0 {
                    span.add(
                        "round.dropped_preds",
                        schedule[round - 1].new_dropped.len() as u64,
                    );
                }
                span.add("governor.checkpoint.dpo_round", 1);
                span.add("governor.checkpoint.candidate_loop", candidates);
                tracer.attach(span);
            }
            seen.extend(round_delta.iter().map(|a| a.node));
            answers.append(&mut round_delta);
            completed_rounds = round + 1;

            if answers.len() >= request.k && ss_at_k.is_none() {
                ss_at_k = Some(round_ss);
                if request.scheme == RankingScheme::StructureFirst {
                    // Answers of strictly later rounds score strictly lower
                    // (or tie — handled by the stop check above).
                    if round == schedule.len() {
                        break 'rounds;
                    }
                }
            }
        }
        next_round += batch;
    }

    sort_answers(&mut answers, request.scheme);
    answers.truncate(request.k);
    let explored = completed_rounds.saturating_sub(1);
    let completeness = if let Some(reason) = budget.tripped() {
        Completeness::Exhausted {
            reason,
            relaxations_explored: explored,
            relaxations_remaining_estimate: schedule.len() - explored + truncated_steps,
        }
    } else if truncated_steps > 0 && answers.len() < request.k {
        // The enumeration cap hid relaxations that might have produced the
        // missing answers; everything actually enumerated ran to completion.
        Completeness::Exhausted {
            reason: ExhaustReason::RelaxationBudget,
            relaxations_explored: explored,
            relaxations_remaining_estimate: truncated_steps,
        }
    } else {
        Completeness::Complete
    };
    if tracer.is_enabled() {
        tracer.add_root("dpo.rounds_total", (schedule.len() + 1) as u64);
        tracer.add_root("dpo.rounds_committed", completed_rounds as u64);
        tracer.add_root("evaluations", stats.evaluations as u64);
        if discarded_rounds > 0 {
            tracer.add_root("nd.dpo.rounds_discarded", discarded_rounds as u64);
        }
        record_common_root(&mut tracer, ctx, cache_before, &budget);
        if let Some(reason) = completeness.exhaust_reason() {
            let site = CheckpointSite::for_reason(reason, CheckpointSite::DpoRound);
            tracer.record_trip(site.name(), reason_key(reason));
        }
    }
    let reg = metrics::global();
    reg.add("engine.query.count", 1);
    reg.add("engine.query.dpo", 1);
    reg.observe_duration("engine.query_duration", started.elapsed());
    TopKResult {
        answers,
        stats,
        completeness,
        trace: None,
    }
    .with_trace(tracer.finish())
}

/// Adds the whole-query root counters shared by all three algorithms: the
/// full-text cache delta for this run and the postings total — all under
/// `nd.` because cache hit/miss splits (and hence postings scanned through
/// the cache) legitimately vary with thread scheduling.
pub(crate) fn record_common_root(
    tracer: &mut Tracer,
    ctx: &EngineContext,
    cache_before: Option<flexpath_ftsearch::CacheStats>,
    budget: &crate::governor::Budget,
) {
    if let Some(before) = cache_before {
        let after = ctx.ft_cache_stats();
        tracer.add_root("nd.cache.hits", after.hits.saturating_sub(before.hits));
        tracer.add_root(
            "nd.cache.misses",
            after.misses.saturating_sub(before.misses),
        );
        tracer.add_root(
            "nd.cache.inserts",
            after.inserts.saturating_sub(before.inserts),
        );
        tracer.add_root(
            "nd.cache.evictions",
            after.evictions.saturating_sub(before.evictions),
        );
    }
    tracer.add_root("nd.ft.postings_scanned", budget.postings_scanned());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk::TopKRequest;
    use flexpath_ftsearch::FtExpr;
    use flexpath_tpq::TpqBuilder;
    use flexpath_xmldom::parse;

    const ARTICLES: &str = "<site>\
        <article id=\"a0\"><section><algorithm>x</algorithm>\
          <paragraph>XML streaming</paragraph></section></article>\
        <article id=\"a1\"><section><title>XML streaming</title>\
          <algorithm>y</algorithm><paragraph>other</paragraph></section></article>\
        <article id=\"a2\"><section><wrap><paragraph>XML streaming</paragraph></wrap>\
          </section><algorithm>z</algorithm></article>\
        <article id=\"a3\"><note>XML streaming</note></article>\
        <article id=\"a4\"><section><paragraph>nothing here</paragraph></section></article>\
        </site>";

    fn q1() -> flexpath_tpq::Tpq {
        let mut b = TpqBuilder::new("article");
        let s = b.child(0, "section");
        let _a = b.child(s, "algorithm");
        let p = b.child(s, "paragraph");
        b.add_contains(p, FtExpr::all_of(&["XML", "streaming"]));
        b.build()
    }

    fn label(ctx: &EngineContext, a: &Answer) -> String {
        let id = ctx.resolve_tag("id").unwrap();
        ctx.doc().attribute(a.node, id).unwrap_or("?").to_string()
    }

    #[test]
    fn k1_stops_after_exact_round() {
        let ctx = EngineContext::new(parse(ARTICLES).unwrap());
        let r = dpo_topk(&ctx, &TopKRequest::new(q1(), 1));
        assert_eq!(r.answers.len(), 1);
        assert_eq!(label(&ctx, &r.answers[0]), "a0");
        assert_eq!(r.stats.evaluations, 1, "no relaxation needed for K=1");
        assert_eq!(r.answers[0].relaxation_level, 0);
    }

    #[test]
    fn relaxation_rounds_admit_more_answers_in_score_order() {
        let ctx = EngineContext::new(parse(ARTICLES).unwrap());
        let r = dpo_topk(&ctx, &TopKRequest::new(q1(), 4));
        assert_eq!(r.answers.len(), 4);
        // Exact answer first; scores non-increasing.
        assert_eq!(label(&ctx, &r.answers[0]), "a0");
        for w in r.answers.windows(2) {
            assert!(w[0].score.ss >= w[1].score.ss - 1e-12);
        }
        assert!(r.stats.evaluations > 1);
        // Relaxation levels are non-decreasing with rank under
        // structure-first.
        for w in r.answers.windows(2) {
            assert!(w[0].relaxation_level <= w[1].relaxation_level);
        }
    }

    #[test]
    fn k_larger_than_answer_universe_returns_everything() {
        let ctx = EngineContext::new(parse(ARTICLES).unwrap());
        let r = dpo_topk(&ctx, &TopKRequest::new(q1(), 50));
        // a4 never satisfies the contains; 4 answers max.
        assert_eq!(r.answers.len(), 4);
    }

    #[test]
    fn answers_are_not_duplicated_across_rounds() {
        let ctx = EngineContext::new(parse(ARTICLES).unwrap());
        let r = dpo_topk(&ctx, &TopKRequest::new(q1(), 10));
        let mut nodes: Vec<_> = r.answers.iter().map(|a| a.node).collect();
        let before = nodes.len();
        nodes.sort();
        nodes.dedup();
        assert_eq!(nodes.len(), before);
    }

    #[test]
    fn more_relaxations_needed_for_larger_k() {
        let ctx = EngineContext::new(parse(ARTICLES).unwrap());
        let r1 = dpo_topk(&ctx, &TopKRequest::new(q1(), 1));
        let r4 = dpo_topk(&ctx, &TopKRequest::new(q1(), 4));
        assert!(r4.stats.relaxations_used > r1.stats.relaxations_used);
        assert!(r4.stats.evaluations > r1.stats.evaluations);
    }

    #[test]
    fn combined_scheme_returns_k_answers() {
        let ctx = EngineContext::new(parse(ARTICLES).unwrap());
        let r = dpo_topk(
            &ctx,
            &TopKRequest::new(q1(), 3).with_scheme(RankingScheme::Combined),
        );
        assert_eq!(r.answers.len(), 3);
        for w in r.answers.windows(2) {
            let a = w[0].score.ss + w[0].score.ks;
            let b = w[1].score.ss + w[1].score.ks;
            assert!(a >= b - 1e-12);
        }
    }

    #[test]
    fn keyword_first_runs_all_rounds() {
        let ctx = EngineContext::new(parse(ARTICLES).unwrap());
        let r = dpo_topk(
            &ctx,
            &TopKRequest::new(q1(), 2).with_scheme(RankingScheme::KeywordFirst),
        );
        assert_eq!(r.answers.len(), 2);
        for w in r.answers.windows(2) {
            assert!(w[0].score.ks >= w[1].score.ks - 1e-12);
        }
    }

    #[test]
    fn zero_k_returns_nothing_quickly() {
        let ctx = EngineContext::new(parse(ARTICLES).unwrap());
        let r = dpo_topk(&ctx, &TopKRequest::new(q1(), 0));
        assert!(r.answers.is_empty());
    }
}
