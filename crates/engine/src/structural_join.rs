//! Stack-Tree structural joins (Al-Khalifa et al., ICDE 2002) — the join
//! primitive cited by the paper's implementation section (5.2.1: "we use the
//! structural join algorithm given in \[1\]; this algorithm requires input
//! lists to be sorted on node identifiers").
//!
//! Both variants take two document-ordered node lists and emit all
//! (ancestor, descendant) — or (parent, child) — pairs in a single merge
//! pass with an explicit stack, O(|A| + |D| + |output|).

use crate::parallel::{chunk_ranges, fan_out, ParallelConfig};
use flexpath_ftsearch::Budget;
use flexpath_xmldom::{Document, NodeId};

/// All pairs `(a, d)` with `a ∈ ancestors`, `d ∈ descendants`, and `a` a
/// strict ancestor of `d`. Output is sorted by `(d, a)` grouped per
/// descendant in stack order (outermost ancestor first).
pub fn stack_tree_desc(
    doc: &Document,
    ancestors: &[NodeId],
    descendants: &[NodeId],
) -> Vec<(NodeId, NodeId)> {
    stack_tree_desc_budgeted(doc, ancestors, descendants, &Budget::unlimited())
}

/// [`stack_tree_desc`] under a resource [`Budget`]: checkpoints once per
/// descendant and returns the (document-order) pair prefix joined so far
/// when the budget trips.
///
/// Descendants that provably produce no pairs are skipped by **galloping**
/// (exponential probe + binary search) rather than visited one at a time:
/// whenever the stack is empty, every descendant before the next
/// ancestor's start position is output-free, so the merge jumps straight
/// to the first viable descendant in `O(log gap)`. Skipped counts surface
/// as `engine.join.skipped`; the emitted pair stream is identical.
pub fn stack_tree_desc_budgeted(
    doc: &Document,
    ancestors: &[NodeId],
    descendants: &[NodeId],
    budget: &Budget,
) -> Vec<(NodeId, NodeId)> {
    let mut out = Vec::new();
    let mut stack: Vec<NodeId> = Vec::new();
    let mut ai = 0usize;
    let mut di = 0usize;
    let mut skipped = 0u64;
    while di < descendants.len() {
        if budget.checkpoint() {
            break;
        }
        if stack.is_empty() {
            // No open ancestor interval: only a future ancestor can cover
            // the descendants ahead.
            if ai >= ancestors.len() {
                skipped += (descendants.len() - di) as u64;
                break;
            }
            let next_start = doc.start(ancestors[ai]);
            if doc.start(descendants[di]) < next_start {
                let jump = gallop_below(doc, &descendants[di..], next_start);
                skipped += jump as u64;
                di += jump;
                if di >= descendants.len() {
                    break;
                }
            }
        }
        let d = descendants[di];
        // Push every ancestor-candidate that starts before `d`.
        // lint:allow(governor): `ai` is a monotone cursor — this loop visits
        // each ancestor once across the whole join, and the enclosing
        // per-descendant loop checkpoints the budget.
        while ai < ancestors.len() && doc.start(ancestors[ai]) < doc.start(d) {
            let a = ancestors[ai];
            // Pop candidates that ended before this one starts.
            while let Some(&top) = stack.last() {
                if doc.end(top) < doc.start(a) {
                    stack.pop();
                } else {
                    break;
                }
            }
            stack.push(a);
            ai += 1;
        }
        // Pop candidates that ended before `d` starts.
        while let Some(&top) = stack.last() {
            if doc.end(top) < doc.start(d) {
                stack.pop();
            } else {
                break;
            }
        }
        // Everything left on the stack contains `d`.
        for &a in stack.iter() {
            debug_assert!(doc.is_ancestor(a, d));
            out.push((a, d));
        }
        di += 1;
    }
    let reg = crate::metrics::global();
    reg.add("engine.join.calls", 1);
    reg.add("engine.join.pairs", out.len() as u64);
    reg.add("engine.join.skipped", skipped);
    out
}

/// Number of leading `nodes` whose start position is `< bound`, found by
/// galloping: exponential probe to bracket the boundary, then binary
/// search inside the bracket. `O(log k)` for a skip of `k` — cheap for
/// short hops, still logarithmic for huge ones.
// lint:allow(governor): logarithmic probe over an in-memory slice — the
// caller's per-descendant loop holds the budget checkpoint.
fn gallop_below(doc: &Document, nodes: &[NodeId], bound: u32) -> usize {
    let mut probe = 1usize;
    while probe < nodes.len() && doc.start(nodes[probe]) < bound {
        probe <<= 1;
    }
    let lo = probe >> 1;
    let hi = probe.min(nodes.len());
    lo + nodes[lo..hi].partition_point(|&n| doc.start(n) < bound)
}

/// [`stack_tree_desc`] fanned out over worker threads.
///
/// The descendant list is split into contiguous document-order chunks; each
/// worker re-runs the merge for its chunk against the full ancestor list.
/// Because XML intervals nest properly, the ancestors stacked above a given
/// descendant are a pure function of that descendant — chunk boundaries
/// cannot change any pair — so concatenating the per-chunk outputs in chunk
/// order reproduces the sequential `(d, a)`-grouped output exactly.
///
/// Each worker's merge rescans the ancestor list from the beginning, so the
/// total work is `O(W·|A| + |D| + |output|)` for `W` workers: worthwhile
/// when the descendant side dominates (the common shape for the selective
/// ancestor lists relaxation produces), and the fan-out is skipped below
/// [`ParallelConfig::min_round_size`] descendants.
pub fn stack_tree_desc_parallel(
    doc: &Document,
    ancestors: &[NodeId],
    descendants: &[NodeId],
    parallel: &ParallelConfig,
) -> Vec<(NodeId, NodeId)> {
    let workers = parallel.workers_for_candidates(descendants.len());
    if workers <= 1 {
        return stack_tree_desc(doc, ancestors, descendants);
    }
    let ranges = chunk_ranges(descendants.len(), workers);
    let per_chunk = fan_out(ranges.len(), workers, |wi| {
        stack_tree_desc(doc, ancestors, &descendants[ranges[wi].clone()])
    });
    let mut out = Vec::with_capacity(per_chunk.iter().map(Vec::len).sum());
    for chunk in per_chunk {
        out.extend(chunk);
    }
    out
}

/// All pairs `(p, c)` with `p ∈ parents`, `c ∈ children`, and `p` the
/// *parent* of `c` — the pc variant (level filter on top of the stack join).
pub fn stack_tree_anc(
    doc: &Document,
    parents: &[NodeId],
    children: &[NodeId],
) -> Vec<(NodeId, NodeId)> {
    stack_tree_desc(doc, parents, children)
        .into_iter()
        .filter(|&(p, c)| doc.level(c) == doc.level(p) + 1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexpath_xmldom::parse;

    /// Brute-force oracle.
    fn naive_ad(doc: &Document, a: &[NodeId], d: &[NodeId]) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for &x in a {
            for &y in d {
                if doc.is_ancestor(x, y) {
                    out.push((x, y));
                }
            }
        }
        out.sort();
        out
    }

    fn sorted(mut v: Vec<(NodeId, NodeId)>) -> Vec<(NodeId, NodeId)> {
        v.sort();
        v
    }

    #[test]
    fn matches_naive_on_nested_document() {
        let doc = parse("<a><b><a><b/><c><b/></c></a></b><b/><c><a><b/></a></c></a>").unwrap();
        let a_list = doc.nodes_with_tag_name("a").to_vec();
        let b_list = doc.nodes_with_tag_name("b").to_vec();
        assert_eq!(
            sorted(stack_tree_desc(&doc, &a_list, &b_list)),
            naive_ad(&doc, &a_list, &b_list)
        );
    }

    #[test]
    fn pc_variant_filters_to_direct_children() {
        let doc = parse("<a><b/><c><b/></c></a>").unwrap();
        let a_list = doc.nodes_with_tag_name("a").to_vec();
        let b_list = doc.nodes_with_tag_name("b").to_vec();
        let pc = stack_tree_anc(&doc, &a_list, &b_list);
        assert_eq!(pc.len(), 1);
        assert!(doc.is_parent(pc[0].0, pc[0].1));
        let ad = stack_tree_desc(&doc, &a_list, &b_list);
        assert_eq!(ad.len(), 2);
    }

    #[test]
    fn galloping_skips_output_free_descendants() {
        // A long output-free prefix (and suffix) of descendants: the merge
        // gallops over them, and the emitted pairs are unchanged.
        let doc = parse("<r><b/><b/><b/><b/><b/><b/><b/><b/><a><b/></a><b/><b/><b/></r>").unwrap();
        let a_list = doc.nodes_with_tag_name("a").to_vec();
        let b_list = doc.nodes_with_tag_name("b").to_vec();
        let out = stack_tree_desc(&doc, &a_list, &b_list);
        assert_eq!(sorted(out), naive_ad(&doc, &a_list, &b_list));
    }

    #[test]
    fn empty_inputs_yield_empty_output() {
        let doc = parse("<a><b/></a>").unwrap();
        let b_list = doc.nodes_with_tag_name("b").to_vec();
        assert!(stack_tree_desc(&doc, &[], &b_list).is_empty());
        assert!(stack_tree_desc(&doc, &b_list, &[]).is_empty());
    }

    #[test]
    fn self_join_of_recursive_tags() {
        // parlist-in-parlist recursion shape.
        let doc = parse("<p><p><p/></p><p/></p>").unwrap();
        let ps = doc.nodes_with_tag_name("p").to_vec();
        let ad = sorted(stack_tree_desc(&doc, &ps, &ps));
        assert_eq!(ad, naive_ad(&doc, &ps, &ps));
        assert_eq!(ad.len(), 4); // root→3 inner… root contains 3, middle contains 1.
    }

    #[test]
    fn output_is_grouped_by_descendant_in_document_order() {
        let doc = parse("<a><a><b/></a><b/></a>").unwrap();
        let a_list = doc.nodes_with_tag_name("a").to_vec();
        let b_list = doc.nodes_with_tag_name("b").to_vec();
        let out = stack_tree_desc(&doc, &a_list, &b_list);
        // Descendants appear in document order.
        let ds: Vec<NodeId> = out.iter().map(|&(_, d)| d).collect();
        let mut sorted_ds = ds.clone();
        sorted_ds.sort();
        assert_eq!(ds, sorted_ds);
    }

    #[test]
    fn parallel_join_reproduces_sequential_output_exactly() {
        let cfg = flexpath_xmark::XmarkConfig::sized(16 * 1024, 5);
        let doc = flexpath_xmark::generate(&cfg);
        let a_list = doc.nodes_with_tag_name("parlist").to_vec();
        let d_list = doc.nodes_with_tag_name("text").to_vec();
        let seq = stack_tree_desc(&doc, &a_list, &d_list);
        for threads in [2, 4, 8] {
            let mut p = ParallelConfig::with_threads(threads);
            p.min_round_size = 1;
            let par = stack_tree_desc_parallel(&doc, &a_list, &d_list, &p);
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn agrees_with_naive_on_generated_corpus() {
        let cfg = flexpath_xmark::XmarkConfig::sized(8 * 1024, 77);
        let doc = flexpath_xmark::generate(&cfg);
        for (anc, desc) in [
            ("item", "text"),
            ("description", "parlist"),
            ("parlist", "parlist"),
            ("mailbox", "text"),
        ] {
            let a_list = doc.nodes_with_tag_name(anc).to_vec();
            let d_list = doc.nodes_with_tag_name(desc).to_vec();
            assert_eq!(
                sorted(stack_tree_desc(&doc, &a_list, &d_list)),
                naive_ad(&doc, &a_list, &d_list),
                "mismatch for ({anc}, {desc})"
            );
        }
    }
}
