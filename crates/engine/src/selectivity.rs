//! Selectivity estimation (paper Section 6).
//!
//! SSO decides *statically* how many relaxations to encode using estimated
//! result sizes. We implement the estimator the paper describes: intensive
//! preprocessing collects node/edge counts ([`flexpath_xmldom::DocStats`]),
//! then a **uniform-distribution independence assumption** is applied —
//! "suppose 60% of A's in the document have a B as a child; we assume that
//! this fraction is independent of the location of A in the document".
//!
//! The estimate of a TPQ is therefore
//!
//! ```text
//! est(Q) = #(tag(root)) · Π_{edges (x,y)} P(edge) · Π_{contains(x,E)} P(x sat E)
//! ```
//!
//! with `P(pc-edge) = min(1, #pc(tx,ty)/#(tx))`, `P(ad-edge) = min(1,
//! #ad(tx,ty)/#(tx))`, and `P(x sat E) = #contains(tx,E)/#(tx)`. The `min`
//! clamps expected-count ratios into probabilities ("at least one child")
//! — the same simplification the paper's own estimator makes by treating
//! fractions as independent probabilities.

use crate::context::EngineContext;
use flexpath_ftsearch::Budget;
use flexpath_tpq::{Axis, Tpq};

/// Estimates the number of answers (distinct distinguished-node bindings)
/// of `q` against the context's document.
pub fn estimate_cardinality(ctx: &EngineContext, q: &Tpq) -> f64 {
    estimate_cardinality_budgeted(ctx, q, &Budget::unlimited())
}

/// [`estimate_cardinality`] under a resource [`Budget`]: the full-text
/// evaluations behind `contains` probabilities charge the budget's postings
/// meter (and a tripped evaluation is never cached). Under a tripped budget
/// the estimate may be truncated — callers stop at their next checkpoint.
pub fn estimate_cardinality_budgeted(ctx: &EngineContext, q: &Tpq, budget: &Budget) -> f64 {
    // Root count.
    let root = q.node(q.root());
    let mut est = match root.tag.as_deref() {
        Some(tag) => match ctx.resolve_tag(tag) {
            Some(sym) => ctx.stats().tag_count(sym) as f64,
            None => 0.0,
        },
        None => ctx.stats().element_total() as f64,
    };
    if est == 0.0 {
        return 0.0;
    }
    // Edge probabilities, independence-assumed.
    for (idx, node) in q.nodes().iter().enumerate() {
        let Some(parent) = node.parent else { continue };
        let ptag = q.node(parent).tag.as_deref();
        let ctag = node.tag.as_deref();
        let p = edge_probability(ctx, ptag, ctag, node.axis);
        est *= p;
        let _ = idx;
    }
    // Contains probabilities.
    for node in q.nodes() {
        let Some(tag) = node.tag.as_deref() else {
            continue;
        };
        let Some(sym) = ctx.resolve_tag(tag) else {
            return 0.0;
        };
        let total = ctx.stats().tag_count(sym);
        if total == 0 {
            return 0.0;
        }
        for e in &node.contains {
            let sat = ctx
                .ft_eval_budgeted(e, budget)
                .count_for_tag(ctx.doc(), sym);
            est *= sat as f64 / total as f64;
        }
    }
    est
}

fn edge_probability(
    ctx: &EngineContext,
    parent_tag: Option<&str>,
    child_tag: Option<&str>,
    axis: Axis,
) -> f64 {
    let (Some(pt), Some(ct)) = (parent_tag, child_tag) else {
        // Wildcard endpoints: assume the edge is satisfiable.
        return 1.0;
    };
    let (Some(ps), Some(cs)) = (ctx.resolve_tag(pt), ctx.resolve_tag(ct)) else {
        return 0.0;
    };
    let parents = ctx.stats().tag_count(ps);
    if parents == 0 {
        return 0.0;
    }
    let pairs = match axis {
        Axis::Child => ctx.stats().pc_count(ps, cs),
        Axis::Descendant => ctx.stats().ad_count(ps, cs),
    };
    (pairs as f64 / parents as f64).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexpath_ftsearch::FtExpr;
    use flexpath_tpq::TpqBuilder;
    use flexpath_xmldom::parse;

    fn ctx(xml: &str) -> EngineContext {
        EngineContext::new(parse(xml).unwrap())
    }

    #[test]
    fn exact_for_single_tag_queries() {
        let c = ctx("<r><a/><a/><a/></r>");
        let q = TpqBuilder::new("a").build();
        assert_eq!(estimate_cardinality(&c, &q), 3.0);
    }

    #[test]
    fn uniform_fraction_multiplies_down_the_path() {
        // 4 a's, 2 with a b child → P = 0.5; estimate 4 × 0.5 = 2.
        let c = ctx("<r><a><b/></a><a><b/></a><a/><a/></r>");
        let mut b = TpqBuilder::new("a");
        b.child(0, "b");
        let q = b.build();
        assert!((estimate_cardinality(&c, &q) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn descendant_axis_uses_ad_counts() {
        // b under a only transitively: pc estimate 0, ad estimate positive.
        let c = ctx("<r><a><w><b/></w></a><a/></r>");
        let mut builder = TpqBuilder::new("a");
        builder.child(0, "b");
        let pc_q = builder.build();
        let mut builder = TpqBuilder::new("a");
        builder.descendant(0, "b");
        let ad_q = builder.build();
        assert_eq!(estimate_cardinality(&c, &pc_q), 0.0);
        assert!((estimate_cardinality(&c, &ad_q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relaxation_never_lowers_the_estimate() {
        let c = ctx("<r><a><b/></a><a><w><b/></w></a><a><b/><c/></a><a/><a><c/></a></r>");
        let mut builder = TpqBuilder::new("a");
        builder.child(0, "b");
        builder.child(0, "c");
        let q = builder.build();
        let base = estimate_cardinality(&c, &q);
        for op in flexpath_tpq::applicable_ops(&q) {
            let relaxed = flexpath_tpq::apply_op(&q, &op).unwrap();
            let est = estimate_cardinality(&c, &relaxed);
            assert!(
                est >= base - 1e-12,
                "{op} lowered the estimate: {base} → {est}"
            );
        }
    }

    #[test]
    fn contains_scales_by_satisfaction_fraction() {
        // 2 of 4 a's contain "gold".
        let c = ctx("<r><a>gold</a><a>gold</a><a>x</a><a>y</a></r>");
        let mut b = TpqBuilder::new("a");
        b.add_contains(0, FtExpr::term("gold"));
        let q = b.build();
        assert!((estimate_cardinality(&c, &q) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_tags_estimate_zero() {
        let c = ctx("<r><a/></r>");
        let q = TpqBuilder::new("missing").build();
        assert_eq!(estimate_cardinality(&c, &q), 0.0);
        let mut b = TpqBuilder::new("a");
        b.child(0, "missing");
        assert_eq!(estimate_cardinality(&c, &b.build()), 0.0);
    }

    #[test]
    fn probabilities_are_clamped() {
        // Every a has 3 b children: raw ratio 3.0, clamped to 1.0 so the
        // estimate cannot exceed the root count.
        let c = ctx("<r><a><b/><b/><b/></a><a><b/><b/><b/></a></r>");
        let mut b = TpqBuilder::new("a");
        b.child(0, "b");
        let q = b.build();
        assert!((estimate_cardinality(&c, &q) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn estimate_is_reasonable_on_xmark_queries() {
        let doc = flexpath_xmark::generate(&flexpath_xmark::XmarkConfig::sized(64 * 1024, 42));
        let c = EngineContext::new(doc);
        let q = flexpath_tpq::parse_query("//item[./description/parlist]").unwrap();
        let est = estimate_cardinality(&c, &q);
        let items = c.stats().tag_count(c.resolve_tag("item").unwrap()) as f64;
        assert!(est > 0.0 && est <= items, "est {est}, items {items}");
    }
}
