//! Relaxation-encoded queries.
//!
//! SSO and Hybrid "encode relaxations in the query evaluation process"
//! (Section 7's *plan-based strategies*): instead of evaluating one query
//! per relaxation, a single plan matches the *most relaxed* form while
//! remembering, per answer, which original closure predicates still hold —
//! "dropping corresponds to making predicates optional (and not losing them
//! entirely)" (Section 5.1.1).
//!
//! An [`EncodedQuery`] aligns three things:
//!
//! * **Node specs**, one per *original* query node. Surviving nodes carry
//!   their relaxed match condition (anchor + axis + required `contains` +
//!   attribute predicates). Nodes deleted by `λ` become **ghosts**: optional
//!   operands that are still matched opportunistically so that answers which
//!   happen to satisfy the deleted predicates score higher (the paper:
//!   "dropping .//C … does not mean that the query A[.//C] will never be
//!   considered").
//! * **Relaxable predicates** — the union of the schedule prefix's dropped
//!   closure predicates, each with its penalty and a per-match check. Their
//!   indices form the satisfied-predicate bitset that Hybrid buckets on.
//! * **Contains specs** — each original `contains` expression with its
//!   current (relaxed) holder node, shared [`FtEval`] handle, and weight.
//!
//! [`FtEval`]: flexpath_ftsearch::FtEval

use crate::attr_relax::AttrRelaxation;
use crate::context::EngineContext;
use crate::hierarchy::TagHierarchy;
use crate::schedule::ScheduledStep;
use crate::score::PenaltyModel;
use flexpath_ftsearch::{Budget, FtEval};
use flexpath_tpq::{AttrPred, Axis, Predicate, Tpq, Var};
use flexpath_xmldom::Sym;
use std::sync::Arc;

/// How a relaxable predicate is checked against a match.
pub enum BitCheck {
    /// `pc(x, owner)`: the binding of spec `x` must be the parent of the
    /// owner's binding.
    PcFrom(usize),
    /// `ad(x, owner)`: the binding of spec `x` must be an ancestor.
    AdFrom(usize),
    /// `contains(owner, E)`: the owner's subtree must satisfy `E`.
    ContainsHere(Arc<FtEval>),
    /// `owner.tag = t`: the owner's binding carries exactly this tag
    /// (hierarchy extension — unsatisfied when a sibling subtype matched).
    TagIs(Sym),
    /// The owner's binding satisfies the *strict* attribute bound
    /// (value-relaxation extension — unsatisfied when only the slackened
    /// bound holds).
    AttrStrict {
        /// Resolved attribute name (`None` = attribute unknown, never
        /// satisfiable).
        attr: Option<Sym>,
        /// The strict predicate.
        pred: AttrPred,
    },
}

/// One encoded relaxable (dropped) predicate.
pub struct RelaxablePred {
    /// The closure predicate.
    pub pred: Predicate,
    /// Its penalty `π(p)`.
    pub penalty: f64,
    /// Spec index of the node whose binding decides the check.
    pub owner: usize,
    /// The runtime check.
    pub check: BitCheck,
}

/// One original `contains` predicate with its relaxed placement.
pub struct ContainsSpec {
    /// Shared evaluation of the expression.
    pub eval: Arc<FtEval>,
    /// Predicate weight (1 by default).
    pub weight: f64,
    /// Spec index of the node the predicate was *originally* attached to.
    pub orig_owner: usize,
    /// Spec index of the node that must satisfy it in the relaxed query.
    pub holder: usize,
}

/// How an attribute predicate is enforced during matching.
#[derive(Debug, Clone)]
pub enum AttrMode {
    /// Must hold exactly.
    Strict,
    /// The slackened bound suffices (the strict bound is a relaxable bit).
    Slackened,
}

/// Match specification for one original query node.
pub struct NodeSpec {
    /// The stable variable.
    pub var: Var,
    /// Original query parent (spec index).
    pub parent: Option<usize>,
    /// Whether the node survives in the relaxed query (`false` = ghost).
    pub surviving: bool,
    /// Spec index of the node whose binding anchors candidate lookup
    /// (`None` only for the root). Always an original ancestor.
    pub anchor: Option<usize>,
    /// Required axis w.r.t. the anchor (ghosts always use `Descendant`).
    pub axis: Axis,
    /// Resolved tag (`None` = wildcard).
    pub tag: Option<Sym>,
    /// The node names a tag that does not occur in the document.
    pub tag_missing: bool,
    /// Additional acceptable tags (sibling subtypes from a [`TagHierarchy`]).
    pub alt_tags: Vec<Sym>,
    /// Attribute predicates with pre-resolved names and enforcement mode.
    pub attrs: Vec<(Option<Sym>, AttrPred, AttrMode)>,
    /// Contains-spec indices that must be satisfied at this node.
    pub required_contains: Vec<usize>,
    /// Relaxable-predicate indices owned by this node.
    pub bits: Vec<usize>,
}

/// A query with a prefix of the relaxation schedule encoded into it.
pub struct EncodedQuery {
    /// Attribute slackening in effect (None = strict attribute matching).
    pub attr_relax: Option<AttrRelaxation>,
    /// The user's original query.
    pub original: Tpq,
    /// The relaxed query actually being matched.
    pub relaxed: Tpq,
    /// One spec per original node, in original pre-order.
    pub specs: Vec<NodeSpec>,
    /// Encoded droppable predicates (≤ 64).
    pub relaxable: Vec<RelaxablePred>,
    /// For each relaxable predicate, the (0-based) schedule step that
    /// dropped it — used to derive a per-answer relaxation level.
    pub bit_step: Vec<usize>,
    /// Original `contains` predicates with relaxed holders.
    pub cspecs: Vec<ContainsSpec>,
    /// `Σ w` over the original structural predicates.
    pub base_ss: f64,
    /// `Σ π` over all encoded relaxable predicates.
    pub total_penalty: f64,
    /// Number of schedule steps encoded.
    pub relaxation_level: usize,
}

impl EncodedQuery {
    /// Encodes `original` with the first `steps.len()` schedule steps.
    /// Pass an empty slice for exact-match evaluation.
    pub fn build(
        ctx: &EngineContext,
        model: &PenaltyModel,
        original: &Tpq,
        steps: &[ScheduledStep],
    ) -> Self {
        Self::build_with(ctx, model, original, steps, None)
    }

    /// [`build_with`](Self::build_with) plus numeric attribute-bound
    /// slackening (the full set of Section 3.4 extensions).
    pub fn build_full(
        ctx: &EngineContext,
        model: &PenaltyModel,
        original: &Tpq,
        steps: &[ScheduledStep],
        hierarchy: Option<&TagHierarchy>,
        attr_relax: Option<AttrRelaxation>,
    ) -> Self {
        Self::build_full_budgeted(
            ctx,
            model,
            original,
            steps,
            hierarchy,
            attr_relax,
            &Budget::unlimited(),
        )
    }

    /// [`build_full`](Self::build_full) under a resource [`Budget`]: the
    /// full-text evaluations feeding the encoded plan are budgeted (and a
    /// tripped evaluation is never cached). Check [`Budget::tripped`] after
    /// building — an encoding constructed under a tripped budget may carry
    /// partial `contains` evaluations and must only serve a best-effort
    /// result.
    #[allow(clippy::too_many_arguments)]
    pub fn build_full_budgeted(
        ctx: &EngineContext,
        model: &PenaltyModel,
        original: &Tpq,
        steps: &[ScheduledStep],
        hierarchy: Option<&TagHierarchy>,
        attr_relax: Option<AttrRelaxation>,
        budget: &Budget,
    ) -> Self {
        let mut enc = Self::build_with_budget(ctx, model, original, steps, hierarchy, budget);
        let Some(relax) = attr_relax else { return enc };
        enc.attr_relax = Some(relax);
        for idx in 0..enc.specs.len() {
            if enc.relaxable.len() >= 64 {
                break;
            }
            let tag = enc.specs[idx].tag;
            let var = enc.specs[idx].var;
            let mut new_bits = Vec::new();
            for (attr_sym, pred, mode) in &mut enc.specs[idx].attrs {
                if relax.relaxed_pred(pred).is_none() {
                    continue; // non-numeric or non-slackenable: stays strict
                }
                *mode = AttrMode::Slackened;
                let penalty = relax.penalty(ctx, tag, *attr_sym, pred);
                let bi = enc.relaxable.len() + new_bits.len();
                new_bits.push((
                    bi,
                    RelaxablePred {
                        pred: Predicate::Attr(var, pred.clone()),
                        penalty,
                        owner: idx,
                        check: BitCheck::AttrStrict {
                            attr: *attr_sym,
                            pred: pred.clone(),
                        },
                    },
                ));
            }
            for (bi, rp) in new_bits {
                enc.specs[idx].bits.push(bi);
                enc.bit_step.push(usize::MAX);
                enc.total_penalty += rp.penalty;
                enc.relaxable.push(rp);
            }
        }
        assert!(enc.relaxable.len() <= 64);
        enc
    }

    /// [`build`](Self::build) plus the Section 3.4 tag-relaxation
    /// extension: nodes whose tag belongs to a declared type also match
    /// sibling subtypes, with the exact-tag predicate as one more
    /// relaxable bit.
    pub fn build_with(
        ctx: &EngineContext,
        model: &PenaltyModel,
        original: &Tpq,
        steps: &[ScheduledStep],
        hierarchy: Option<&TagHierarchy>,
    ) -> Self {
        Self::build_with_budget(ctx, model, original, steps, hierarchy, &Budget::unlimited())
    }

    fn build_with_budget(
        ctx: &EngineContext,
        model: &PenaltyModel,
        original: &Tpq,
        steps: &[ScheduledStep],
        hierarchy: Option<&TagHierarchy>,
        budget: &Budget,
    ) -> Self {
        let relaxed = steps
            .last()
            .map(|s| s.query.clone())
            .unwrap_or_else(|| original.clone());
        let idx_of_var = |v: Var| -> usize {
            match original.index_of(v) {
                Some(i) => i,
                // Relaxation operators never invent variables; a miss here
                // is an engine bug, not reachable from user input.
                // lint:allow(panic): internal invariant — every relaxation
                // step rewrites edges over the original variable set.
                None => unreachable!("relaxed query variable missing from original"),
            }
        };

        // Node specs.
        let mut specs: Vec<NodeSpec> = original
            .nodes()
            .iter()
            .enumerate()
            .map(|(idx, node)| {
                let _ = idx;
                let ridx_opt = relaxed.index_of(node.var);
                let surviving = ridx_opt.is_some();
                let (anchor, axis) = if let Some(ridx) = ridx_opt {
                    match relaxed.node(ridx).parent {
                        Some(rp) => (
                            Some(idx_of_var(relaxed.node(rp).var)),
                            relaxed.node(ridx).axis,
                        ),
                        None => (None, Axis::Child),
                    }
                } else {
                    // Ghost: anchored at the nearest surviving original
                    // ancestor, descendant axis (the loosest edge — the
                    // bits grade how well the original edges are met).
                    let mut cur = node.parent;
                    let mut found = None;
                    while let Some(p) = cur {
                        if relaxed.index_of(original.node(p).var).is_some() {
                            found = Some(p);
                            break;
                        }
                        cur = original.node(p).parent;
                    }
                    (found, Axis::Descendant)
                };
                let tag = node.tag.as_deref().map(|t| ctx.resolve_tag(t));
                let (tag_sym, tag_missing) = match tag {
                    Some(Some(sym)) => (Some(sym), false),
                    Some(None) => (None, true),
                    None => (None, false),
                };
                let attrs = node
                    .attrs
                    .iter()
                    .map(|a| (ctx.resolve_tag(&a.name), a.clone(), AttrMode::Strict))
                    .collect();
                NodeSpec {
                    var: node.var,
                    parent: node.parent,
                    surviving,
                    anchor,
                    axis,
                    tag: tag_sym,
                    tag_missing,
                    alt_tags: Vec::new(),
                    attrs,
                    required_contains: Vec::new(),
                    bits: Vec::new(),
                }
            })
            .collect();

        // Contains specs: original owners and relaxed holders.
        let mut cspecs: Vec<ContainsSpec> = Vec::new();
        for (idx, node) in original.nodes().iter().enumerate() {
            for expr in &node.contains {
                // Walk up the ORIGINAL ancestor chain (self first) to find
                // the surviving node holding the expression in the relaxed
                // query.
                let mut holder = None;
                let mut cur = Some(idx);
                while let Some(i) = cur {
                    if let Some(r) = relaxed.index_of(original.node(i).var) {
                        if relaxed.node(r).contains.contains(expr) {
                            holder = Some(i);
                            break;
                        }
                    }
                    cur = original.node(i).parent;
                }
                let holder = holder.unwrap_or(idx);
                let ci = cspecs.len();
                cspecs.push(ContainsSpec {
                    eval: ctx.ft_eval_budgeted(expr, budget),
                    weight: model
                        .weights()
                        .weight(&Predicate::Contains(node.var, expr.clone())),
                    orig_owner: idx,
                    holder,
                });
                specs[holder].required_contains.push(ci);
            }
        }

        // Relaxable predicates from the schedule prefix.
        let mut relaxable: Vec<RelaxablePred> = Vec::new();
        let mut bit_step: Vec<usize> = Vec::new();
        for (si, step) in steps.iter().enumerate() {
            for (pred, penalty) in &step.new_dropped {
                let (owner, check) = match pred {
                    Predicate::Pc(x, y) => (idx_of_var(*y), BitCheck::PcFrom(idx_of_var(*x))),
                    Predicate::Ad(x, y) => (idx_of_var(*y), BitCheck::AdFrom(idx_of_var(*x))),
                    Predicate::Contains(v, e) => (
                        idx_of_var(*v),
                        BitCheck::ContainsHere(ctx.ft_eval_budgeted(e, budget)),
                    ),
                    Predicate::Tag(..) | Predicate::Attr(..) => continue,
                };
                let bi = relaxable.len();
                specs[owner].bits.push(bi);
                bit_step.push(si);
                relaxable.push(RelaxablePred {
                    pred: pred.clone(),
                    penalty: *penalty,
                    owner,
                    check,
                });
            }
        }
        // Tag relaxation (hierarchy extension): widen the acceptable tag
        // set and add an exact-tag bit per hierarchy-typed node.
        if let Some(h) = hierarchy {
            for (idx, node) in original.nodes().iter().enumerate() {
                if relaxable.len() >= 64 {
                    break;
                }
                let Some(tag) = node.tag.as_deref() else {
                    continue;
                };
                let Some(siblings) = h.siblings(tag) else {
                    continue;
                };
                let alt: Vec<Sym> = siblings
                    .iter()
                    .filter(|m| &***m != tag)
                    .filter_map(|m| ctx.resolve_tag(m))
                    .collect();
                if alt.is_empty() {
                    continue;
                }
                let own_count = ctx
                    .resolve_tag(tag)
                    .map(|sym| ctx.stats().tag_count(sym))
                    .unwrap_or(0);
                let member_total: u64 = own_count
                    + alt
                        .iter()
                        .map(|&sym| ctx.stats().tag_count(sym))
                        .sum::<u64>();
                if member_total == 0 {
                    continue;
                }
                // A tag whose subtype dominates its supertype gains little
                // by relaxing — penalty close to the full weight.
                let penalty = (own_count as f64 / member_total as f64).clamp(0.0, 1.0) * h.weight();
                // The node may now match sibling tags even though its own
                // tag resolved to nothing.
                specs[idx].alt_tags = alt;
                specs[idx].tag_missing = false;
                let bi = relaxable.len();
                specs[idx].bits.push(bi);
                bit_step.push(usize::MAX); // extension bit, not a schedule step
                let check = match specs[idx].tag {
                    Some(sym) => BitCheck::TagIs(sym),
                    // Tag absent from the document: the exact-tag predicate
                    // can never be satisfied; encode an impossible check.
                    None => BitCheck::TagIs(Sym(u32::MAX)),
                };
                relaxable.push(RelaxablePred {
                    pred: Predicate::Tag(node.var, tag.into()),
                    penalty,
                    owner: idx,
                    check,
                });
            }
        }
        assert!(
            relaxable.len() <= 64,
            "schedule construction caps droppable predicates at 64"
        );
        let total_penalty = relaxable.iter().map(|r| r.penalty).sum();

        EncodedQuery {
            attr_relax: None,
            base_ss: model.base_structural_score(original),
            original: original.clone(),
            relaxed,
            specs,
            relaxable,
            bit_step,
            cspecs,
            total_penalty,
            relaxation_level: steps.len(),
        }
    }

    /// Exact-match encoding (no relaxation).
    pub fn exact(ctx: &EngineContext, model: &PenaltyModel, query: &Tpq) -> Self {
        Self::build(ctx, model, query, &[])
    }

    /// Spec index of the distinguished node.
    pub fn distinguished_spec(&self) -> usize {
        self.original.distinguished()
    }

    /// Renders the encoded plan in the spirit of the paper's Figure 8:
    /// one line per query node showing its match condition, optionality,
    /// encoded relaxable predicates, and required contains.
    pub fn describe(&self, ctx: &EngineContext) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "encoded plan: {} node(s), {} relaxable predicate(s), base ss {:.3}, max penalty {:.3}",
            self.specs.len(),
            self.relaxable.len(),
            self.base_ss,
            self.total_penalty
        );
        let children = self.children_lists();
        let mut stack = vec![(0usize, 0usize)];
        while let Some((idx, depth)) = stack.pop() {
            let spec = &self.specs[idx];
            let tag = spec
                .tag
                .map(|s| ctx.doc().symbols().name(s).to_string())
                .unwrap_or_else(|| {
                    if spec.tag_missing {
                        "<missing>".into()
                    } else {
                        "*".into()
                    }
                });
            let role = if !spec.surviving {
                "ghost"
            } else if spec.parent.is_none() {
                "root"
            } else {
                match spec.axis {
                    flexpath_tpq::Axis::Child => "pc",
                    flexpath_tpq::Axis::Descendant => "ad",
                }
            };
            let _ = write!(out, "{}{} {tag} [{role}]", "  ".repeat(depth), spec.var);
            if !spec.alt_tags.is_empty() {
                let alts: Vec<&str> = spec
                    .alt_tags
                    .iter()
                    .map(|&a| ctx.doc().symbols().name(a))
                    .collect();
                let _ = write!(out, " | {}", alts.join("|"));
            }
            for &ci in &spec.required_contains {
                let _ = write!(out, " requires contains#{ci}");
            }
            for &bi in &spec.bits {
                let r = &self.relaxable[bi];
                let _ = write!(out, "  [bit {bi}: {} π={:.3}]", r.pred, r.penalty);
            }
            let _ = writeln!(out);
            for &c in children[idx].iter().rev() {
                stack.push((c, depth + 1));
            }
        }
        out
    }

    /// Children lists of the original query tree (per spec index).
    pub fn children_lists(&self) -> Vec<Vec<usize>> {
        let mut lists = vec![Vec::new(); self.specs.len()];
        for (idx, spec) in self.specs.iter().enumerate() {
            if let Some(p) = spec.parent {
                lists[p].push(idx);
            }
        }
        lists
    }

    /// The same child lists in one contiguous arena ([`ChildIndex`]) — the
    /// evaluator's hot loops read ranges of it instead of cloning a
    /// per-spec `Vec` for every candidate visited.
    pub fn child_index(&self) -> ChildIndex {
        let n = self.specs.len();
        let mut offsets = vec![0usize; n + 1];
        for spec in &self.specs {
            if let Some(p) = spec.parent {
                offsets[p + 1] += 1;
            }
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut list = vec![0usize; offsets[n]];
        // Specs are visited in index (= original-tree) order, so each
        // parent's slice stays in tree order, like `children_lists`.
        for (idx, spec) in self.specs.iter().enumerate() {
            if let Some(p) = spec.parent {
                list[cursor[p]] = idx;
                cursor[p] += 1;
            }
        }
        ChildIndex { offsets, list }
    }
}

/// Contiguous (CSR-style) layout of the original query tree's child lists:
/// one shared arena plus per-spec offset ranges. Built once per evaluator;
/// walking a node's children is then a range read with no allocation —
/// the per-candidate `Vec` clone this replaced dominated the evaluator's
/// allocator traffic on large documents.
#[derive(Debug, Clone)]
pub struct ChildIndex {
    /// `offsets[i]..offsets[i + 1]` indexes `list` for spec `i`'s children.
    offsets: Vec<usize>,
    /// Child spec indices, grouped by parent, in original-tree order.
    list: Vec<usize>,
}

impl ChildIndex {
    /// Arena range holding spec `idx`'s children (resolve with
    /// [`ChildIndex::at`]).
    pub fn range(&self, idx: usize) -> std::ops::Range<usize> {
        self.offsets[idx]..self.offsets[idx + 1]
    }

    /// The child spec index stored at arena position `i`.
    pub fn at(&self, i: usize) -> usize {
        self.list[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::build_schedule;
    use crate::score::WeightAssignment;
    use flexpath_ftsearch::FtExpr;
    use flexpath_tpq::TpqBuilder;
    use flexpath_xmldom::parse;

    const DOC: &str = "<site><article><section><algorithm>x</algorithm>\
        <paragraph>XML streaming</paragraph></section></article>\
        <article><section><wrap><paragraph>XML streaming</paragraph></wrap>\
        </section></article></site>";

    fn q1() -> Tpq {
        let mut b = TpqBuilder::new("article");
        let s = b.child(0, "section");
        let _a = b.child(s, "algorithm");
        let p = b.child(s, "paragraph");
        b.add_contains(p, FtExpr::all_of(&["XML", "streaming"]));
        b.build()
    }

    fn setup() -> (EngineContext, PenaltyModel, Tpq) {
        let q = q1();
        let ctx = EngineContext::new(parse(DOC).unwrap());
        let model = PenaltyModel::new(&q, WeightAssignment::uniform());
        (ctx, model, q)
    }

    #[test]
    fn exact_encoding_has_no_relaxable_predicates() {
        let (ctx, model, q) = setup();
        let enc = EncodedQuery::exact(&ctx, &model, &q);
        assert!(enc.relaxable.is_empty());
        assert_eq!(enc.total_penalty, 0.0);
        assert_eq!(enc.base_ss, 3.0);
        assert_eq!(enc.cspecs.len(), 1);
        // Contains stays at its original owner.
        assert_eq!(enc.cspecs[0].orig_owner, enc.cspecs[0].holder);
        assert!(enc.specs.iter().all(|s| s.surviving));
    }

    #[test]
    fn full_encoding_tracks_ghosts_and_holders() {
        let (ctx, model, q) = setup();
        let steps = build_schedule(&ctx, &model, &q, 64);
        let enc = EncodedQuery::build(&ctx, &model, &q, &steps);
        // Fully relaxed: only the root survives.
        assert_eq!(enc.relaxed.node_count(), 1);
        assert_eq!(
            enc.specs.iter().filter(|s| !s.surviving).count(),
            3,
            "section, algorithm, paragraph become ghosts"
        );
        // The contains predicate is now held by the root.
        assert_eq!(enc.cspecs[0].holder, 0);
        assert_eq!(enc.cspecs[0].orig_owner, 3);
        assert!(enc.specs[0].required_contains.contains(&0));
        // Every ghost anchors at the (surviving) root.
        for s in enc.specs.iter().filter(|s| !s.surviving) {
            assert_eq!(s.anchor, Some(0));
            assert_eq!(s.axis, Axis::Descendant);
        }
        assert!(enc.total_penalty > 0.0);
        assert_eq!(enc.relaxation_level, steps.len());
    }

    #[test]
    fn bit_owners_match_predicate_child_endpoints() {
        let (ctx, model, q) = setup();
        let steps = build_schedule(&ctx, &model, &q, 64);
        let enc = EncodedQuery::build(&ctx, &model, &q, &steps);
        for (bi, r) in enc.relaxable.iter().enumerate() {
            assert!(
                enc.specs[r.owner].bits.contains(&bi),
                "bit {bi} not registered with its owner"
            );
            match (&r.pred, &r.check) {
                (Predicate::Pc(x, y), BitCheck::PcFrom(xi)) => {
                    assert_eq!(enc.specs[*xi].var, *x);
                    assert_eq!(enc.specs[r.owner].var, *y);
                }
                (Predicate::Ad(x, y), BitCheck::AdFrom(xi)) => {
                    assert_eq!(enc.specs[*xi].var, *x);
                    assert_eq!(enc.specs[r.owner].var, *y);
                }
                (Predicate::Contains(v, _), BitCheck::ContainsHere(_)) => {
                    assert_eq!(enc.specs[r.owner].var, *v);
                }
                other => panic!("inconsistent pred/check pairing: {:?}", other.0),
            }
        }
    }

    #[test]
    fn partial_prefix_encodes_partial_relaxation() {
        let (ctx, model, q) = setup();
        let steps = build_schedule(&ctx, &model, &q, 64);
        let enc1 = EncodedQuery::build(&ctx, &model, &q, &steps[..1]);
        let enc_all = EncodedQuery::build(&ctx, &model, &q, &steps);
        assert!(enc1.relaxable.len() < enc_all.relaxable.len());
        assert!(enc1.total_penalty < enc_all.total_penalty);
        assert_eq!(enc1.relaxation_level, 1);
    }

    #[test]
    fn unknown_tags_are_flagged() {
        let mut b = TpqBuilder::new("article");
        b.child(0, "nonexistent");
        let q = b.build();
        let ctx = EngineContext::new(parse(DOC).unwrap());
        let model = PenaltyModel::new(&q, WeightAssignment::uniform());
        let enc = EncodedQuery::exact(&ctx, &model, &q);
        assert!(enc.specs[1].tag_missing);
        assert!(!enc.specs[0].tag_missing);
    }

    #[test]
    fn children_lists_mirror_original_tree() {
        let (ctx, model, q) = setup();
        let enc = EncodedQuery::exact(&ctx, &model, &q);
        let lists = enc.children_lists();
        assert_eq!(lists[0], vec![1]);
        assert_eq!(lists[1], vec![2, 3]);
        assert!(lists[2].is_empty() && lists[3].is_empty());
    }
}
