//! Dependency-free observability: a process-wide metrics registry and
//! per-query hierarchical trace spans.
//!
//! The paper's evaluation (Section 6) reasons about per-algorithm *work* —
//! evaluations, intermediate answers, pruning — and tree-pattern surveys
//! compare algorithms on materialized-intermediate-result counts. This
//! module makes those quantities readable off any run, two ways:
//!
//! * [`MetricsRegistry`] — process-wide counters and log₂-bucketed duration
//!   histograms, shared by every query in the process (the [`global`]
//!   registry lives for the process lifetime). Cheap enough for hot paths:
//!   a pre-interned counter handle is one relaxed `fetch_add`.
//! * [`QueryTrace`] — a per-query tree of timed [`TraceSpan`]s built by a
//!   [`Tracer`], carried on `TopKResult` when the caller opts in. Each span
//!   holds a duration plus named counters.
//!
//! ## Determinism of counters
//!
//! Trace *counters* double as a regression tripwire for the parallel
//! determinism contract: wherever the engine guarantees thread-count
//! invariant work (index-ordered fan-out merge, round-ordered DPO commits),
//! the corresponding counters are byte-identical across `--threads` values.
//! Quantities that legitimately vary with scheduling — cache hit/miss
//! splits (two racing threads may both miss the same key), postings scanned
//! through that cache, per-worker attribution — are namespaced under the
//! [`ND_PREFIX`] (`nd.`) and excluded, together with all wall-clock
//! durations, from [`QueryTrace::counter_fingerprint`]. A fingerprint
//! comparison across thread counts therefore checks exactly the
//! deterministic contract, nothing weaker and nothing flaky.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// Key prefix for counters that legitimately vary with thread scheduling
/// (cache races, per-worker attribution). Excluded from
/// [`QueryTrace::counter_fingerprint`].
pub const ND_PREFIX: &str = "nd.";

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Number of log₂ histogram buckets: bucket `i` counts observations whose
/// microsecond value has bit-length `i` (i.e. `2^(i-1) ≤ v < 2^i`, with
/// bucket 0 holding zeros).
const HISTOGRAM_BUCKETS: usize = 40;

/// A log₂-bucketed histogram of durations, recorded in microseconds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }

    /// Records one duration.
    pub fn observe(&self, d: Duration) {
        self.observe_value(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one raw integer observation. Durations land here as
    /// microseconds; dimensionless series (e.g. `engine.skew.*` millibit
    /// ratios) use the same log₂ bucketing over their own unit.
    pub fn observe_value(&self, v: u64) {
        let bucket = (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then(|| {
                        let upper = if i == 0 { 0 } else { (1u64 << i) - 1 };
                        (upper, n)
                    })
                })
                .collect(),
        }
    }
}

/// Point-in-time copy of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values, in microseconds.
    pub sum_micros: u64,
    /// Non-empty buckets as `(inclusive upper bound in µs, count)`.
    pub buckets: Vec<(u64, u64)>,
}

/// Process-wide registry of named counters and duration histograms.
///
/// Counter handles are interned [`Arc<AtomicU64>`]s: resolve once with
/// [`MetricsRegistry::counter`], then bump with a relaxed `fetch_add` in
/// hot loops. The registry never forgets a name; its memory is bounded by
/// the (static) set of instrumentation sites.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

/// The process-wide registry. Lives for the process lifetime; every query
/// in the process accumulates into it.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::default)
}

impl MetricsRegistry {
    /// A fresh, empty registry (tests; production code uses [`global`]).
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    // Metric maps hold only monotone atomics, so a panic while holding the
    // write lock cannot leave them logically inconsistent.
    fn read<'a, T>(lock: &'a RwLock<T>) -> std::sync::RwLockReadGuard<'a, T> {
        lock.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write<'a, T>(lock: &'a RwLock<T>) -> std::sync::RwLockWriteGuard<'a, T> {
        lock.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns the interned counter named `name`, creating it at zero.
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        if let Some(c) = Self::read(&self.counters).get(name) {
            return c.clone();
        }
        Self::write(&self.counters)
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone()
    }

    /// Adds `n` to the counter named `name` (interning it if new).
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).fetch_add(n, Ordering::Relaxed);
    }

    /// Returns the interned histogram named `name`, creating it empty.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = Self::read(&self.histograms).get(name) {
            return h.clone();
        }
        Self::write(&self.histograms)
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Records `d` into the histogram named `name`.
    pub fn observe_duration(&self, name: &str, d: Duration) {
        self.histogram(name).observe(d);
    }

    /// Records a raw integer observation into the histogram named `name`.
    pub fn observe_value(&self, name: &str, v: u64) {
        self.histogram(name).observe_value(v);
    }

    /// Records one estimate-vs-actual observation for `algo` (e.g. `"dpo"`)
    /// under the `engine.skew.*` namespace: the absolute log₂-ratio skew in
    /// millibits goes into a histogram, and the sign of the divergence bumps
    /// an `over` / `under` / `exact` counter. See [`skew_millibits`].
    pub fn record_skew(&self, algo: &str, estimated: f64, observed: u64) {
        let mb = skew_millibits(estimated, observed);
        self.observe_value(&format!("engine.skew.{algo}.millibits"), mb.unsigned_abs());
        let sign = match mb.cmp(&0) {
            std::cmp::Ordering::Greater => "over",
            std::cmp::Ordering::Less => "under",
            std::cmp::Ordering::Equal => "exact",
        };
        self.add(&format!("engine.skew.{algo}.{sign}"), 1);
    }

    /// Point-in-time copy of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: Self::read(&self.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            histograms: Self::read(&self.histograms)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as aligned `name value` lines, histograms as
    /// `name count/mean-µs` plus their non-empty buckets.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let mean = h.sum_micros.checked_div(h.count).unwrap_or(0);
            out.push_str(&format!(
                "{name} count={} sum_us={} mean_us={mean}\n",
                h.count, h.sum_micros
            ));
            for (upper, n) in &h.buckets {
                out.push_str(&format!("  le_us={upper} {n}\n"));
            }
        }
        out
    }

    /// Renders the snapshot as a JSON object (hand-rolled; the workspace
    /// deliberately takes no serialization dependency).
    ///
    /// Shape (snapshot schema 2 — the bump is made here and nowhere else):
    /// the top level gains `"schema"` and `"bucket_scheme"` keys, and each
    /// histogram carries its bucket *boundaries* explicitly as
    /// `[upper_inclusive, count]` pairs plus a `"mean"` convenience field,
    /// so consumers never hardcode the log₂ bucketing. Schema 1 readers
    /// (which only looked up `counters` / `histograms` / `count` / `sum_us`
    /// / `buckets`) parse schema 2 unchanged.
    pub fn render_json(&self) -> String {
        let mut out =
            String::from("{\"schema\":2,\"bucket_scheme\":\"log2-upper-inclusive\",\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{v}", json_string(name)));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mean = h.sum_micros.checked_div(h.count).unwrap_or(0);
            out.push_str(&format!(
                "{}:{{\"count\":{},\"sum_us\":{},\"mean\":{mean},\"buckets\":[",
                json_string(name),
                h.count,
                h.sum_micros
            ));
            for (j, (upper, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{upper},{n}]"));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): counters as `# TYPE <name> counter` plus one sample
    /// line, histograms as cumulative `<name>_bucket{le="..."}` series
    /// ending in `le="+Inf"`, followed by `<name>_sum` and `<name>_count`.
    /// Names are passed through [`prometheus_name`]; histogram units stay
    /// whatever the series records (microseconds for durations, millibits
    /// for `engine.skew.*`).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prometheus_name(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let n = prometheus_name(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cumulative = 0u64;
            for (upper, count) in &h.buckets {
                cumulative += count;
                out.push_str(&format!("{n}_bucket{{le=\"{upper}\"}} {cumulative}\n"));
            }
            // A racing observe() can bump `count` between bucket loads; keep
            // the +Inf bucket monotone per the exposition-format contract.
            let total = cumulative.max(h.count);
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {total}\n"));
            out.push_str(&format!("{n}_sum {}\n{n}_count {total}\n", h.sum_micros));
        }
        out
    }
}

/// Sanitizes `name` for Prometheus exposition: characters outside
/// `[a-zA-Z0-9_:]` map to `_`, and a leading digit gets a `_` prefix. The
/// registry's dotted lowercase naming convention (enforced by
/// `flexpath-lint`'s metrics-name rule) keeps this mapping injective in
/// practice — distinct registry names never collide after sanitization.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if out.is_empty() && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Signed log₂ ratio of `estimated` to `observed` cardinality, in
/// *millibits* (thousandths of a doubling): positive when the estimator
/// overshot, negative when it undershot, `0` on exact agreement. Both sides
/// are shifted by `+1` so empty results and zero estimates stay finite.
/// This is the aggregation unit for the `engine.skew.*` histograms and the
/// per-op skew column in EXPLAIN ANALYZE.
pub fn skew_millibits(estimated: f64, observed: u64) -> i64 {
    let est = estimated.max(0.0) + 1.0;
    let obs = observed as f64 + 1.0;
    ((est / obs).log2() * 1000.0).round() as i64
}

// ---------------------------------------------------------------------------
// Per-query trace
// ---------------------------------------------------------------------------

/// One timed node of a [`QueryTrace`]: a name, a wall-clock duration, named
/// counters, and child spans in execution order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceSpan {
    /// Span name (e.g. `"schedule"`, `"round[3] op=del_pred"`).
    pub name: String,
    /// Wall-clock time spent in this span (includes children).
    pub duration: Duration,
    /// Named event counters recorded while this span was current.
    pub counters: BTreeMap<String, u64>,
    /// Child spans, in the order the engine committed them.
    pub children: Vec<TraceSpan>,
}

impl TraceSpan {
    /// A fresh span with zero duration and no counters.
    pub fn new(name: impl Into<String>) -> Self {
        TraceSpan {
            name: name.into(),
            ..TraceSpan::default()
        }
    }

    /// Adds `n` to this span's counter `key`.
    pub fn add(&mut self, key: &str, n: u64) {
        *self.counters.entry(key.to_string()).or_insert(0) += n;
    }

    /// Depth-first search for the first span whose name equals `name`
    /// (this span included).
    pub fn find(&self, name: &str) -> Option<&TraceSpan> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Sum of counter `key` over this span and all descendants.
    pub fn total(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
            + self.children.iter().map(|c| c.total(key)).sum::<u64>()
    }

    fn render_text_into(&self, depth: usize, out: &mut String) {
        let indent = "  ".repeat(depth);
        out.push_str(&format!(
            "{indent}{} [{:.3} ms]",
            self.name,
            self.duration.as_secs_f64() * 1e3
        ));
        for (k, v) in &self.counters {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
        for c in &self.children {
            c.render_text_into(depth + 1, out);
        }
    }

    fn render_json_into(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"name\":{},\"duration_us\":{},\"counters\":{{",
            json_string(&self.name),
            self.duration.as_micros()
        ));
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{v}", json_string(k)));
        }
        out.push_str("},\"children\":[");
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            c.render_json_into(out);
        }
        out.push_str("]}");
    }

    fn fingerprint_into(&self, path: &str, out: &mut String) {
        let here = if path.is_empty() {
            self.name.clone()
        } else {
            format!("{path}>{}", self.name)
        };
        out.push_str(&here);
        for (k, v) in &self.counters {
            if !k.starts_with(ND_PREFIX) {
                out.push_str(&format!(" {k}={v}"));
            }
        }
        out.push('\n');
        for c in &self.children {
            c.fingerprint_into(&here, out);
        }
    }
}

/// The full trace of one query execution: a tree of [`TraceSpan`]s rooted
/// at the algorithm's top-level span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTrace {
    /// Top-level span covering the whole execution.
    pub root: TraceSpan,
}

impl QueryTrace {
    /// Renders the span tree as indented text with durations and counters.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        self.root.render_text_into(0, &mut out);
        out
    }

    /// Renders the span tree as JSON (hand-rolled, no dependencies).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        self.root.render_json_into(&mut out);
        out
    }

    /// Deterministic digest of the trace: span tree shape plus every
    /// counter, *excluding* wall-clock durations and counters under
    /// [`ND_PREFIX`]. Byte-identical across `--threads` values wherever the
    /// engine guarantees deterministic work.
    pub fn counter_fingerprint(&self) -> String {
        let mut out = String::new();
        self.root.fingerprint_into("", &mut out);
        out
    }

    /// Depth-first search for the first span named `name`.
    pub fn find(&self, name: &str) -> Option<&TraceSpan> {
        self.root.find(name)
    }

    /// Sum of counter `key` over the whole tree.
    pub fn total(&self, key: &str) -> u64 {
        self.root.total(key)
    }
}

/// Builder for a [`QueryTrace`]. A disabled tracer (the default for
/// untraced queries) makes every call a no-op, so instrumentation costs
/// nothing unless the caller opted in.
///
/// The tracer is deliberately `!Sync`-by-use: all spans are opened and
/// closed on the thread driving the algorithm. Worker threads measure
/// their own work into plain [`TraceSpan`] values (or counter structs) and
/// the driver [`attach`es](Tracer::attach) them at commit time — which is
/// also what keeps the span tree identical at every thread count.
#[derive(Debug)]
pub struct Tracer {
    /// Open spans, root first. Empty means tracing is disabled.
    frames: Vec<Frame>,
}

#[derive(Debug)]
struct Frame {
    span: TraceSpan,
    started: Instant,
}

impl Tracer {
    /// A tracer that records nothing.
    pub fn disabled() -> Self {
        Tracer { frames: Vec::new() }
    }

    /// A tracer recording into a root span named `root`.
    pub fn enabled(root: &str) -> Self {
        Tracer {
            frames: vec![Frame {
                span: TraceSpan::new(root),
                // lint:allow(determinism): span durations are display-only;
                // fingerprint() skips duration fields.
                started: Instant::now(),
            }],
        }
    }

    /// Whether this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        !self.frames.is_empty()
    }

    /// Opens a child span of the current span.
    pub fn begin(&mut self, name: &str) {
        if self.is_enabled() {
            self.frames.push(Frame {
                span: TraceSpan::new(name),
                // lint:allow(determinism): span durations are display-only;
                // fingerprint() skips duration fields.
                started: Instant::now(),
            });
        }
    }

    /// Closes the current span, attaching it to its parent. Closing the
    /// root is a no-op ([`finish`](Tracer::finish) closes it).
    pub fn end(&mut self) {
        if self.frames.len() > 1 {
            if let Some(mut frame) = self.frames.pop() {
                frame.span.duration = frame.started.elapsed();
                if let Some(parent) = self.frames.last_mut() {
                    parent.span.children.push(frame.span);
                }
            }
        }
    }

    /// Adds `n` to counter `key` on the current span.
    pub fn add(&mut self, key: &str, n: u64) {
        if let Some(frame) = self.frames.last_mut() {
            frame.span.add(key, n);
        }
    }

    /// Adds `n` to counter `key` on the *root* span (whole-query totals).
    pub fn add_root(&mut self, key: &str, n: u64) {
        if let Some(frame) = self.frames.first_mut() {
            frame.span.add(key, n);
        }
    }

    /// Attaches a prebuilt span (e.g. measured on a worker thread) as a
    /// child of the current span.
    pub fn attach(&mut self, span: TraceSpan) {
        if let Some(frame) = self.frames.last_mut() {
            frame.span.children.push(span);
        }
    }

    /// Records the first governor trip observed by this query: counters
    /// `governor.trip.site.<site>` and `governor.trip.reason.<reason>` on
    /// the root span. Later calls are ignored (first observer wins, mirroring
    /// the budget's own latch).
    pub fn record_trip(&mut self, site: &str, reason: &str) {
        if let Some(frame) = self.frames.first_mut() {
            let already = frame
                .span
                .counters
                .keys()
                .any(|k| k.starts_with("governor.trip.site."));
            if !already {
                frame.span.add(&format!("governor.trip.site.{site}"), 1);
                frame.span.add(&format!("governor.trip.reason.{reason}"), 1);
            }
        }
    }

    /// Closes every open span and returns the finished trace (`None` when
    /// the tracer was disabled).
    pub fn finish(mut self) -> Option<QueryTrace> {
        while self.frames.len() > 1 {
            self.end();
        }
        self.frames.pop().map(|mut frame| {
            frame.span.duration = frame.started.elapsed();
            QueryTrace { root: frame.span }
        })
    }
}

// ---------------------------------------------------------------------------
// JSON helpers
// ---------------------------------------------------------------------------

/// Quotes and escapes `s` as a JSON string literal.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_counters_accumulate_and_snapshot() {
        let reg = MetricsRegistry::new();
        reg.add("engine.join.calls", 2);
        let handle = reg.counter("engine.join.calls");
        handle.fetch_add(3, Ordering::Relaxed);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("engine.join.calls"), Some(&5));
        assert!(snap.render_text().contains("engine.join.calls 5"));
        assert!(snap.render_json().contains("\"engine.join.calls\":5"));
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let reg = MetricsRegistry::new();
        reg.observe_duration("q", Duration::from_micros(0));
        reg.observe_duration("q", Duration::from_micros(1));
        reg.observe_duration("q", Duration::from_micros(3));
        reg.observe_duration("q", Duration::from_micros(1000));
        let snap = reg.snapshot();
        let h = snap.histograms.get("q").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.sum_micros, 1004);
        // 0 → bucket 0 (upper 0); 1 → bucket 1 (upper 1); 3 → bucket 2
        // (upper 3); 1000 → bucket 10 (upper 1023).
        assert_eq!(h.buckets, vec![(0, 1), (1, 1), (3, 1), (1023, 1)]);
    }

    #[test]
    fn tracer_builds_nested_spans() {
        let mut t = Tracer::enabled("query");
        t.add("k", 1);
        t.begin("schedule");
        t.add("schedule.steps", 7);
        t.end();
        t.begin("round[0]");
        t.attach(TraceSpan::new("eval"));
        t.end();
        let trace = t.finish().unwrap();
        assert_eq!(trace.root.name, "query");
        assert_eq!(trace.root.children.len(), 2);
        assert_eq!(
            trace
                .find("schedule")
                .unwrap()
                .counters
                .get("schedule.steps"),
            Some(&7)
        );
        assert!(trace.find("eval").is_some());
        assert_eq!(trace.total("k"), 1);
        assert!(trace.render_text().contains("schedule.steps=7"));
        assert!(trace.render_json().contains("\"schedule.steps\":7"));
    }

    #[test]
    fn disabled_tracer_is_a_noop() {
        let mut t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.begin("x");
        t.add("k", 1);
        t.end();
        assert!(t.finish().is_none());
    }

    #[test]
    fn end_never_pops_the_root() {
        let mut t = Tracer::enabled("query");
        t.end();
        t.end();
        t.add("still.here", 1);
        let trace = t.finish().unwrap();
        assert_eq!(trace.root.counters.get("still.here"), Some(&1));
    }

    #[test]
    fn fingerprint_excludes_durations_and_nd_counters() {
        let mut a = Tracer::enabled("query");
        a.add("det", 5);
        a.add("nd.cache.hits", 100);
        a.begin("pass");
        a.add("pruned", 2);
        a.end();
        let fa = a.finish().unwrap().counter_fingerprint();

        let mut b = Tracer::enabled("query");
        b.add("det", 5);
        b.add("nd.cache.hits", 7); // different nd value, same fingerprint
        b.begin("pass");
        std::thread::sleep(Duration::from_millis(2)); // different duration
        b.add("pruned", 2);
        b.end();
        let fb = b.finish().unwrap().counter_fingerprint();

        assert_eq!(fa, fb);
        assert!(fa.contains("det=5"));
        assert!(!fa.contains("nd.cache.hits"));
        assert!(fa.contains("query>pass pruned=2"));
    }

    #[test]
    fn record_trip_latches_first_site() {
        let mut t = Tracer::enabled("query");
        t.record_trip("dpo_round", "deadline");
        t.record_trip("ft_eval", "deadline");
        let trace = t.finish().unwrap();
        assert_eq!(
            trace.root.counters.get("governor.trip.site.dpo_round"),
            Some(&1)
        );
        assert_eq!(
            trace.root.counters.get("governor.trip.reason.deadline"),
            Some(&1)
        );
        assert!(!trace
            .root
            .counters
            .contains_key("governor.trip.site.ft_eval"));
    }

    #[test]
    fn observe_value_shares_bucketing_with_durations() {
        let reg = MetricsRegistry::new();
        reg.observe_value("engine.skew.dpo.millibits", 0);
        reg.observe_value("engine.skew.dpo.millibits", 3);
        reg.observe_value("engine.skew.dpo.millibits", 1000);
        let snap = reg.snapshot();
        let h = snap.histograms.get("engine.skew.dpo.millibits").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum_micros, 1003);
        assert_eq!(h.buckets, vec![(0, 1), (3, 1), (1023, 1)]);
    }

    #[test]
    fn skew_millibits_sign_and_magnitude() {
        assert_eq!(skew_millibits(0.0, 0), 0); // 1/1
        assert_eq!(skew_millibits(7.0, 7), 0); // exact agreement
        assert_eq!(skew_millibits(3.0, 1), 1000); // 4/2 = one doubling over
        assert_eq!(skew_millibits(1.0, 3), -1000); // one doubling under
        assert_eq!(skew_millibits(1023.0, 0), 10_000); // 1024/1
        assert!(skew_millibits(-5.0, 0) == 0); // negative estimates clamp
    }

    #[test]
    fn record_skew_feeds_histogram_and_sign_counters() {
        let reg = MetricsRegistry::new();
        reg.record_skew("sso", 3.0, 1);
        reg.record_skew("sso", 1.0, 3);
        reg.record_skew("sso", 4.0, 4);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("engine.skew.sso.over"), Some(&1));
        assert_eq!(snap.counters.get("engine.skew.sso.under"), Some(&1));
        assert_eq!(snap.counters.get("engine.skew.sso.exact"), Some(&1));
        let h = snap.histograms.get("engine.skew.sso.millibits").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum_micros, 2000); // |±1000| twice, 0 once
    }

    #[test]
    fn prometheus_name_sanitizes_outside_charset() {
        assert_eq!(prometheus_name("engine.query.count"), "engine_query_count");
        assert_eq!(
            prometheus_name("engine.parallel.worker[3].items"),
            "engine_parallel_worker_3__items"
        );
        assert_eq!(prometheus_name("9lives"), "_9lives");
        assert_eq!(prometheus_name(""), "_");
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_typed() {
        let reg = MetricsRegistry::new();
        reg.add("engine.query.count", 3);
        reg.observe_duration("engine.query_duration", Duration::from_micros(1));
        reg.observe_duration("engine.query_duration", Duration::from_micros(3));
        reg.observe_duration("engine.query_duration", Duration::from_micros(3));
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("# TYPE engine_query_count counter\n"));
        assert!(text.contains("engine_query_count 3\n"));
        assert!(text.contains("# TYPE engine_query_duration histogram\n"));
        // Bucket counts are cumulative: 1 obs ≤ 1µs, then 3 obs ≤ 3µs.
        assert!(text.contains("engine_query_duration_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("engine_query_duration_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("engine_query_duration_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("engine_query_duration_sum 7\n"));
        assert!(text.contains("engine_query_duration_count 3\n"));
    }

    #[test]
    fn json_snapshot_declares_schema_and_bucket_scheme() {
        let reg = MetricsRegistry::new();
        reg.observe_duration("q", Duration::from_micros(6));
        let json = reg.snapshot().render_json();
        assert!(json.starts_with("{\"schema\":2,"));
        assert!(json.contains("\"bucket_scheme\":\"log2-upper-inclusive\""));
        assert!(json.contains("\"buckets\":[[7,1]]"));
        assert!(json.contains("\"mean\":6"));
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
